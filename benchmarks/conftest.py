"""Shared fixtures for the benchmark harness.

Every paper table / figure has one benchmark that regenerates it at the
``SMALL`` experiment scale (pass ``--bench-scale`` to change it).  The
substrate is built once per session; each benchmark measures only the
experiment-specific work, mirroring how the paper's pipeline would be re-run
on fixed input data.
"""

from __future__ import annotations

import pytest

from repro.experiments.context import ExperimentContext, ExperimentScale


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        action="store",
        default="small",
        choices=[scale.value for scale in ExperimentScale],
        help="experiment scale used by the benchmark harness",
    )


@pytest.fixture(scope="session")
def bench_scale(request) -> ExperimentScale:
    return ExperimentScale(request.config.getoption("--bench-scale"))


@pytest.fixture(scope="session")
def context(bench_scale) -> ExperimentContext:
    """The shared experiment context.

    The substrate is built eagerly here so its construction cost does not
    pollute the first benchmark's timing.
    """
    ctx = ExperimentContext(scale=bench_scale, seed=1)
    ctx.internet
    ctx.aggregate_tuples
    return ctx


@pytest.fixture(scope="session")
def run_once():
    """Run an expensive experiment exactly once under the benchmark timer."""

    def _run(benchmark, function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
