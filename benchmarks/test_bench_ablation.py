"""Ablation benchmarks.

* row-based baseline (paper Listing 2) versus the column-based algorithm on
  the same ground truth -- quantifies the precision the conditions buy,
* threshold ablation on a consistent scenario -- shows that the consistent
  case is insensitive to the threshold (Section 6.3.1),
* sanitation ablation -- effect of skipping the prepending collapse.
"""

from __future__ import annotations

import pytest

from repro.core.classes import TaggingClass
from repro.core.column import ColumnInference
from repro.core.row import RowInference
from repro.core.thresholds import Thresholds
from repro.usage.scenarios import ScenarioName


@pytest.fixture(scope="module")
def random_dataset(context):
    return context.scenario_builder().build(ScenarioName.RANDOM, seed=1)


def _tagging_precision(dataset, result):
    correct = wrong = 0
    for asn in result.observed_ases:
        role = dataset.roles.get(asn)
        tagging = result.classification_of(asn).tagging
        if tagging is TaggingClass.TAGGER:
            correct, wrong = (correct + 1, wrong) if role.is_tagger else (correct, wrong + 1)
        elif tagging is TaggingClass.SILENT:
            correct, wrong = (correct + 1, wrong) if role.is_silent else (correct, wrong + 1)
    return correct / (correct + wrong) if (correct + wrong) else 1.0


@pytest.mark.benchmark(group="ablation")
def test_bench_column_algorithm(benchmark, run_once, random_dataset):
    result = run_once(benchmark, ColumnInference().run, random_dataset.tuples)
    precision = _tagging_precision(random_dataset, result)
    print(f"\ncolumn-based: precision={precision:.4f} summary={result.summary()}")
    assert precision == pytest.approx(1.0)


@pytest.mark.benchmark(group="ablation")
def test_bench_row_baseline(benchmark, run_once, random_dataset):
    result = run_once(benchmark, RowInference().run, random_dataset.tuples)
    precision = _tagging_precision(random_dataset, result)
    print(f"\nrow-based baseline: precision={precision:.4f} summary={result.summary()}")
    # The baseline trades precision for coverage - exactly the paper's argument
    # for the column-based design.
    assert precision < 1.0


@pytest.mark.benchmark(group="ablation")
def test_bench_threshold_ablation_consistent_scenario(benchmark, run_once, random_dataset):
    def sweep():
        return {
            value: ColumnInference(Thresholds.uniform(value)).run(random_dataset.tuples).summary()
            for value in (0.70, 0.90, 0.99)
        }

    summaries = run_once(benchmark, sweep)
    taggers = [summary["tagger"] for summary in summaries.values()]
    print(f"\ntagger counts per threshold: {dict(zip(summaries, taggers))}")
    # Consistent behaviour is classified identically irrespective of threshold.
    assert max(taggers) - min(taggers) <= max(1, int(0.02 * max(taggers)))
