"""Benchmarks regenerating the paper's figures (2, 3, 4, 5, 6)."""

from __future__ import annotations

import pytest

from repro.experiments import figure2, figure3, figure4, figure5, figure6
from repro.sanitize.sources import CommunitySource


@pytest.mark.benchmark(group="figures")
def test_bench_figure2_roc_threshold_sweep(benchmark, run_once, context):
    result = run_once(benchmark, figure2.run, context, thresholds=(0.6, 0.8, 0.99))
    print("\n" + result.format_text())
    for scenario in ("random-p", "random-pp"):
        points = result.curve(scenario, "tagging")
        assert points[0].false_positive_rate >= points[-1].false_positive_rate


@pytest.mark.benchmark(group="figures")
def test_bench_figure3_incremental_day_stability(benchmark, run_once, context):
    result = run_once(benchmark, figure3.run, context, days=3)
    print("\n" + result.format_text())
    shares = [result.stability_share(code) for code in ("tf", "tc", "sf", "sc")]
    assert any(share > 0.5 for share in shares if share)


@pytest.mark.benchmark(group="figures")
def test_bench_figure4_longitudinal(benchmark, run_once, context):
    result = run_once(benchmark, figure4.run, context, labels=("q1", "q2", "q3", "q4"))
    print("\n" + result.format_text())
    assert len(result.series) == 4


@pytest.mark.benchmark(group="figures")
def test_bench_figure5_peer_community_types(benchmark, run_once, context):
    result = run_once(benchmark, figure5.run, context)
    print("\n" + result.format_text())
    assert result.total_of("sc", CommunitySource.PEER) == 0


@pytest.mark.benchmark(group="figures")
def test_bench_figure6_cone_cdfs(benchmark, run_once, context):
    result = run_once(benchmark, figure6.run, context)
    print("\n" + result.format_text())
    tagger = result.distribution("tagging", "tagger")
    silent = result.distribution("tagging", "silent")
    if len(tagger) and len(silent):
        assert tagger.median() >= silent.median()
