"""Micro-benchmarks of the individual pipeline stages.

These measure throughput of the substrates (MRT codec, routing, propagation,
sanitation, inference) in isolation so regressions can be located quickly.
Unlike the table/figure benchmarks they use multiple rounds, since a single
invocation is cheap.
"""

from __future__ import annotations

import pytest

from repro.core.column import ColumnInference
from repro.mrt.decoder import decode_records
from repro.mrt.encoder import MRTEncoder
from repro.bgp.messages import PathAttributes
from repro.sanitize.filters import Sanitizer
from repro.topology.cone import CustomerCones
from repro.topology.routing import RoutingEngine


@pytest.mark.benchmark(group="micro")
def test_bench_mrt_encode_decode(benchmark, context):
    internet = context.internet
    peers = internet.collector_peers(["isolario"])[:5]
    sample = []
    for peer in peers:
        for route in list(internet.paths_by_peer[peer].values())[:200]:
            sample.append((peer, route.path))

    def round_trip():
        encoder = MRTEncoder()
        encoder.write_peer_index_table(peers)
        for index, (peer, path) in enumerate(sample):
            attributes = PathAttributes(as_path=path, communities=internet.propagator.output(path))
            prefix = internet.topology.prefixes_of(path.origin)[0]
            encoder.write_rib_entry(prefix, [(peer, 0, attributes)], sequence=index)
        return len(decode_records(encoder.getvalue()))

    records = benchmark(round_trip)
    assert records == len(sample) + 1


@pytest.mark.benchmark(group="micro")
def test_bench_valley_free_routing_single_peer(benchmark, context):
    internet = context.internet
    engine = RoutingEngine(internet.topology)
    peer = internet.collector_peers(["ripe"])[0]
    paths = benchmark(engine.best_paths_from_peer, peer)
    assert len(paths) > len(internet.topology) * 0.9


@pytest.mark.benchmark(group="micro")
def test_bench_customer_cone_computation(benchmark, context):
    topology = context.internet.topology

    def compute():
        return CustomerCones(topology.relationships, topology.asns()).cone_sizes()

    sizes = benchmark(compute)
    assert max(sizes.values()) > 10


@pytest.mark.benchmark(group="micro")
def test_bench_propagation_output(benchmark, context):
    internet = context.internet
    peer = internet.collector_peers(["ripe"])[0]
    paths = [route.path for route in internet.paths_by_peer[peer].values()]

    def propagate():
        return sum(len(internet.propagator.output(path)) for path in paths)

    total = benchmark(propagate)
    assert total >= 0


@pytest.mark.benchmark(group="micro")
def test_bench_sanitizer_throughput(benchmark, context):
    internet = context.internet
    archive = internet.archive_for("isolario").generate_day(0)

    def sanitize():
        sanitizer = Sanitizer(
            asn_registry=internet.topology.asn_registry,
            prefix_allocation=internet.topology.prefix_allocation,
        )
        return len(sanitizer.to_unique_tuples(archive.observations))

    unique = benchmark(sanitize)
    assert unique > 0


@pytest.mark.benchmark(group="micro")
def test_bench_column_inference_aggregate(benchmark, run_once, context):
    tuples = context.aggregate_tuples
    result = run_once(benchmark, ColumnInference().run, tuples)
    assert result.summary()["tagger"] > 0
