"""Micro-benchmarks of the individual pipeline stages.

These measure throughput of the substrates (MRT codec, routing, propagation,
sanitation, inference) in isolation so regressions can be located quickly.
Unlike the table/figure benchmarks they use multiple rounds, since a single
invocation is cheap.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.column import (
    ColumnInference,
    count_forwarding_phase,
    count_forwarding_phase_packed,
    count_tagging_phase,
    count_tagging_phase_packed,
    prepare_tuples,
)
from repro.core.counters import PackedCounterStore
from repro.core.tuples import ColumnarBatch, TupleTable
from repro.mrt.decoder import decode_records
from repro.mrt.encoder import MRTEncoder
from repro.bgp.messages import PathAttributes
from repro.sanitize.filters import Sanitizer
from repro.stream import MemorySource, ScenarioSource, StreamConfig, StreamEngine, WindowSpec
from repro.topology.cone import CustomerCones
from repro.topology.routing import RoutingEngine


@pytest.mark.benchmark(group="micro")
def test_bench_mrt_encode_decode(benchmark, context):
    internet = context.internet
    peers = internet.collector_peers(["isolario"])[:5]
    sample = []
    for peer in peers:
        for route in list(internet.paths_by_peer[peer].values())[:200]:
            sample.append((peer, route.path))

    def round_trip():
        encoder = MRTEncoder()
        encoder.write_peer_index_table(peers)
        for index, (peer, path) in enumerate(sample):
            attributes = PathAttributes(as_path=path, communities=internet.propagator.output(path))
            prefix = internet.topology.prefixes_of(path.origin)[0]
            encoder.write_rib_entry(prefix, [(peer, 0, attributes)], sequence=index)
        return len(decode_records(encoder.getvalue()))

    records = benchmark(round_trip)
    assert records == len(sample) + 1


@pytest.mark.benchmark(group="micro")
def test_bench_valley_free_routing_single_peer(benchmark, context):
    internet = context.internet
    engine = RoutingEngine(internet.topology)
    peer = internet.collector_peers(["ripe"])[0]
    paths = benchmark(engine.best_paths_from_peer, peer)
    assert len(paths) > len(internet.topology) * 0.9


@pytest.mark.benchmark(group="micro")
def test_bench_customer_cone_computation(benchmark, context):
    topology = context.internet.topology

    def compute():
        return CustomerCones(topology.relationships, topology.asns()).cone_sizes()

    sizes = benchmark(compute)
    assert max(sizes.values()) > 10


@pytest.mark.benchmark(group="micro")
def test_bench_propagation_output(benchmark, context):
    internet = context.internet
    peer = internet.collector_peers(["ripe"])[0]
    paths = [route.path for route in internet.paths_by_peer[peer].values()]

    def propagate():
        return sum(len(internet.propagator.output(path)) for path in paths)

    total = benchmark(propagate)
    assert total >= 0


@pytest.mark.benchmark(group="micro")
def test_bench_sanitizer_throughput(benchmark, context):
    internet = context.internet
    archive = internet.archive_for("isolario").generate_day(0)

    def sanitize():
        sanitizer = Sanitizer(
            asn_registry=internet.topology.asn_registry,
            prefix_allocation=internet.topology.prefix_allocation,
        )
        return len(sanitizer.to_unique_tuples(archive.observations))

    unique = benchmark(sanitize)
    assert unique > 0


@pytest.mark.benchmark(group="micro")
def test_bench_column_inference_aggregate(benchmark, run_once, context):
    tuples = context.aggregate_tuples
    result = run_once(benchmark, ColumnInference().run, tuples)
    assert result.summary()["tagger"] > 0


@pytest.mark.benchmark(group="micro")
@pytest.mark.parametrize("block_size", [1, 64, 4096])
def test_bench_ingest_block_size_sweep(benchmark, context, block_size):
    """How ingest throughput scales with block size on the columnar path.

    Block size 1 is the per-event baseline (every event pays full dispatch
    cost); 64 and 4096 show how sanitation, interning, and shard-partition
    costs amortize.  The sweep records events/sec per size in extra_info so
    the trajectory JSON exposes the amortization curve; it asserts only
    conformance (identical classification at every size), never a ratio —
    relative timings on shared runners are too noisy to gate.
    """
    tuples = context.aggregate_tuples
    events = list(ScenarioSource(tuples, duration=86400, repeat=2))

    def config():
        return StreamConfig(
            window=WindowSpec(size=3600),
            shards=4,
            representation="columnar",
            ingest_block_size=block_size,
        )

    def drain():
        engine = StreamEngine(config())
        engine.run(MemorySource(events))
        return engine

    engine = benchmark.pedantic(drain, rounds=3, iterations=1, warmup_rounds=1)
    assert engine.stats.events_in == len(events)
    assert engine.stats.blocks_in == -(-len(events) // block_size)

    baseline = StreamEngine(config())
    for event in events:
        baseline.ingest(event)
    assert engine.result().as_code_map() == baseline.finish().as_code_map()

    benchmark.extra_info["block_size"] = block_size
    benchmark.extra_info["events"] = len(events)
    benchmark.extra_info["events_per_sec"] = round(
        len(events) / benchmark.stats.stats.min
    )


#: Acceptance floor for the columnar-over-object counting speedup (0 disables).
MIN_COLUMNAR_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_COLUMNAR_SPEEDUP", "3.0"))


@pytest.mark.benchmark(group="micro")
def test_bench_counting_columnar_vs_object(benchmark, context):
    """The counting hot path: packed/matrix kernels vs the object kernels.

    Both representations are prepared outside the timer (as they are when a
    warm window flush recounts), then one full multi-column counting pass —
    tagging plus forwarding per column, against converged decisions — is
    measured for each.  The columnar pass must hold a single-core speedup of
    :data:`MIN_COLUMNAR_SPEEDUP` over the object pass.
    """
    tuples = context.aggregate_tuples
    columns = range(1, 6)

    # Object representation: prepared tuples + converged decision view.
    prepared = prepare_tuples(tuples)
    store = ColumnInference().run(tuples).store
    decisions = store.decision_view()

    # Columnar representation: interned groups (matrix prebuilt) + the same
    # counters re-homed onto packed slots.
    table = TupleTable()
    batch = ColumnarBatch(table)
    for item in tuples:
        batch.add_tuple(item)
    groups = batch.counting_groups()
    groups.matrix()
    packed = PackedCounterStore(slots=table.as_count)
    packed.apply_delta(
        {
            index: store.get(asn).as_tuple()
            for index, asn in enumerate(table.as_values())
            if asn in store
        }
    )
    tagger_flags, forward_flags = packed.decision_flags(table.as_count)

    def object_pass():
        for column in columns:
            count_tagging_phase(prepared, column, decisions)
            count_forwarding_phase(prepared, column, decisions)

    def columnar_pass():
        for column in columns:
            count_tagging_phase_packed(groups, column, tagger_flags, forward_flags)
            count_forwarding_phase_packed(groups, column, tagger_flags, forward_flags)

    # Conformance guard: identical deltas before trusting the timing.
    as_values = table.as_values()
    for column in (1, 3):
        object_delta, object_incr = count_tagging_phase(prepared, column, decisions)
        packed_delta, packed_incr = count_tagging_phase_packed(
            groups, column, tagger_flags, forward_flags
        )
        assert object_incr == packed_incr
        assert {as_values[i]: v for i, v in packed_delta.items()} == object_delta

    benchmark.pedantic(columnar_pass, rounds=5, iterations=1)
    columnar_seconds = benchmark.stats.stats.min

    object_best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        object_pass()
        object_best = min(object_best, time.perf_counter() - start)
    object_seconds = object_best

    speedup = object_seconds / columnar_seconds
    benchmark.extra_info["object_seconds"] = round(object_seconds, 4)
    benchmark.extra_info["columnar_seconds"] = round(columnar_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    if MIN_COLUMNAR_SPEEDUP:
        assert speedup >= MIN_COLUMNAR_SPEEDUP, (
            f"columnar counting speedup {speedup:.2f}x is below the "
            f"{MIN_COLUMNAR_SPEEDUP:.1f}x floor "
            f"(override via REPRO_BENCH_MIN_COLUMNAR_SPEEDUP)"
        )
