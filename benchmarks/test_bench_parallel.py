"""Benchmarks of the multi-process execution layer.

Measures the headline claim of the parallel layer: classifying the
SMALL-scale aggregate dataset on 4 worker processes is at least twice as
fast as the serial batch pipeline, while producing a byte-identical
classification.

The speedup floor only makes sense on hardware that can actually run the
workers concurrently; on machines with fewer than 4 CPUs (shared CI
runners, containers pinned to one core) the floor is disabled by default.
Override it explicitly via ``REPRO_BENCH_MIN_PARALLEL_SPEEDUP`` (0 disables).
"""

from __future__ import annotations

import os

import pytest

from repro.core.column import ColumnInference
from repro.core.row import RowInference
from repro.parallel import ParallelColumnInference, ParallelRowInference

#: Worker processes used by the parallel side of every comparison.
WORKERS = 4

#: Acceptance floor for the 4-worker speedup over the serial run.
MIN_PARALLEL_SPEEDUP = float(
    os.environ.get(
        "REPRO_BENCH_MIN_PARALLEL_SPEEDUP",
        "2.0" if (os.cpu_count() or 1) >= WORKERS else "0",
    )
)


def result_fingerprint(result):
    return (result.as_code_map(), result.store.state_dict(), set(result.observed_ases))


def _bench_speedup(benchmark, serial_run, parallel_run, tuples):
    """Time both sides with the same min-of-3 protocol; return the speedup."""
    import time

    serial_times = []
    for _ in range(3):
        started = time.perf_counter()
        serial_result = serial_run(tuples)
        serial_times.append(time.perf_counter() - started)
    serial_elapsed = min(serial_times)

    parallel_result = benchmark.pedantic(parallel_run, args=(tuples,), rounds=3, iterations=1)
    parallel_elapsed = benchmark.stats.stats.min

    assert result_fingerprint(parallel_result) == result_fingerprint(serial_result)

    speedup = serial_elapsed / parallel_elapsed
    benchmark.extra_info["tuples"] = len(tuples)
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["serial_seconds"] = round(serial_elapsed, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    return speedup


@pytest.mark.benchmark(group="parallel")
def test_bench_parallel_column_speedup(benchmark, context):
    """Column inference: 4 workers vs serial on the aggregate dataset."""
    tuples = context.aggregate_tuples
    speedup = _bench_speedup(
        benchmark,
        lambda t: ColumnInference().run(t),
        lambda t: ParallelColumnInference(workers=WORKERS).run(t),
        tuples,
    )
    if MIN_PARALLEL_SPEEDUP:
        assert speedup >= MIN_PARALLEL_SPEEDUP, (
            f"parallel column inference is only {speedup:.2f}x the serial run, "
            f"below the {MIN_PARALLEL_SPEEDUP:.1f}x floor "
            f"(override via REPRO_BENCH_MIN_PARALLEL_SPEEDUP)"
        )


@pytest.mark.benchmark(group="parallel")
def test_bench_parallel_row_speedup(benchmark, context):
    """Row baseline: 4 workers vs serial on the aggregate dataset."""
    tuples = context.aggregate_tuples
    speedup = _bench_speedup(
        benchmark,
        lambda t: RowInference().run(t),
        lambda t: ParallelRowInference(workers=WORKERS).run(t),
        tuples,
    )
    if MIN_PARALLEL_SPEEDUP:
        assert speedup >= MIN_PARALLEL_SPEEDUP, (
            f"parallel row inference is only {speedup:.2f}x the serial run, "
            f"below the {MIN_PARALLEL_SPEEDUP:.1f}x floor "
            f"(override via REPRO_BENCH_MIN_PARALLEL_SPEEDUP)"
        )
