"""Benchmarks of the classification results service.

Measures what the consumer side of the system cares about:

* sustained query throughput over HTTP against a warm store — the
  acceptance floor is 2,000 queries/sec, overridable via the
  ``REPRO_BENCH_MIN_SERVICE_QPS`` environment variable (0 disables);
* the same hot path without the socket (service routing + LRU cache), which
  bounds what the HTTP layer costs;
* cold store reads (cache disabled by rotating ASes), pinning the indexed
  per-AS lookup path;
* producer-side write throughput: snapshots persisted per second;
* the multi-worker fan-out: 4 ``SO_REUSEPORT`` worker processes under
  concurrent client load must sustain at least 2x the single-worker
  queries/sec while answering byte-identically — the floor only makes
  sense with >= 4 CPUs and working ``SO_REUSEPORT``, so elsewhere it is
  disabled by default (override via ``REPRO_BENCH_MIN_WORKER_SPEEDUP``,
  0 disables);
* the replica fan-out: a leader plus one synced read replica, each served
  from its own worker process (simulating two hosts), must sustain at
  least 1.5x the single-store queries/sec under the same total client
  load, with leader/replica byte-identity pinned first — gated like the
  worker fan-out (override via ``REPRO_BENCH_MIN_REPLICA_SPEEDUP``,
  0 disables).
"""

from __future__ import annotations

import http.client
import multiprocessing
import os
import time

import pytest

from repro.service import (
    ClassificationServer,
    ClassificationService,
    MultiWorkerServer,
    ReplicaSyncer,
    ServiceClient,
    SnapshotStore,
    attach_store,
    reuseport_supported,
)
from repro.stream import MemorySource, ScenarioSource, StreamConfig, StreamEngine, WindowSpec

#: Acceptance floor for sustained HTTP query throughput.
MIN_QUERIES_PER_SEC = float(os.environ.get("REPRO_BENCH_MIN_SERVICE_QPS", "2000"))

#: Queries issued per measured round.
QUERY_BATCH = 500

#: Worker processes (and concurrent client processes) of the fan-out bench.
WORKER_FANOUT = 4

#: Acceptance floor for the 4-worker fan-out speedup over one worker.
MIN_WORKER_SPEEDUP = float(
    os.environ.get(
        "REPRO_BENCH_MIN_WORKER_SPEEDUP",
        "2.0"
        if (os.cpu_count() or 1) >= WORKER_FANOUT and reuseport_supported()
        else "0",
    )
)

#: Acceptance floor for 1 leader + 1 synced replica over the leader alone.
#: Needs one process per simulated host plus the client processes, so the
#: floor is only meaningful with spare cores and working ``SO_REUSEPORT``.
MIN_REPLICA_SPEEDUP = float(
    os.environ.get(
        "REPRO_BENCH_MIN_REPLICA_SPEEDUP",
        "1.5"
        if (os.cpu_count() or 1) >= WORKER_FANOUT and reuseport_supported()
        else "0",
    )
)


@pytest.fixture(scope="module")
def warm_store(tmp_path_factory, context):
    """A store populated by a fully drained stream run (the warm serving set)."""
    path = tmp_path_factory.mktemp("bench-service") / "snapshots.db"
    store = SnapshotStore(path)
    engine = StreamEngine(StreamConfig(window=WindowSpec(size=7200), shards=2))
    attach_store(engine, store)
    engine.run(MemorySource(ScenarioSource(context.aggregate_tuples, duration=86400)))
    yield store, engine
    store.close()


@pytest.fixture()
def hot_ases(warm_store):
    """A rotating set of popular ASes for per-AS query load."""
    _, engine = warm_store
    observed = sorted(engine.snapshots[-1].result.observed_ases)
    return observed[:: max(1, len(observed) // 32)][:32]


@pytest.mark.benchmark(group="service")
def test_bench_service_http_queries_per_sec(benchmark, warm_store, hot_ases):
    """Sustained mixed GET load over one keep-alive HTTP connection."""
    store, engine = warm_store
    with ClassificationServer(store) as server:
        server.start()
        client = ServiceClient(server.url)
        targets = ["/healthz", "/v1/snapshot/latest", "/v1/diff"] + [
            f"/v1/as/{asn}" for asn in hot_ases
        ]
        client.health()  # connection + cache warmup

        def query_batch():
            for index in range(QUERY_BATCH):
                client.get(targets[index % len(targets)])

        benchmark.pedantic(query_batch, rounds=5, iterations=1)
        client.close()

    queries_per_sec = QUERY_BATCH / benchmark.stats.stats.mean
    benchmark.extra_info["queries_per_sec"] = round(queries_per_sec)
    benchmark.extra_info["ases_served"] = len(engine.snapshots[-1].result.observed_ases)
    if MIN_QUERIES_PER_SEC:
        assert queries_per_sec >= MIN_QUERIES_PER_SEC, (
            f"sustained {queries_per_sec:,.0f} queries/sec is below the "
            f"{MIN_QUERIES_PER_SEC:,.0f} floor (override via REPRO_BENCH_MIN_SERVICE_QPS)"
        )


@pytest.mark.benchmark(group="service")
def test_bench_service_routing_hot_path(benchmark, warm_store, hot_ases):
    """The socket-free hot path: routing + generation check + LRU hit."""
    store, _ = warm_store
    service = ClassificationService(store)
    targets = ["/v1/snapshot/latest"] + [f"/v1/as/{asn}" for asn in hot_ases]
    for target in targets:  # warm the cache
        service.handle(target)

    def serve_batch():
        for index in range(QUERY_BATCH):
            response = service.handle(targets[index % len(targets)])
            assert response.status == 200

    benchmark.pedantic(serve_batch, rounds=5, iterations=1)
    hits_per_sec = QUERY_BATCH / benchmark.stats.stats.mean
    benchmark.extra_info["cached_queries_per_sec"] = round(hits_per_sec)
    stats = service.stats.as_dict()
    assert stats["cache_hits"] >= QUERY_BATCH  # the hot path really hit the cache


@pytest.mark.benchmark(group="service")
def test_bench_service_cold_as_lookups(benchmark, warm_store):
    """Indexed per-AS history queries straight off SQLite (cache bypassed)."""
    store, engine = warm_store
    observed = sorted(engine.snapshots[-1].result.observed_ases)

    def lookup_all():
        for asn in observed:
            entry = store.as_latest(asn)
            assert entry is not None

    benchmark.pedantic(lookup_all, rounds=3, iterations=1)
    lookups_per_sec = len(observed) / benchmark.stats.stats.mean
    benchmark.extra_info["as_lookups_per_sec"] = round(lookups_per_sec)


def _hammer(host, port, targets, count, results):
    """One load-generator process: *count* keep-alive GETs, no JSON decode.

    Module-level so every multiprocessing start method can import it; the
    per-client wall time goes back through *results*.
    """
    connection = http.client.HTTPConnection(host, port, timeout=60)
    started = time.perf_counter()
    for index in range(count):
        connection.request("GET", targets[index % len(targets)])
        response = connection.getresponse()
        response.read()
        assert response.status == 200
    elapsed = time.perf_counter() - started
    connection.close()
    results.put(elapsed)


def _concurrent_qps_multi(addresses, targets, per_client):
    """Queries/sec sustained by one client process per address in *addresses*.

    Repeating an address adds a concurrent client on it, so this measures
    both same-host concurrency and leader/replica pairs.
    """
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    )
    results = ctx.Queue()
    processes = [
        ctx.Process(target=_hammer, args=(host, port, targets, per_client, results))
        for host, port in addresses
    ]
    started = time.perf_counter()
    for process in processes:
        process.start()
    elapsed = [results.get(timeout=120) for _ in processes]
    wall = time.perf_counter() - started
    for process in processes:
        process.join(timeout=10)
    assert max(elapsed) <= wall
    return len(addresses) * per_client / wall


def _concurrent_qps(address, targets, clients, per_client):
    """Queries/sec sustained by *clients* concurrent processes on one address."""
    return _concurrent_qps_multi([address] * clients, targets, per_client)


def _fetch(address, target):
    """One GET on a fresh connection; returns the raw body bytes."""
    host, port = address
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        connection.request("GET", target)
        response = connection.getresponse()
        body = response.read()
        assert response.status == 200
        return body
    finally:
        connection.close()


@pytest.mark.benchmark(group="service")
def test_bench_service_multi_worker_fanout(benchmark, warm_store, hot_ases):
    """4 SO_REUSEPORT workers vs one server under concurrent client load.

    Also pins the fan-out contract the speedup is worthless without:
    every deterministic endpoint answers byte-identically from the fleet,
    on both the uncached (first hit) and the cached (second hit) path.
    """
    store, engine = warm_store
    targets = ["/healthz", "/v1/snapshot/latest", "/v1/diff"] + [
        f"/v1/as/{asn}" for asn in hot_ases
    ]

    with ClassificationServer(store) as single:
        single.start()
        # Uncached then cached bytes of every endpoint, single-worker.
        expected = [(target, _fetch(single.address, target)) for target in targets]
        for target, body in expected:
            assert _fetch(single.address, target) == body  # cached == uncached
        single_times = []
        for _ in range(3):
            started = time.perf_counter()
            _concurrent_qps(single.address, targets, WORKER_FANOUT, QUERY_BATCH)
            single_times.append(time.perf_counter() - started)
        single_qps = WORKER_FANOUT * QUERY_BATCH / min(single_times)

    fanout_mode = "process" if reuseport_supported() else "thread"
    with MultiWorkerServer(
        store.path, workers=WORKER_FANOUT, mode=fanout_mode
    ) as fanout:
        fanout.start()
        # Byte-identity across the fleet: enough fresh connections per
        # target that every worker serves both its cold and its warm path.
        for target, body in expected:
            for _ in range(2 * WORKER_FANOUT):
                assert _fetch(fanout.address, target) == body

        def fanout_round():
            return _concurrent_qps(fanout.address, targets, WORKER_FANOUT, QUERY_BATCH)

        benchmark.pedantic(fanout_round, rounds=3, iterations=1)
        fanout_qps = WORKER_FANOUT * QUERY_BATCH / benchmark.stats.stats.min

    speedup = fanout_qps / single_qps
    benchmark.extra_info["mode"] = fanout_mode
    benchmark.extra_info["workers"] = WORKER_FANOUT
    benchmark.extra_info["single_worker_qps"] = round(single_qps)
    benchmark.extra_info["fanout_qps"] = round(fanout_qps)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    if MIN_WORKER_SPEEDUP:
        assert speedup >= MIN_WORKER_SPEEDUP, (
            f"{WORKER_FANOUT}-worker fan-out is only {speedup:.2f}x one worker "
            f"({fanout_qps:,.0f} vs {single_qps:,.0f} queries/sec), below the "
            f"{MIN_WORKER_SPEEDUP:.1f}x floor (override via REPRO_BENCH_MIN_WORKER_SPEEDUP)"
        )


@pytest.mark.benchmark(group="service")
def test_bench_service_replica_fanout(benchmark, warm_store, hot_ases, tmp_path):
    """1 leader + 1 synced read replica vs the single store, two clients.

    Each store is served by its own one-worker process fleet, simulating
    two hosts; the replica is converged over the real replication path
    first, and byte-identity on every deterministic endpoint is pinned
    before any throughput is trusted.
    """
    store, engine = warm_store
    targets = ["/v1/snapshot/latest", "/v1/diff"] + [f"/v1/as/{asn}" for asn in hot_ases]
    fanout_mode = "process" if reuseport_supported() else "thread"
    replica_path = tmp_path / "replica.db"

    with MultiWorkerServer(store.path, workers=1, mode=fanout_mode) as leader:
        leader.start()
        with SnapshotStore(replica_path) as replica:
            with ServiceClient(leader.url) as sync_client:
                report = ReplicaSyncer(sync_client, replica).sync_once()
            assert report.caught_up and report.applied == len(engine.snapshots)

            single_times = []
            for _ in range(3):
                started = time.perf_counter()
                _concurrent_qps_multi([leader.address] * 2, targets, QUERY_BATCH)
                single_times.append(time.perf_counter() - started)
            single_qps = 2 * QUERY_BATCH / min(single_times)

            with MultiWorkerServer(
                str(replica_path), workers=1, mode=fanout_mode
            ) as follower:
                follower.start()
                # Byte-identity across hosts, cold and warm path both.
                for target in targets:
                    expected = _fetch(leader.address, target)
                    for _ in range(2):
                        assert _fetch(follower.address, target) == expected

                def replica_round():
                    return _concurrent_qps_multi(
                        [leader.address, follower.address], targets, QUERY_BATCH
                    )

                benchmark.pedantic(replica_round, rounds=3, iterations=1)
                pair_qps = 2 * QUERY_BATCH / benchmark.stats.stats.min

    speedup = pair_qps / single_qps
    benchmark.extra_info["mode"] = fanout_mode
    benchmark.extra_info["single_store_qps"] = round(single_qps)
    benchmark.extra_info["replica_pair_qps"] = round(pair_qps)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    if MIN_REPLICA_SPEEDUP:
        assert speedup >= MIN_REPLICA_SPEEDUP, (
            f"leader+replica pair is only {speedup:.2f}x the single store "
            f"({pair_qps:,.0f} vs {single_qps:,.0f} queries/sec), below the "
            f"{MIN_REPLICA_SPEEDUP:.1f}x floor (override via "
            "REPRO_BENCH_MIN_REPLICA_SPEEDUP)"
        )


@pytest.mark.benchmark(group="service")
def test_bench_service_snapshot_writes(benchmark, tmp_path, context):
    """Producer-side cost: persisting one full snapshot per window close."""
    engine = StreamEngine(StreamConfig(window=WindowSpec(size=7200)))
    engine.run(MemorySource(ScenarioSource(context.aggregate_tuples, duration=86400)))
    snapshot = engine.snapshots[-1]
    store = SnapshotStore(tmp_path / "writes.db")

    def persist():
        store.append_snapshot(snapshot)

    benchmark(persist)
    benchmark.extra_info["records_per_snapshot"] = len(snapshot.result.observed_ases)
    assert len(store) > 0
    store.close()
