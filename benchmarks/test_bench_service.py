"""Benchmarks of the classification results service.

Measures what the consumer side of the system cares about:

* sustained query throughput over HTTP against a warm store — the
  acceptance floor is 2,000 queries/sec, overridable via the
  ``REPRO_BENCH_MIN_SERVICE_QPS`` environment variable (0 disables);
* the same hot path without the socket (service routing + LRU cache), which
  bounds what the HTTP layer costs;
* cold store reads (cache disabled by rotating ASes), pinning the indexed
  per-AS lookup path;
* producer-side write throughput: snapshots persisted per second.
"""

from __future__ import annotations

import os

import pytest

from repro.service import (
    ClassificationServer,
    ClassificationService,
    ServiceClient,
    SnapshotStore,
    attach_store,
)
from repro.stream import MemorySource, ScenarioSource, StreamConfig, StreamEngine, WindowSpec

#: Acceptance floor for sustained HTTP query throughput.
MIN_QUERIES_PER_SEC = float(os.environ.get("REPRO_BENCH_MIN_SERVICE_QPS", "2000"))

#: Queries issued per measured round.
QUERY_BATCH = 500


@pytest.fixture(scope="module")
def warm_store(tmp_path_factory, context):
    """A store populated by a fully drained stream run (the warm serving set)."""
    path = tmp_path_factory.mktemp("bench-service") / "snapshots.db"
    store = SnapshotStore(path)
    engine = StreamEngine(StreamConfig(window=WindowSpec(size=7200), shards=2))
    attach_store(engine, store)
    engine.run(MemorySource(ScenarioSource(context.aggregate_tuples, duration=86400)))
    yield store, engine
    store.close()


@pytest.fixture()
def hot_ases(warm_store):
    """A rotating set of popular ASes for per-AS query load."""
    _, engine = warm_store
    observed = sorted(engine.snapshots[-1].result.observed_ases)
    return observed[:: max(1, len(observed) // 32)][:32]


@pytest.mark.benchmark(group="service")
def test_bench_service_http_queries_per_sec(benchmark, warm_store, hot_ases):
    """Sustained mixed GET load over one keep-alive HTTP connection."""
    store, engine = warm_store
    with ClassificationServer(store) as server:
        server.start()
        client = ServiceClient(server.url)
        targets = ["/healthz", "/v1/snapshot/latest", "/v1/diff"] + [
            f"/v1/as/{asn}" for asn in hot_ases
        ]
        client.health()  # connection + cache warmup

        def query_batch():
            for index in range(QUERY_BATCH):
                client.get(targets[index % len(targets)])

        benchmark.pedantic(query_batch, rounds=5, iterations=1)
        client.close()

    queries_per_sec = QUERY_BATCH / benchmark.stats.stats.mean
    benchmark.extra_info["queries_per_sec"] = round(queries_per_sec)
    benchmark.extra_info["ases_served"] = len(engine.snapshots[-1].result.observed_ases)
    if MIN_QUERIES_PER_SEC:
        assert queries_per_sec >= MIN_QUERIES_PER_SEC, (
            f"sustained {queries_per_sec:,.0f} queries/sec is below the "
            f"{MIN_QUERIES_PER_SEC:,.0f} floor (override via REPRO_BENCH_MIN_SERVICE_QPS)"
        )


@pytest.mark.benchmark(group="service")
def test_bench_service_routing_hot_path(benchmark, warm_store, hot_ases):
    """The socket-free hot path: routing + generation check + LRU hit."""
    store, _ = warm_store
    service = ClassificationService(store)
    targets = ["/v1/snapshot/latest"] + [f"/v1/as/{asn}" for asn in hot_ases]
    for target in targets:  # warm the cache
        service.handle(target)

    def serve_batch():
        for index in range(QUERY_BATCH):
            status, _ = service.handle(targets[index % len(targets)])
            assert status == 200

    benchmark.pedantic(serve_batch, rounds=5, iterations=1)
    hits_per_sec = QUERY_BATCH / benchmark.stats.stats.mean
    benchmark.extra_info["cached_queries_per_sec"] = round(hits_per_sec)
    stats = service.stats.as_dict()
    assert stats["cache_hits"] >= QUERY_BATCH  # the hot path really hit the cache


@pytest.mark.benchmark(group="service")
def test_bench_service_cold_as_lookups(benchmark, warm_store):
    """Indexed per-AS history queries straight off SQLite (cache bypassed)."""
    store, engine = warm_store
    observed = sorted(engine.snapshots[-1].result.observed_ases)

    def lookup_all():
        for asn in observed:
            entry = store.as_latest(asn)
            assert entry is not None

    benchmark.pedantic(lookup_all, rounds=3, iterations=1)
    lookups_per_sec = len(observed) / benchmark.stats.stats.mean
    benchmark.extra_info["as_lookups_per_sec"] = round(lookups_per_sec)


@pytest.mark.benchmark(group="service")
def test_bench_service_snapshot_writes(benchmark, tmp_path, context):
    """Producer-side cost: persisting one full snapshot per window close."""
    engine = StreamEngine(StreamConfig(window=WindowSpec(size=7200)))
    engine.run(MemorySource(ScenarioSource(context.aggregate_tuples, duration=86400)))
    snapshot = engine.snapshots[-1]
    store = SnapshotStore(tmp_path / "writes.db")

    def persist():
        store.append_snapshot(snapshot)

    benchmark(persist)
    benchmark.extra_info["records_per_snapshot"] = len(snapshot.result.observed_ases)
    assert len(store) > 0
    store.close()
