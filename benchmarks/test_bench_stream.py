"""Benchmarks of the streaming classification engine.

Measures what a live deployment cares about:

* sustained ingest throughput (events/sec) over a steady-state synthetic
  feed, measured for both tuple representations — the acceptance floor is
  150k events/sec (raised from 75k when block ingest landed), overridable
  via the ``REPRO_BENCH_MIN_STREAM_EPS`` environment variable (0 disables).
  The floor gates the columnar deployment hot path; the object
  representation is the deliberately simple pure-Python conformance oracle
  whose recount kernels are its algorithmic cost, so it gates at
  :data:`OBJECT_ORACLE_FRACTION` of the floor;
* steady-state memory: once the unique-tuple set is warm, re-announcements
  must not grow engine state;
* the cost of a window flush on a warm engine (the incremental delta path)
  versus cold batch inference over the same tuples.
"""

from __future__ import annotations

import os
import tracemalloc

import pytest

from repro.core.column import ColumnInference
from repro.stream import MemorySource, ScenarioSource, StreamConfig, StreamEngine, WindowSpec

#: Acceptance floor for sustained ingest throughput on the columnar hot path.
MIN_EVENTS_PER_SEC = float(os.environ.get("REPRO_BENCH_MIN_STREAM_EPS", "150000"))

#: The object representation is the pure-Python reference oracle; its window
#: recount kernels are an intentional algorithmic cost that block ingest does
#: not (and should not) vectorise away, so it gates at this fraction of the
#: hot-path floor.
OBJECT_ORACLE_FRACTION = 0.6


@pytest.fixture(scope="module")
def stream_events(context):
    """A steady-state synthetic feed: every tuple announced three times."""
    tuples = context.aggregate_tuples
    return list(ScenarioSource(tuples, duration=86400, repeat=3))


@pytest.mark.benchmark(group="stream")
@pytest.mark.parametrize("representation", ["object", "columnar"])
def test_bench_stream_ingest_throughput(benchmark, stream_events, representation):
    def drain():
        engine = StreamEngine(
            StreamConfig(
                window=WindowSpec(size=3600), shards=4, representation=representation
            )
        )
        engine.run(MemorySource(stream_events))
        return engine

    engine = benchmark.pedantic(drain, rounds=5, iterations=1, warmup_rounds=1)
    assert engine.stats.events_in == len(stream_events)
    assert engine.stats.windows_closed > 0
    assert engine.stats.blocks_in > 0

    # Gate on the fastest round: shared runners suffer multi-tens-of-percent
    # scheduling noise, and the minimum is the standard robust estimator of
    # the code's true cost.  The mean stays in extra_info for trend tracking.
    events_per_sec = len(stream_events) / benchmark.stats.stats.min
    benchmark.extra_info["events_per_sec"] = round(events_per_sec)
    benchmark.extra_info["events_per_sec_mean"] = round(
        len(stream_events) / benchmark.stats.stats.mean
    )
    benchmark.extra_info["events"] = len(stream_events)
    benchmark.extra_info["unique_tuples"] = engine.unique_tuples
    benchmark.extra_info["representation"] = representation
    floor = MIN_EVENTS_PER_SEC * (
        OBJECT_ORACLE_FRACTION if representation == "object" else 1.0
    )
    if floor:
        assert events_per_sec >= floor, (
            f"sustained {representation} throughput {events_per_sec:,.0f} events/sec "
            f"is below the {floor:,.0f} floor "
            f"(override via REPRO_BENCH_MIN_STREAM_EPS)"
        )


@pytest.mark.benchmark(group="stream")
def test_bench_stream_steady_state_memory(benchmark, context):
    """Re-announcing known routes must not grow engine state."""
    tuples = context.aggregate_tuples
    warmup = list(ScenarioSource(tuples, duration=86400))
    steady = list(ScenarioSource(tuples, start=warmup[-1].timestamp + 1, duration=86400))

    engine = StreamEngine(StreamConfig(window=WindowSpec(size=3600), shards=4))
    engine.run(MemorySource(warmup), finish=False)
    tuples_after_warmup = engine.unique_tuples

    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()

    def reannounce():
        engine.run(MemorySource(steady), finish=False)

    benchmark.pedantic(reannounce, rounds=1, iterations=1)
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    growth = after - before
    benchmark.extra_info["steady_state_growth_bytes"] = growth
    benchmark.extra_info["unique_tuples"] = engine.unique_tuples
    # No new unique tuples may appear, and state growth must stay marginal
    # (window snapshots are retained by design; they are bounded).
    assert engine.unique_tuples == tuples_after_warmup
    assert growth < 32 * 1024 * 1024


@pytest.mark.benchmark(group="stream")
def test_bench_stream_window_flush_warm(benchmark, context):
    """A warm flush (delta path) must beat cold batch inference."""
    tuples = context.aggregate_tuples
    engine = StreamEngine(StreamConfig(window=WindowSpec(size=3600)))
    engine.run(MemorySource(ScenarioSource(tuples, duration=86400)), finish=False)
    engine.classifier.update()  # settle: next updates take the delta path

    def warm_flush():
        return engine.classifier.update()

    result = benchmark(warm_flush)
    assert len(result.observed_ases) > 0

    cold = ColumnInference()
    import time

    start = time.perf_counter()
    cold.run(tuples)
    cold_seconds = time.perf_counter() - start
    benchmark.extra_info["cold_batch_seconds"] = round(cold_seconds, 4)
    assert benchmark.stats.stats.mean < cold_seconds
