"""Benchmarks regenerating the paper's tables (1, 2, 3, 4, 5/6).

Each benchmark prints the reproduced rows so that running

    pytest benchmarks/ --benchmark-only -s

doubles as the experiment report generator.
"""

from __future__ import annotations

import pytest

from repro.experiments import table1, table2, table3, table4, table5_6
from repro.usage.scenarios import ScenarioName


@pytest.mark.benchmark(group="tables")
def test_bench_table1_dataset_overview(benchmark, run_once, context):
    result = run_once(benchmark, table1.run, context)
    print("\n" + result.format_text())
    aggregate = result.column("dMay21")
    assert aggregate.unique_tuples > 0
    assert aggregate.leaf_ases / aggregate.as_after_cleaning > 0.5


@pytest.mark.benchmark(group="tables")
def test_bench_table2_scenario_performance(benchmark, run_once, context):
    result = run_once(benchmark, table2.run, context, iterations=1)
    print("\n" + result.format_text())
    for scenario in ("alltc", "alltf", "random"):
        assert result.row(scenario).tagging_precision == pytest.approx(1.0)


@pytest.mark.benchmark(group="tables")
def test_bench_table3_real_data_classification(benchmark, run_once, context):
    result = run_once(benchmark, table3.run, context)
    print("\n" + result.format_text())
    assert result.count("dMay21", "silent") > result.count("dMay21", "tagger")


@pytest.mark.benchmark(group="tables")
def test_bench_table4_peering_validation(benchmark, run_once, context):
    result = run_once(benchmark, table4.run, context)
    print("\n" + result.format_text())
    for experiment in result.experiments:
        assert experiment.absent_cleaner_share >= experiment.present_cleaner_share


@pytest.mark.benchmark(group="tables")
def test_bench_table5_6_confusion_matrices(benchmark, run_once, context):
    result = run_once(
        benchmark, table5_6.run, context, scenarios=(ScenarioName.RANDOM, ScenarioName.RANDOM_P)
    )
    print("\n" + result.format_text())
    assert result.tagging["random"].cell("tagger", "silent") == 0
