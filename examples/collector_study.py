#!/usr/bin/env python3
"""Full measurement-pipeline study on binary MRT archives (paper Sections 4 & 7).

This example exercises the complete pipeline the paper's measurement system
implements, starting from wire-format data:

1. generate one day of RIB snapshots and update streams for a collector
   project and *encode them as binary MRT* (the format RIPE RIS / RouteViews
   publish),
2. decode the MRT blobs, sanitize the observations (unallocated resources,
   AS_SETs, prepending, route-server peers), and deduplicate,
3. run the inference and print the per-project classification counts
   (Table 3 style) plus the dataset overview (Table 1 style).

Run with::

    python examples/collector_study.py
"""

from __future__ import annotations

from repro.collectors.archive import ArchiveConfig
from repro.core import InferencePipeline
from repro.datasets import SyntheticConfig, SyntheticInternet, compute_statistics
from repro.datasets.stats import format_table


def main() -> None:
    print("building synthetic Internet and collector projects...")
    config = SyntheticConfig.small(seed=21)
    config.archive = ArchiveConfig(rib_snapshots_per_day=1, update_share=0.25, seed=21)
    internet = SyntheticInternet.build(config)

    pipeline = InferencePipeline(
        asn_registry=internet.topology.asn_registry,
        prefix_allocation=internet.topology.prefix_allocation,
    )

    statistics = []
    print("\nper-project pipeline runs (MRT -> sanitize -> infer):")
    header = f"{'project':<12}{'MRT bytes':>12}{'observations':>14}{'unique tuples':>15}{'tagger':>8}{'silent':>8}{'cleaner':>9}"
    print(header)
    print("-" * len(header))
    for name in ("isolario", "routeviews"):
        archive = internet.archive_for(name)
        day = archive.generate_day(0)
        blobs = archive.day_to_mrt(day)
        outcome = pipeline.run_from_mrt(blobs)
        summary = outcome.result.summary()
        total_bytes = sum(len(blob) for blob in blobs.values())
        print(
            f"{name:<12}{total_bytes:>12,}{outcome.observations_in:>14,}"
            f"{outcome.unique_tuples:>15,}{summary['tagger']:>8}{summary['silent']:>8}{summary['cleaner']:>9}"
        )
        statistics.append(
            compute_statistics(name, [day], registry=internet.topology.asn_registry)
        )

    print("\ndataset overview (Table 1 style):")
    print(format_table(statistics))


if __name__ == "__main__":
    main()
