#!/usr/bin/env python3
"""Live streaming demo: windowed classification over a replayed update feed.

Builds a small synthetic Internet, materialises one day of collector
archives as binary MRT blobs, and replays them through the streaming engine
the way a RIS-Live / BGPStream consumer would:

1. events flow through per-AS-partition shard workers (sanitation + dedup),
2. every closed event-time window emits a snapshot of the continuously
   maintained classification, including which ASes changed class,
3. engine state is checkpointed mid-stream and restored into a second
   engine, which finishes the replay,
4. the final streamed classification is verified to be *identical* to the
   batch pipeline run over the same archive.

Run with::

    python examples/live_stream.py
"""

from __future__ import annotations

import tempfile

from repro.core.pipeline import InferencePipeline
from repro.datasets import SyntheticConfig, SyntheticInternet
from repro.stream import (
    CheckpointManager,
    MRTReplaySource,
    StreamConfig,
    StreamEngine,
    WindowSpec,
)


def main() -> None:
    # 1. Build the substrate and archive one day of collector data as MRT.
    print("building synthetic Internet and one day of MRT archives...")
    internet = SyntheticInternet.build(SyntheticConfig.small(seed=7))
    archive = internet.archive_for("ripe")
    day = archive.generate_day(0)
    blobs = archive.day_to_mrt(day)
    total_bytes = sum(len(blob) for blob in blobs.values())
    print(f"  {len(blobs)} collectors, {len(day.observations)} observations, "
          f"{total_bytes / 1e6:.1f} MB of MRT")

    # 2. Stream the archive: hourly windows, 4 shards, live snapshots.
    def report(snapshot) -> None:
        summary = snapshot.summary()
        print(f"  window [{snapshot.window_start:>10}, {snapshot.window_end:>10}): "
              f"{summary['unique_tuples']:>6} tuples, "
              f"{summary['ases_observed']:>4} ASes, "
              f"{summary['changed_ases']:>3} changed classes")

    config = StreamConfig(window=WindowSpec(size=3600), shards=4, checkpoint_every=20_000)
    source = MRTReplaySource(blobs, order="time")

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        manager = CheckpointManager(checkpoint_dir)
        engine = StreamEngine(config, checkpoints=manager, on_window=report)

        print("\nstreaming (first half of the feed)...")
        events = list(source)
        half = len(events) // 2
        for observation in events[:half]:
            engine.ingest(observation)
        engine.checkpoint()
        print(f"  checkpointed at event {half} -> {manager.latest().name}")

        print("restoring into a fresh engine and finishing the replay...")
        resumed = StreamEngine.restore(manager, on_window=report)
        for observation in events[half:]:
            resumed.ingest(observation)
        streamed = resumed.finish()

        stats = resumed.stats
        print(f"\n  {stats.events_in} events, {stats.windows_closed} windows, "
              f"{resumed.unique_tuples} unique tuples, "
              f"{resumed.late_events} late events")
        incremental = resumed.classifier.stats
        print(f"  incremental updates: {incremental.delta_phases} delta phases, "
              f"{incremental.recount_phases} recounted phases")

    # 3. The streaming invariant: a fully drained feed equals the batch run.
    print("\nverifying streamed result against the batch pipeline...")
    batch = InferencePipeline().run_from_mrt(blobs)
    same_classes = streamed.as_code_map() == batch.result.as_code_map()
    same_counters = streamed.store.state_dict() == batch.result.store.state_dict()
    print(f"  classifications identical: {same_classes}")
    print(f"  evidence counters identical: {same_counters}")
    if not (same_classes and same_counters):
        raise SystemExit("streaming/batch mismatch — this is a bug")

    summary = streamed.summary()
    print("\nfinal classification summary:")
    for key in ("ases_observed", "tagger", "silent", "forward", "cleaner"):
        print(f"  {key:>15}: {summary[key]}")
    print("  fully classified: "
          + ", ".join(f"{k[5:]}={v}" for k, v in summary.items() if k.startswith("full_")))


if __name__ == "__main__":
    main()
