#!/usr/bin/env python3
"""Active validation with a controlled origin (paper Section 7.4, Table 4).

Reproduces the PEERING-testbed methodology: attach a testbed AS (AS 47065) as
a customer of several PoP provider networks, announce a prefix with a unique
pair of communities per PoP, and check the resulting collector observations
against the passively inferred classification:

* paths that *lost* our communities should contain an inferred cleaner,
* paths that still *carry* them should not.

Run with::

    python examples/peering_validation.py
"""

from __future__ import annotations

from repro.core import ColumnInference
from repro.datasets import SyntheticConfig, SyntheticInternet
from repro.eval import PeeringExperiment


def main() -> None:
    print("building synthetic Internet and passive classification...")
    internet = SyntheticInternet.build(SyntheticConfig.small(seed=31))
    classification = ColumnInference().run(internet.tuples_for_aggregate())
    print(f"  classified {classification.summary()['cleaner']} cleaner ASes passively")

    print("\nrunning three announcement experiments (12 PoPs each):")
    header = f"{'experiment':<14}{'paths w/ comms':>16}{'cleaner on path':>17}{'paths w/o comms':>17}{'cleaner on path':>17}"
    print(header)
    print("-" * len(header))
    for index, label in enumerate(("2021-05-19", "2021-07-15", "2021-08-15")):
        experiment = PeeringExperiment(
            internet.topology,
            internet.roles,
            internet.paths_by_peer,
            n_pops=12,
            seed=100 + index * 13,
        )
        validation = experiment.validate(classification, experiment=label)
        print(
            f"{label:<14}"
            f"{validation.present_total:>16}"
            f"{validation.present_with_cleaner:>13} ({validation.present_cleaner_share:>4.0%})"
            f"{validation.absent_total:>13}"
            f"{validation.absent_with_cleaner:>13} ({validation.absent_cleaner_share:>4.0%})"
        )

    print(
        "\ninterpretation: community-absent paths should overwhelmingly contain an\n"
        "inferred cleaner, community-present paths should (almost) never - the same\n"
        "consistency check the paper uses to validate its inferences in the wild."
    )


if __name__ == "__main__":
    main()
