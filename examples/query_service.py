#!/usr/bin/env python3
"""Results service demo: stream -> durable store -> HTTP query API.

The consumer-side counterpart of ``live_stream.py``:

1. a synthetic ground-truth scenario is replayed through the streaming
   engine with a :class:`SnapshotPublisher` attached, so every closed
   window is durably persisted into a SQLite snapshot store as it happens,
2. an HTTP server (the ``repro serve`` machinery) is started over the same
   store and queried with the stdlib client: health, the latest snapshot,
   per-AS lookups with history, and the per-window change feed,
3. the served ``/v1/snapshot/latest`` payload is verified to be *identical*
   to the engine's final in-memory snapshot -- what you query is exactly
   what the producer computed.

Run with::

    python examples/query_service.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.experiments.context import ExperimentContext, ExperimentScale
from repro.service import (
    ClassificationServer,
    ServiceClient,
    ServiceError,
    SnapshotStore,
    attach_store,
    snapshot_payload,
)
from repro.stream import ScenarioSource, StreamConfig, StreamEngine, WindowSpec


def main() -> None:
    # 1. Produce: stream a day of scenario announcements into a store.
    print("building the tiny synthetic Internet...")
    context = ExperimentContext(scale=ExperimentScale.TINY, seed=7)
    source = ScenarioSource(context.aggregate_tuples, duration=86400)
    print(f"  {len(source)} announcements over one day of event time")

    with tempfile.TemporaryDirectory() as workdir:
        store_path = Path(workdir) / "results.db"
        store = SnapshotStore(store_path)
        engine = StreamEngine(StreamConfig(window=WindowSpec(size=7200)))
        publisher = attach_store(engine, store)

        print("streaming with 2h windows, persisting every snapshot...")
        engine.run(source)
        final = engine.snapshots[-1]
        print(
            f"  {publisher.published} snapshots stored "
            f"({store_path.stat().st_size / 1024:.0f} KiB, "
            f"generation {store.generation()})"
        )

        # 2. Serve: HTTP API over the store, queried through the client.
        with ClassificationServer(store) as server:
            server.start()
            print(f"\nserving at {server.url}")
            client = ServiceClient(server.url)

            health = client.health()
            print(f"  /healthz -> {health}")

            latest = client.latest_snapshot()
            print(
                f"  /v1/snapshot/latest -> window [{latest['window_start']}, "
                f"{latest['window_end']}), {len(latest['ases'])} ASes"
            )

            # 3. The served payload is the engine's snapshot, field for field.
            assert latest == snapshot_payload(final)
            print("  served payload == engine's in-memory snapshot (verified)")

            busiest = max(
                final.result.observed_ases,
                key=lambda asn: final.result.counters_of(asn).tagging_total,
            )
            info = client.as_info(busiest, history=3)
            print(
                f"  /v1/as/{busiest} -> code={info['code']}, "
                f"{len(info['history'])} history entries"
            )

            diff = client.diff()
            print(f"  /v1/diff -> {len(diff['changed'])} ASes changed in the last window")

            try:
                client.as_info(-1)
            except ServiceError as error:
                print(f"  /v1/as/-1 -> rejected as expected ({error})")

            stats = client.stats()
            server_stats = stats["server"]
            print(
                f"  /v1/stats -> {server_stats['requests']} requests, "
                f"{server_stats['cache_hits']} cache hits"
            )
            client.close()
        store.close()
    print("\ndone: results outlived the engine and were served over HTTP.")


if __name__ == "__main__":
    main()
