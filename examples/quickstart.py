#!/usr/bin/env python3
"""Quickstart: classify per-AS BGP community usage on a synthetic Internet.

Builds a small Internet-like topology with route collectors and a realistic
community-usage model, runs the paper's column-based inference on the
aggregated collector view, and prints the classification summary, a few
example ASes, and which community values the algorithm attributes to the
inferred taggers.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import ColumnInference, CommunityAttribution
from repro.core.classes import TaggingClass
from repro.datasets import SyntheticConfig, SyntheticInternet


def main() -> None:
    # 1. Build the substrate: topology, collectors, routing, community usage.
    print("building synthetic Internet (topology, collectors, routes, roles)...")
    internet = SyntheticInternet.build(SyntheticConfig.small(seed=7))
    print(
        f"  {len(internet.topology)} ASes, "
        f"{len(internet.collector_peers())} collector peers, "
        f"{sum(len(p) for p in internet.paths_by_peer.values())} best paths"
    )

    # 2. The analytic input: unique (AS path, community set) tuples as a
    #    route collector would archive them.
    tuples = internet.tuples_for_aggregate()
    print(f"  {len(tuples)} unique (path, communities) tuples in the aggregate view")

    # 3. Run the inference (Section 5 of the paper).
    result = ColumnInference().run(tuples)
    summary = result.summary()
    print("\nclassification summary:")
    for key in ("ases_observed", "tagger", "silent", "tagging_undecided", "tagging_none"):
        print(f"  {key:>20}: {summary[key]}")
    for key in ("forward", "cleaner", "forwarding_undecided", "forwarding_none"):
        print(f"  {key:>20}: {summary[key]}")
    print("  fully classified   : " + ", ".join(f"{k[5:]}={v}" for k, v in summary.items() if k.startswith("full_")))

    # 4. Inspect a few individual ASes and compare with the (normally
    #    unknown) ground-truth roles of the simulation.
    print("\nsample inferences (inferred vs. ground truth):")
    shown = 0
    for asn in result.observed_ases:
        classification = result.classification_of(asn)
        if not classification.is_full:
            continue
        truth = internet.roles[asn]
        print(f"  AS{asn:<8} inferred={classification.code}  ground-truth={truth.code}")
        shown += 1
        if shown >= 8:
            break

    # 5. Future-work extension: which community values does each tagger add?
    attribution = CommunityAttribution(result).ingest(tuples)
    taggers = result.ases_with_tagging(TaggingClass.TAGGER)[:3]
    print("\nattributed community values (first three taggers):")
    for asn in taggers:
        values = ", ".join(str(c) for c in attribution.top_values(asn, count=3))
        print(f"  AS{asn}: {values}")


if __name__ == "__main__":
    main()
