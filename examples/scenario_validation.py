#!/usr/bin/env python3
"""Ground-truth scenario validation (paper Section 6).

Reproduces the paper's controlled-simulation methodology end to end:

1. take the AS paths observed at the collectors as a substrate,
2. assign known community-usage roles to every AS (consistent, noisy, and
   selective variants),
3. compute the community sets each collector peer would export,
4. run the inference, and
5. score it against the known roles (precision, recall, confusion matrix).

Run with::

    python examples/scenario_validation.py
"""

from __future__ import annotations

from repro.core import ColumnInference
from repro.datasets import SyntheticConfig, SyntheticInternet
from repro.eval import evaluate_scenario
from repro.usage import ScenarioBuilder, ScenarioName


def main() -> None:
    print("building path substrate from the synthetic collectors...")
    internet = SyntheticInternet.build(SyntheticConfig.small(seed=11))
    paths = internet.paths_for_peers(internet.collector_peers(["ripe", "routeviews", "isolario"]))
    print(f"  {len(paths)} AS paths, {len({a for p in paths for a in p})} distinct ASes")

    builder = ScenarioBuilder(paths, relationships=internet.topology.relationships, seed=1)

    print("\nscenario results (threshold 99%):")
    header = f"{'scenario':<15}{'prec(tag)':>10}{'rec(tag)':>10}{'prec(fwd)':>10}{'rec(fwd)':>10}{'undecided':>11}"
    print(header)
    print("-" * len(header))
    for scenario in (
        ScenarioName.ALLTF,
        ScenarioName.ALLTC,
        ScenarioName.RANDOM,
        ScenarioName.RANDOM_NOISE,
        ScenarioName.RANDOM_P,
        ScenarioName.RANDOM_PP,
    ):
        dataset = builder.build(scenario, seed=1)
        result = ColumnInference().run(dataset.tuples)
        evaluation = evaluate_scenario(dataset, result)
        undecided = evaluation.none_undecided_counts["u*"] + evaluation.none_undecided_counts["*u"]
        print(
            f"{scenario.value:<15}"
            f"{evaluation.tagging.precision:>10.2f}{evaluation.tagging.recall:>10.2f}"
            f"{evaluation.forwarding.precision:>10.2f}{evaluation.forwarding.recall:>10.2f}"
            f"{undecided:>11}"
        )

    print("\nconfusion matrix (tagging, random scenario):")
    dataset = builder.build(ScenarioName.RANDOM, seed=1)
    result = ColumnInference().run(dataset.tuples)
    print(evaluate_scenario(dataset, result).tagging_matrix.to_text())


if __name__ == "__main__":
    main()
