"""Setuptools shim.

Kept so that legacy editable installs (``pip install -e . --no-use-pep517``)
work in offline environments that lack the ``wheel`` package; all project
metadata lives in ``pyproject.toml`` (name, version, the ``src/`` layout,
and the ``repro`` console script).
"""

from setuptools import setup

setup()
