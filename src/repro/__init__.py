"""repro: reproduction of "AS-Level BGP Community Usage Classification" (IMC 2021).

The package is organised as the paper's system is:

* :mod:`repro.bgp` -- BGP data model (ASNs, prefixes, communities, paths,
  messages, observations),
* :mod:`repro.mrt` -- MRT wire-format encoder/decoder,
* :mod:`repro.sanitize` -- data sanitation and community source groups,
* :mod:`repro.topology` -- Internet-like AS topology, relationships,
  valley-free routing, customer cones,
* :mod:`repro.collectors` -- route collector projects and per-day archives,
* :mod:`repro.usage` -- the community usage mental model (roles, propagation,
  noise, scenarios),
* :mod:`repro.core` -- the inference algorithm (the paper's contribution),
* :mod:`repro.eval` -- metrics, ROC sweeps, stability, characterisation, and
  PEERING-style validation,
* :mod:`repro.datasets` -- synthetic dataset construction and statistics,
* :mod:`repro.experiments` -- one driver per paper table / figure,
* :mod:`repro.stream` -- incremental, windowed, checkpointable streaming
  classification over live update feeds,
* :mod:`repro.parallel` -- multi-core execution of the batch pipeline and
  the streaming engine,
* :mod:`repro.service` -- durable snapshot store and the JSON HTTP query
  API serving classification results.

Quickstart::

    from repro.datasets import SyntheticConfig, SyntheticInternet
    from repro.core import ColumnInference

    internet = SyntheticInternet.build(SyntheticConfig.small())
    tuples = internet.tuples_for_aggregate()
    result = ColumnInference().run(tuples)
    print(result.summary())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
