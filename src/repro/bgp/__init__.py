"""BGP data model.

This package provides the fundamental data types the rest of the library is
built on:

* :mod:`repro.bgp.asn` -- AS numbers, the 16/32-bit split, private and
  reserved ranges, and a synthetic allocation registry.
* :mod:`repro.bgp.prefix` -- IPv4/IPv6 prefixes and a prefix allocation
  registry used during sanitation.
* :mod:`repro.bgp.community` -- regular (RFC 1997) and large (RFC 8092)
  community values, well-known communities, and community sets.
* :mod:`repro.bgp.path` -- AS paths, including AS_SET segments and
  prepending, and the leaf/transit distinction.
* :mod:`repro.bgp.messages` -- BGP UPDATE messages and RIB entries carrying
  path attributes.
* :mod:`repro.bgp.announcement` -- the ``(path, comm)`` observation tuples
  consumed by the inference algorithm.
"""

from repro.bgp.asn import (
    ASN,
    ASNRegistry,
    AS_TRANS,
    MAX_ASN_16BIT,
    MAX_ASN_32BIT,
    is_16bit,
    is_32bit_only,
    is_private_asn,
    is_public_asn,
    is_reserved_asn,
)
from repro.bgp.prefix import Prefix, PrefixAllocation, parse_prefix
from repro.bgp.community import (
    Community,
    LargeCommunity,
    CommunitySet,
    WellKnownCommunity,
    parse_community,
)
from repro.bgp.path import ASPath, PathSegment, SegmentType
from repro.bgp.messages import (
    BGPUpdate,
    RIBEntry,
    Origin,
    PathAttributes,
)
from repro.bgp.announcement import RouteObservation, PathCommTuple

__all__ = [
    "ASN",
    "ASNRegistry",
    "AS_TRANS",
    "MAX_ASN_16BIT",
    "MAX_ASN_32BIT",
    "is_16bit",
    "is_32bit_only",
    "is_private_asn",
    "is_public_asn",
    "is_reserved_asn",
    "Prefix",
    "PrefixAllocation",
    "parse_prefix",
    "Community",
    "LargeCommunity",
    "CommunitySet",
    "WellKnownCommunity",
    "parse_community",
    "ASPath",
    "PathSegment",
    "SegmentType",
    "BGPUpdate",
    "RIBEntry",
    "Origin",
    "PathAttributes",
    "RouteObservation",
    "PathCommTuple",
]
