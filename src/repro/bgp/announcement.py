"""Route observations and ``(path, comm)`` tuples.

The analytic unit of the paper is the tuple ``(path, comm)`` — an AS path
together with the community set the collector peer exported
(``output(A_1)``), see Section 4.  :class:`RouteObservation` carries the full
provenance (collector, peer, prefix, timestamp) needed for the dataset
statistics in Table 1; :class:`PathCommTuple` is the deduplicated form fed to
the inference algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Set, Tuple

from repro.bgp.asn import ASN
from repro.bgp.community import CommunitySet
from repro.bgp.path import ASPath
from repro.bgp.prefix import Prefix


@dataclass(frozen=True)
class PathCommTuple:
    """A unique ``(path, comm)`` pair — the input unit of the inference.

    ``comm`` is the community set output of the collector peer ``A_1``
    (the paper writes ``C, A_1, ..., A_n | output(A_1)``).
    """

    path: ASPath
    communities: CommunitySet = field(default_factory=CommunitySet.empty)

    @property
    def peer(self) -> ASN:
        """The collector peer AS (``A_1``)."""
        return self.path.peer

    @property
    def origin(self) -> ASN:
        """The origin AS (``A_n``)."""
        return self.path.origin

    def __len__(self) -> int:
        return len(self.path)

    def __iter__(self):
        return iter((self.path, self.communities))


@dataclass(frozen=True)
class RouteObservation:
    """A single observation of a route at a collector.

    One RIB entry or one announced prefix of an update message maps to one
    observation.  Observations keep enough provenance to compute the Table 1
    dataset statistics and to bin data by day (Figures 3 and 4).
    """

    collector: str
    peer_asn: ASN
    prefix: Prefix
    path: ASPath
    communities: CommunitySet = field(default_factory=CommunitySet.empty)
    timestamp: int = 0
    from_rib: bool = False

    def to_tuple(self) -> PathCommTuple:
        """Project the observation onto its ``(path, comm)`` pair."""
        return PathCommTuple(self.path, self.communities)


def unique_tuples(observations: Iterable[RouteObservation]) -> List[PathCommTuple]:
    """Deduplicate observations into unique ``(path, comm)`` tuples.

    The order of first appearance is preserved so downstream processing is
    deterministic.
    """
    seen: Set[Tuple[ASPath, CommunitySet]] = set()
    result: List[PathCommTuple] = []
    for obs in observations:
        key = (obs.path, obs.communities)
        if key in seen:
            continue
        seen.add(key)
        result.append(PathCommTuple(obs.path, obs.communities))
    return result
