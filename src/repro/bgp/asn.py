"""Autonomous System Numbers.

The paper (Section 3) relies on the distinction between

* 16-bit and 32-bit ASNs -- 32-bit ASes cannot encode their own ASN in the
  upper field of a regular community, which motivates the inclusion of large
  communities in the analysis,
* public and private/reserved ASNs -- communities whose upper field is a
  non-public ASN are classified as ``private`` and ignored by the inference
  algorithm, and
* allocated and unallocated ASNs -- routing information containing
  unallocated ASNs is removed during sanitation (Section 4.1).

This module implements those predicates plus :class:`ASNRegistry`, a
synthetic stand-in for the RIR delegation files the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Set, Tuple

#: An AS number is represented as a plain ``int`` throughout the library.
ASN = int

#: Largest 16-bit (2-byte) ASN.
MAX_ASN_16BIT: ASN = 0xFFFF

#: Largest 32-bit (4-byte) ASN.
MAX_ASN_32BIT: ASN = 0xFFFF_FFFF

#: AS_TRANS (RFC 6793): placeholder ASN used by old speakers for 4-byte ASNs.
AS_TRANS: ASN = 23456

#: Private-use 16-bit range (RFC 6996).
PRIVATE_16BIT_RANGE: Tuple[ASN, ASN] = (64512, 65534)

#: Private-use 32-bit range (RFC 6996).
PRIVATE_32BIT_RANGE: Tuple[ASN, ASN] = (4200000000, 4294967294)

#: Documentation ranges (RFC 5398).
DOCUMENTATION_RANGES: Tuple[Tuple[ASN, ASN], ...] = (
    (64496, 64511),
    (65536, 65551),
)

#: Individually reserved ASNs (RFC 7607, RFC 6793, last ASNs of each space).
RESERVED_ASNS: frozenset = frozenset({0, AS_TRANS, 65535, MAX_ASN_32BIT})


def is_16bit(asn: ASN) -> bool:
    """Return ``True`` if *asn* fits into 2 bytes."""
    return 0 <= asn <= MAX_ASN_16BIT


def is_32bit_only(asn: ASN) -> bool:
    """Return ``True`` if *asn* requires a 4-byte representation."""
    return MAX_ASN_16BIT < asn <= MAX_ASN_32BIT


def is_valid_asn(asn: ASN) -> bool:
    """Return ``True`` if *asn* is inside the 32-bit ASN space."""
    return 0 <= asn <= MAX_ASN_32BIT


def is_reserved_asn(asn: ASN) -> bool:
    """Return ``True`` for ASNs reserved by the IETF (AS 0, AS_TRANS, ...)."""
    if asn in RESERVED_ASNS:
        return True
    # Unrolled DOCUMENTATION_RANGES: this predicate runs once per path hop
    # on the sanitation hot path.
    return 64496 <= asn <= 64511 or 65536 <= asn <= 65551


def is_private_asn(asn: ASN) -> bool:
    """Return ``True`` for private-use ASNs (RFC 6996) and reserved ASNs.

    The paper's ``private`` community source group covers communities whose
    upper field is "a non-public ASN, i.e., private, reserved, not assigned
    or allocated" (Section 3.2); allocation status is handled separately by
    :class:`ASNRegistry`.
    """
    if is_reserved_asn(asn):
        return True
    lo, hi = PRIVATE_16BIT_RANGE
    if lo <= asn <= hi:
        return True
    lo, hi = PRIVATE_32BIT_RANGE
    return lo <= asn <= hi


def is_public_asn(asn: ASN) -> bool:
    """Return ``True`` if *asn* is a valid, non-private, non-reserved ASN."""
    return is_valid_asn(asn) and not is_private_asn(asn)


@dataclass
class ASNRegistry:
    """Synthetic ASN allocation registry.

    Stand-in for the RIR delegation files ("current allocation information
    from the regional registries", Section 4.1).  The registry knows which
    public ASNs are *allocated*; sanitation drops routing information that
    contains unallocated ASNs.

    The registry is typically populated by the topology generator
    (:mod:`repro.topology.generator`), which registers every ASN it creates.
    """

    allocated: Set[ASN] = field(default_factory=set)

    def allocate(self, asn: ASN) -> None:
        """Mark *asn* as allocated.

        Raises :class:`ValueError` for ASNs outside the public space, since a
        registry only ever hands out public numbers.
        """
        if not is_public_asn(asn):
            raise ValueError(f"cannot allocate non-public ASN {asn}")
        self.allocated.add(asn)

    def allocate_many(self, asns: Iterable[ASN]) -> None:
        """Mark every ASN in *asns* as allocated."""
        for asn in asns:
            self.allocate(asn)

    def deallocate(self, asn: ASN) -> None:
        """Remove *asn* from the registry (no-op if absent)."""
        self.allocated.discard(asn)

    def is_allocated(self, asn: ASN) -> bool:
        """Return ``True`` if *asn* is registered as allocated."""
        return asn in self.allocated

    def is_routable(self, asn: ASN) -> bool:
        """Return ``True`` if *asn* may legitimately appear in an AS path."""
        return is_public_asn(asn) and self.is_allocated(asn)

    def __contains__(self, asn: object) -> bool:
        return isinstance(asn, int) and self.is_allocated(asn)

    def __len__(self) -> int:
        return len(self.allocated)

    def __iter__(self) -> Iterator[ASN]:
        return iter(sorted(self.allocated))

    @classmethod
    def from_asns(cls, asns: Iterable[ASN]) -> "ASNRegistry":
        """Build a registry with every ASN in *asns* allocated."""
        registry = cls()
        registry.allocate_many(asns)
        return registry

    def count_32bit(self) -> int:
        """Number of allocated ASNs that require 4 bytes (Table 1 row)."""
        return sum(1 for asn in self.allocated if is_32bit_only(asn))
