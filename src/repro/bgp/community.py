"""BGP community values.

Implements the two community flavours the paper analyses:

* **regular communities** (RFC 1997): 32-bit values written ``alpha:beta``
  where by convention ``alpha`` (the *upper field*) is the 16-bit ASN of the
  AS that defines the value;
* **large communities** (RFC 8092): 96-bit values written
  ``alpha:beta:gamma`` where ``alpha`` (the Global Administrator, called the
  upper field throughout the paper) is a 32-bit ASN.

Both flavours expose a uniform ``upper`` property so the inference algorithm
can treat them identically (Section 3.2: "we refer to alpha in both community
variants as the upper field").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Optional, Set, Union

from repro.bgp.asn import ASN, MAX_ASN_16BIT, MAX_ASN_32BIT


class WellKnownCommunity(enum.IntEnum):
    """Well-known regular communities (RFC 1997, RFC 3765, RFC 7999)."""

    GRACEFUL_SHUTDOWN = 0xFFFF0000
    ACCEPT_OWN = 0xFFFF0001
    BLACKHOLE = 0xFFFF029A
    NO_EXPORT = 0xFFFFFF01
    NO_ADVERTISE = 0xFFFFFF02
    NO_EXPORT_SUBCONFED = 0xFFFFFF03
    NO_PEER = 0xFFFFFF04

    @classmethod
    def is_well_known(cls, value: int) -> bool:
        """Return ``True`` if *value* lives in the well-known 0xFFFF range."""
        return (value >> 16) == 0xFFFF


@dataclass(frozen=True, order=True)
class Community:
    """A regular (RFC 1997) BGP community ``upper:lower``."""

    upper: int
    lower: int

    def __post_init__(self) -> None:
        if not 0 <= self.upper <= MAX_ASN_16BIT:
            raise ValueError(f"regular community upper field out of range: {self.upper}")
        if not 0 <= self.lower <= 0xFFFF:
            raise ValueError(f"regular community lower field out of range: {self.lower}")

    @property
    def value(self) -> int:
        """The packed 32-bit wire value."""
        return (self.upper << 16) | self.lower

    @property
    def is_well_known(self) -> bool:
        """``True`` if this community is in the reserved well-known range."""
        return WellKnownCommunity.is_well_known(self.value)

    @property
    def is_large(self) -> bool:
        return False

    def __reduce__(self):
        # Compact pickle: two ints instead of an instance-dict payload.
        return (Community, (self.upper, self.lower))

    def __str__(self) -> str:
        return f"{self.upper}:{self.lower}"

    @classmethod
    def from_value(cls, value: int) -> "Community":
        """Build a community from its packed 32-bit wire value."""
        if not 0 <= value <= 0xFFFFFFFF:
            raise ValueError("community value out of range")
        return cls(value >> 16, value & 0xFFFF)

    @classmethod
    def from_string(cls, text: str) -> "Community":
        """Parse ``"upper:lower"``."""
        upper_s, _, lower_s = text.partition(":")
        if not lower_s:
            raise ValueError(f"not a regular community: {text!r}")
        return cls(int(upper_s), int(lower_s))


@dataclass(frozen=True, order=True)
class LargeCommunity:
    """A large (RFC 8092) BGP community ``upper:data1:data2``."""

    upper: int
    data1: int
    data2: int

    def __post_init__(self) -> None:
        for name, value in (("upper", self.upper), ("data1", self.data1), ("data2", self.data2)):
            if not 0 <= value <= MAX_ASN_32BIT:
                raise ValueError(f"large community {name} field out of range: {value}")

    @property
    def is_well_known(self) -> bool:
        return False

    @property
    def is_large(self) -> bool:
        return True

    def __reduce__(self):
        return (LargeCommunity, (self.upper, self.data1, self.data2))

    def __str__(self) -> str:
        return f"{self.upper}:{self.data1}:{self.data2}"

    @classmethod
    def from_string(cls, text: str) -> "LargeCommunity":
        """Parse ``"upper:data1:data2"``."""
        parts = text.split(":")
        if len(parts) != 3:
            raise ValueError(f"not a large community: {text!r}")
        return cls(int(parts[0]), int(parts[1]), int(parts[2]))


#: Either community flavour.
AnyCommunity = Union[Community, LargeCommunity]


def parse_community(text: str) -> AnyCommunity:
    """Parse either a regular (``a:b``) or large (``a:b:c``) community."""
    if text.count(":") == 2:
        return LargeCommunity.from_string(text)
    return Community.from_string(text)


def make_community(upper: ASN, lower: int = 0, *, large: Optional[bool] = None) -> AnyCommunity:
    """Build a community whose upper field is *upper*.

    When *large* is ``None`` the flavour is chosen automatically: a regular
    community when the ASN fits in 16 bits, a large community otherwise.
    This mirrors how operators must use large communities to encode 32-bit
    ASNs (Section 3.2).
    """
    if large is None:
        large = upper > MAX_ASN_16BIT
    if large:
        return LargeCommunity(upper, lower & MAX_ASN_32BIT, 0)
    return Community(upper, lower & 0xFFFF)


class CommunitySet:
    """An immutable set of communities attached to an announcement.

    The community attribute is a set for the purposes of the paper's model:
    the inference algorithm only asks whether a community with a given upper
    field is present (``A_x:* in output(A_1)``).
    """

    __slots__ = ("_items", "_hash", "_uppers")

    def __init__(self, items: Iterable[AnyCommunity] = ()) -> None:
        self._items: FrozenSet[AnyCommunity] = frozenset(items)

    # -- set-like protocol -------------------------------------------------
    def __iter__(self) -> Iterator[AnyCommunity]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: object) -> bool:
        return item in self._items

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CommunitySet):
            return self._items == other._items
        if isinstance(other, (set, frozenset)):
            return self._items == frozenset(other)
        return NotImplemented

    def __hash__(self) -> int:
        # Community sets are dict/set keys on the hot path; cache the hash.
        # The guard keeps instances from pickles predating the slot working.
        try:
            return self._hash
        except AttributeError:
            value = hash(self._items)
            self._hash = value
            return value

    def __reduce__(self):
        # Compact pickle: a plain tuple of (already compact) communities.
        return (CommunitySet, (tuple(self._items),))

    def __bool__(self) -> bool:
        return bool(self._items)

    def __repr__(self) -> str:
        if not self._items:
            return "CommunitySet()"
        listing = ", ".join(sorted(str(c) for c in self._items))
        return f"CommunitySet({{{listing}}})"

    # -- construction ------------------------------------------------------
    @classmethod
    def empty(cls) -> "CommunitySet":
        """The empty community set (a silent-and-cleaner output)."""
        return _EMPTY

    @classmethod
    def from_strings(cls, texts: Iterable[str]) -> "CommunitySet":
        """Parse a community set from textual values."""
        return cls(parse_community(t) for t in texts)

    def union(self, other: Iterable[AnyCommunity]) -> "CommunitySet":
        """Return a new set containing communities from both operands."""
        other_items = other._items if isinstance(other, CommunitySet) else frozenset(other)
        if not other_items:
            return self
        if not self._items:
            return other if isinstance(other, CommunitySet) else CommunitySet(other_items)
        return CommunitySet(self._items | other_items)

    def __or__(self, other: Iterable[AnyCommunity]) -> "CommunitySet":
        return self.union(other)

    def add(self, item: AnyCommunity) -> "CommunitySet":
        """Return a new set with *item* added."""
        if item in self._items:
            return self
        return CommunitySet(self._items | {item})

    def difference(self, other: Iterable[AnyCommunity]) -> "CommunitySet":
        """Return a new set without the communities in *other*."""
        other_items = other._items if isinstance(other, CommunitySet) else frozenset(other)
        return CommunitySet(self._items - other_items)

    # -- queries used by the inference algorithm ---------------------------
    def upper_fields(self) -> FrozenSet[int]:
        """The set of distinct upper fields present in this community set.

        Cached: tuple preparation asks for this once per unique tuple, and
        community sets are shared across many tuples.  The guard keeps
        instances from pickles predating the slot working.
        """
        try:
            return self._uppers
        except AttributeError:
            value = frozenset(c.upper for c in self._items)
            self._uppers = value
            return value

    def has_upper(self, asn: ASN) -> bool:
        """``True`` if any community has *asn* in its upper field.

        This is the ``A:*  in  output(A_1)`` test from Section 5.3.
        """
        return any(c.upper == asn for c in self._items)

    def with_upper(self, asn: ASN) -> "CommunitySet":
        """Return the subset of communities whose upper field equals *asn*."""
        return CommunitySet(c for c in self._items if c.upper == asn)

    def regular(self) -> "CommunitySet":
        """Return only the regular (RFC 1997) communities."""
        return CommunitySet(c for c in self._items if not c.is_large)

    def large(self) -> "CommunitySet":
        """Return only the large (RFC 8092) communities."""
        return CommunitySet(c for c in self._items if c.is_large)

    def sorted(self) -> List[AnyCommunity]:
        """Deterministically ordered list of the communities."""
        return sorted(self._items, key=lambda c: (c.is_large, str(c)))

    def to_strings(self) -> List[str]:
        """Textual representation of every community, sorted."""
        return [str(c) for c in self.sorted()]


_EMPTY = CommunitySet()
