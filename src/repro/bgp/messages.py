"""BGP update messages and RIB entries.

The paper consumes two kinds of archived routing data (Section 4): BGP
**update messages** (announcements and withdrawals) and **RIB snapshots**
(table dumps).  Both reduce to the same analytic unit — an AS path plus the
community attribute observed at a collector peer — but carrying both shapes
lets the pipeline exercise the same parsing, sanitation, and aggregation
steps the paper's tooling performs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.bgp.asn import ASN
from repro.bgp.community import CommunitySet
from repro.bgp.path import ASPath
from repro.bgp.prefix import Prefix


class Origin(enum.IntEnum):
    """BGP ORIGIN attribute values (RFC 4271)."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


@dataclass(frozen=True)
class PathAttributes:
    """The subset of BGP path attributes the analysis cares about."""

    as_path: ASPath
    communities: CommunitySet = field(default_factory=CommunitySet.empty)
    origin: Origin = Origin.IGP
    next_hop: int = 0  # IPv4 next hop as integer; purely decorative here
    local_pref: Optional[int] = None
    med: Optional[int] = None

    def with_communities(self, communities: CommunitySet) -> "PathAttributes":
        """Return a copy with the community attribute replaced."""
        return PathAttributes(
            as_path=self.as_path,
            communities=communities,
            origin=self.origin,
            next_hop=self.next_hop,
            local_pref=self.local_pref,
            med=self.med,
        )


@dataclass(frozen=True)
class BGPUpdate:
    """A BGP UPDATE as received by a route collector from a peer.

    ``announced`` prefixes share the single set of path attributes;
    ``withdrawn`` prefixes carry none (RFC 4271).  A withdrawal-only update
    has ``attributes is None``.
    """

    peer_asn: ASN
    timestamp: int
    announced: Tuple[Prefix, ...] = ()
    withdrawn: Tuple[Prefix, ...] = ()
    attributes: Optional[PathAttributes] = None

    def __post_init__(self) -> None:
        if self.announced and self.attributes is None:
            raise ValueError("announcements require path attributes")
        if not isinstance(self.announced, tuple):
            object.__setattr__(self, "announced", tuple(self.announced))
        if not isinstance(self.withdrawn, tuple):
            object.__setattr__(self, "withdrawn", tuple(self.withdrawn))

    @property
    def is_announcement(self) -> bool:
        """``True`` if at least one prefix is announced."""
        return bool(self.announced)

    @property
    def is_withdrawal(self) -> bool:
        """``True`` if at least one prefix is withdrawn."""
        return bool(self.withdrawn)

    @property
    def as_path(self) -> Optional[ASPath]:
        """The AS path of the announcement, if any."""
        return self.attributes.as_path if self.attributes else None

    @property
    def communities(self) -> CommunitySet:
        """The community attribute (empty for withdrawal-only updates)."""
        if self.attributes is None:
            return CommunitySet.empty()
        return self.attributes.communities


@dataclass(frozen=True)
class RIBEntry:
    """A single route from a RIB snapshot (one prefix, one peer)."""

    peer_asn: ASN
    prefix: Prefix
    attributes: PathAttributes
    timestamp: int = 0

    @property
    def as_path(self) -> ASPath:
        """The AS path of the installed route."""
        return self.attributes.as_path

    @property
    def communities(self) -> CommunitySet:
        """The community attribute of the installed route."""
        return self.attributes.communities
