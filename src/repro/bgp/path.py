"""AS paths.

An AS path ``p`` is a sequence of ASNs ``A_1, A_2, ..., A_n`` where ``A_1``
is the collector peer and ``A_n`` the origin (Section 3.1).  On the wire an
AS path consists of *segments* (AS_SEQUENCE / AS_SET); the analysis operates
on the flattened sequence after sanitation removed AS_SETs and collapsed
prepending (Section 4.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.bgp.asn import ASN


class SegmentType(enum.IntEnum):
    """AS path segment types (RFC 4271 / RFC 5065)."""

    AS_SET = 1
    AS_SEQUENCE = 2
    AS_CONFED_SEQUENCE = 3
    AS_CONFED_SET = 4


@dataclass(frozen=True)
class PathSegment:
    """A single AS path segment as encoded on the wire."""

    segment_type: SegmentType
    asns: Tuple[ASN, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.segment_type, SegmentType):
            object.__setattr__(self, "segment_type", SegmentType(self.segment_type))
        if not isinstance(self.asns, tuple):
            object.__setattr__(self, "asns", tuple(self.asns))

    @property
    def is_set(self) -> bool:
        """``True`` for AS_SET / AS_CONFED_SET segments."""
        return self.segment_type in (SegmentType.AS_SET, SegmentType.AS_CONFED_SET)

    def __len__(self) -> int:
        return len(self.asns)


class ASPath:
    """An AS path as observed at a route collector.

    The canonical representation used by the library is a tuple of ASNs in
    collector-peer-first order: ``path[0]`` is :attr:`peer` (``A_1``) and
    ``path[-1]`` is :attr:`origin` (``A_n``).  Construction from raw wire
    segments is supported via :meth:`from_segments`.
    """

    __slots__ = ("_asns", "_segments", "_hash")

    def __init__(self, asns: Iterable[ASN], segments: Optional[Sequence[PathSegment]] = None) -> None:
        self._asns: Tuple[ASN, ...] = tuple(asns)
        if not self._asns and segments is None:
            raise ValueError("AS path must contain at least one ASN")
        self._segments: Optional[Tuple[PathSegment, ...]] = (
            tuple(segments) if segments is not None else None
        )

    # -- construction ------------------------------------------------------
    @classmethod
    def from_segments(cls, segments: Sequence[PathSegment]) -> "ASPath":
        """Build a path from wire segments, flattening AS_SEQUENCEs.

        ASNs inside AS_SET segments are preserved in the segment list but are
        *not* part of the flattened ASN sequence; sanitation later decides
        whether to drop the whole path (the paper removes AS_SETs).
        """
        flat: List[ASN] = []
        for segment in segments:
            if not segment.is_set:
                flat.extend(segment.asns)
        return cls(flat, segments=segments)

    @classmethod
    def from_string(cls, text: str) -> "ASPath":
        """Parse a space-separated AS path string, e.g. ``"3356 1299 64512"``.

        AS_SET members may be written in braces (``{65000,65001}``) and are
        recorded as an AS_SET segment.
        """
        segments: List[PathSegment] = []
        sequence: List[ASN] = []
        for token in text.split():
            if token.startswith("{"):
                if sequence:
                    segments.append(PathSegment(SegmentType.AS_SEQUENCE, tuple(sequence)))
                    sequence = []
                members = tuple(int(t) for t in token.strip("{}").split(",") if t)
                segments.append(PathSegment(SegmentType.AS_SET, members))
            else:
                sequence.append(int(token))
        if sequence:
            segments.append(PathSegment(SegmentType.AS_SEQUENCE, tuple(sequence)))
        return cls.from_segments(segments)

    # -- sequence protocol ---------------------------------------------------
    def __iter__(self) -> Iterator[ASN]:
        return iter(self._asns)

    def __len__(self) -> int:
        return len(self._asns)

    def __getitem__(self, index):
        return self._asns[index]

    def __contains__(self, asn: object) -> bool:
        return asn in self._asns

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ASPath):
            return self._asns == other._asns
        if isinstance(other, tuple):
            return self._asns == other
        return NotImplemented

    def __hash__(self) -> int:
        # Paths are dict/set keys all over the hot path (dedup, interning,
        # retention maps); cache the hash on first use.  The guard instead of
        # an ``__init__`` assignment keeps instances from old pickles (which
        # predate the ``_hash`` slot) working.
        try:
            return self._hash
        except AttributeError:
            value = hash(self._asns)
            self._hash = value
            return value

    def __reduce__(self):
        # Compact pickle: positional constructor args instead of a per-slot
        # state dict.  Matters when tuples are shipped between processes.
        if self._segments is None:
            return (ASPath, (self._asns,))
        return (ASPath, (self._asns, self._segments))

    def __repr__(self) -> str:
        return f"ASPath({' '.join(str(a) for a in self._asns)})"

    def __str__(self) -> str:
        return " ".join(str(a) for a in self._asns)

    # -- accessors -----------------------------------------------------------
    @property
    def asns(self) -> Tuple[ASN, ...]:
        """The flattened ASN sequence, collector peer first."""
        return self._asns

    @property
    def segments(self) -> Tuple[PathSegment, ...]:
        """The wire segments (synthesised if the path was built from ASNs)."""
        if self._segments is not None:
            return self._segments
        return (PathSegment(SegmentType.AS_SEQUENCE, self._asns),)

    @property
    def peer(self) -> ASN:
        """``A_1`` — the collector peer AS."""
        return self._asns[0]

    @property
    def origin(self) -> ASN:
        """``A_n`` — the AS that originated the announcement."""
        return self._asns[-1]

    @property
    def has_as_set(self) -> bool:
        """``True`` if any wire segment is an AS_SET."""
        return self._segments is not None and any(s.is_set for s in self._segments)

    @property
    def has_prepending(self) -> bool:
        """``True`` if the same ASN appears in immediate succession."""
        asns = self._asns
        # All-distinct paths (the common case) are settled by one C-level
        # set build instead of a Python walk over the elements.
        if len(set(asns)) == len(asns):
            return False
        for i in range(1, len(asns)):
            if asns[i] == asns[i - 1]:
                return True
        return False

    @property
    def has_loop(self) -> bool:
        """``True`` if an ASN re-appears non-consecutively (a path loop)."""
        asns = self._asns
        if len(set(asns)) == len(asns):
            return False
        seen: Set[ASN] = set()
        previous: Optional[ASN] = None
        for asn in asns:
            if asn == previous:
                previous = asn
                continue
            if asn in seen:
                return True
            seen.add(asn)
            previous = asn
        return False

    def unique_asns(self) -> Set[ASN]:
        """The set of distinct ASNs on the path."""
        return set(self._asns)

    # -- paper terminology ---------------------------------------------------
    def index_of(self, asn: ASN) -> int:
        """1-based path index of *asn* (the paper's ``x`` in ``A_x``)."""
        return self._asns.index(asn) + 1

    def upstream_of(self, index: int) -> Tuple[ASN, ...]:
        """All ASes ``A_i`` with ``i < index`` (closer to the collector)."""
        if not 1 <= index <= len(self._asns):
            raise IndexError(f"path index {index} out of range")
        return self._asns[: index - 1]

    def downstream_of(self, index: int) -> Tuple[ASN, ...]:
        """All ASes ``A_j`` with ``j > index`` (closer to the origin)."""
        if not 1 <= index <= len(self._asns):
            raise IndexError(f"path index {index} out of range")
        return self._asns[index:]

    def at(self, index: int) -> ASN:
        """The AS at 1-based path *index* (``A_index``)."""
        if not 1 <= index <= len(self._asns):
            raise IndexError(f"path index {index} out of range")
        return self._asns[index - 1]

    # -- transformations -----------------------------------------------------
    def collapse_prepending(self) -> "ASPath":
        """Return a path with identical ASNs in succession collapsed."""
        if not self.has_prepending:
            return self
        collapsed: List[ASN] = []
        for asn in self._asns:
            if not collapsed or collapsed[-1] != asn:
                collapsed.append(asn)
        return ASPath(collapsed)

    def prepend_peer(self, peer_asn: ASN) -> "ASPath":
        """Return a path with *peer_asn* prepended if ``A_1`` differs from it.

        Mirrors the sanitation step that re-inserts IXP route servers which do
        not add themselves to the AS path (Section 4.1).
        """
        if self._asns and self._asns[0] == peer_asn:
            return self
        return ASPath((peer_asn,) + self._asns)

    def without_as_sets(self) -> Optional["ASPath"]:
        """Return the path if it carries no AS_SET, else ``None``."""
        return None if self.has_as_set else self
