"""IP prefixes and prefix allocation.

The sanitation step of the paper removes "routing information that includes
unallocated prefixes" (Section 4.1).  This module provides a light-weight
prefix type built on :mod:`ipaddress` plus :class:`PrefixAllocation`, a
synthetic stand-in for RIR delegation data that answers "is this prefix
covered by an allocated block?".
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Tuple, Union

from repro.bgp.prefixtrie import PrefixTrie

IPNetwork = Union[ipaddress.IPv4Network, ipaddress.IPv6Network]


@dataclass(frozen=True, order=True)
class Prefix:
    """An IP prefix, e.g. ``203.0.113.0/24`` or ``2001:db8::/32``.

    Stored in a normalised integer form so it can be hashed, ordered, and
    encoded to MRT without re-parsing strings.
    """

    network: int
    length: int
    afi: int = 1  # 1 = IPv4, 2 = IPv6 (MRT address family identifiers)

    MAX_LENGTH_V4 = 32
    MAX_LENGTH_V6 = 128

    def __post_init__(self) -> None:
        max_len = self.MAX_LENGTH_V4 if self.afi == 1 else self.MAX_LENGTH_V6
        if self.afi not in (1, 2):
            raise ValueError(f"invalid AFI {self.afi}")
        if not 0 <= self.length <= max_len:
            raise ValueError(f"invalid prefix length {self.length} for AFI {self.afi}")
        max_net = (1 << (32 if self.afi == 1 else 128)) - 1
        if not 0 <= self.network <= max_net:
            raise ValueError("network address out of range")

    @property
    def max_length(self) -> int:
        """Maximum prefix length for this address family."""
        return self.MAX_LENGTH_V4 if self.afi == 1 else self.MAX_LENGTH_V6

    @property
    def is_ipv4(self) -> bool:
        return self.afi == 1

    @property
    def is_ipv6(self) -> bool:
        return self.afi == 2

    def to_network(self) -> IPNetwork:
        """Return the :mod:`ipaddress` network object for this prefix."""
        if self.is_ipv4:
            return ipaddress.IPv4Network((self.network, self.length))
        return ipaddress.IPv6Network((self.network, self.length))

    def covers(self, other: "Prefix") -> bool:
        """Return ``True`` if *other* is equal to or more specific than us."""
        if self.afi != other.afi or other.length < self.length:
            return False
        shift = self.max_length - self.length
        return (self.network >> shift) == (other.network >> shift)

    def __str__(self) -> str:
        return str(self.to_network())

    @classmethod
    def from_string(cls, text: str) -> "Prefix":
        """Parse a textual prefix such as ``"10.0.0.0/8"``."""
        network = ipaddress.ip_network(text, strict=True)
        afi = 1 if network.version == 4 else 2
        return cls(int(network.network_address), network.prefixlen, afi)

    @classmethod
    def ipv4(cls, network: int, length: int) -> "Prefix":
        """Construct an IPv4 prefix from integer network and length."""
        return cls(network, length, afi=1)

    @classmethod
    def ipv6(cls, network: int, length: int) -> "Prefix":
        """Construct an IPv6 prefix from integer network and length."""
        return cls(network, length, afi=2)


def parse_prefix(text: str) -> Prefix:
    """Convenience wrapper around :meth:`Prefix.from_string`."""
    return Prefix.from_string(text)


#: Well-known special-use IPv4 blocks that must never appear in the DFZ.
_SPECIAL_USE_V4: Tuple[str, ...] = (
    "0.0.0.0/8",
    "10.0.0.0/8",
    "100.64.0.0/10",
    "127.0.0.0/8",
    "169.254.0.0/16",
    "172.16.0.0/12",
    "192.0.2.0/24",
    "192.168.0.0/16",
    "198.18.0.0/15",
    "198.51.100.0/24",
    "203.0.113.0/24",
    "224.0.0.0/4",
    "240.0.0.0/4",
)


#: The special-use blocks, parsed once into a covering-lookup trie.  The old
#: implementation re-parsed all 13 block strings on every call — and this
#: predicate runs for every observation that reaches the sanitizer.
_SPECIAL_USE_TRIE = PrefixTrie(Prefix.from_string(block) for block in _SPECIAL_USE_V4)


def is_special_use(prefix: Prefix) -> bool:
    """Return ``True`` for martian / special-use prefixes (IPv4 only)."""
    return prefix.is_ipv4 and _SPECIAL_USE_TRIE.has_covering(prefix)


@dataclass
class PrefixAllocation:
    """Synthetic prefix allocation registry.

    Allocated address space is modelled as a set of covering blocks; a prefix
    is considered allocated when it is equal to or more specific than one of
    the registered blocks and is not special-use space.
    """

    blocks: List[Prefix] = field(default_factory=list)
    _by_afi: Dict[int, List[Prefix]] = field(default_factory=dict, repr=False)
    _trie: PrefixTrie = field(default_factory=PrefixTrie, repr=False)

    def register(self, block: Prefix) -> None:
        """Register an allocated covering block."""
        self.blocks.append(block)
        self._by_afi.setdefault(block.afi, []).append(block)
        self._lookup_trie().insert(block)

    def register_many(self, blocks: Iterable[Prefix]) -> None:
        """Register several allocated blocks."""
        for block in blocks:
            self.register(block)

    def _lookup_trie(self) -> PrefixTrie:
        """The covering-lookup trie (rebuilt lazily for pre-trie pickles)."""
        trie = getattr(self, "_trie", None)
        if trie is None:
            trie = self._trie = PrefixTrie(self.blocks)
        return trie

    def is_allocated(self, prefix: Prefix) -> bool:
        """Return ``True`` if *prefix* falls inside an allocated block.

        One O(prefix-length) trie walk instead of a scan over every
        registered block (``default_internet`` alone registers ~220).
        """
        return not is_special_use(prefix) and self._lookup_trie().has_covering(prefix)

    def __contains__(self, prefix: object) -> bool:
        return isinstance(prefix, Prefix) and self.is_allocated(prefix)

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterator[Prefix]:
        return iter(self.blocks)

    @classmethod
    def default_internet(cls) -> "PrefixAllocation":
        """Registry approximating globally allocated unicast space.

        Registers the large historical /8-equivalents that cover the synthetic
        prefixes generated by :mod:`repro.topology.generator` plus a generic
        IPv6 global-unicast block.
        """
        allocation = cls()
        for first_octet in range(1, 224):
            block = Prefix.ipv4(first_octet << 24, 8)
            if not is_special_use(block):
                allocation.register(block)
        allocation.register(Prefix.from_string("2000::/3"))
        return allocation


@dataclass
class PrefixGenerator:
    """Deterministic generator of distinct routable IPv4 prefixes.

    Used by the topology generator to hand each origin AS one or more unique
    /24-ish prefixes out of allocated space, skipping special-use blocks.
    """

    next_index: int = 0

    #: First octets that are safe to hand out (public unicast, not special).
    _SAFE_FIRST_OCTETS: Tuple[int, ...] = tuple(
        o for o in range(1, 224) if o not in (0, 10, 100, 127, 169, 172, 192, 198, 203)
    )

    def next_prefix(self, length: int = 24) -> Prefix:
        """Return the next unused prefix of the requested *length*."""
        if not 8 <= length <= 32:
            raise ValueError("prefix length must be between 8 and 32")
        slots_per_octet = 1 << (length - 8)
        octet_idx, slot = divmod(self.next_index, slots_per_octet)
        if octet_idx >= len(self._SAFE_FIRST_OCTETS):
            raise RuntimeError("prefix space exhausted for this generator")
        first_octet = self._SAFE_FIRST_OCTETS[octet_idx]
        network = (first_octet << 24) | (slot << (32 - length))
        self.next_index += 1
        return Prefix.ipv4(network, length)

    def take(self, count: int, length: int = 24) -> List[Prefix]:
        """Return *count* fresh prefixes."""
        return [self.next_prefix(length) for _ in range(count)]
