"""A binary (bit-wise) prefix trie for covering-block lookups.

The sanitation pipeline answers "is this prefix covered by an allocated
block?" for every observation; the naive scan over all registered blocks is
O(blocks) per lookup.  This trie makes it O(prefix length): walk the
prefix's network bits from the most significant end and stop at the first
stored block on the path (every node on the walk whose payload is set is by
construction a covering block).

The structure mirrors the patricia-trie idiom of the ``pytricia`` C
extension commonly used for exactly this job in BGP tooling, but is
dependency-free: nodes are plain 3-element lists ``[zero-child, one-child,
payload]`` and one root is kept per address family, so IPv4/IPv6 lookups
never interfere.

The trie is duck-typed over the stored items: anything exposing ``afi``,
``network``, ``length``, and ``max_length`` (i.e. :class:`repro.bgp.prefix.
Prefix`) works, which keeps this module free of imports from the rest of
the package.
"""

from __future__ import annotations

from typing import Iterator, List

#: Node layout: ``[zero-child, one-child, stored prefix or None]``.
_Node = List


class PrefixTrie:
    """Bit-wise trie over prefixes, one sub-trie per address family."""

    __slots__ = ("_roots", "_count")

    def __init__(self, prefixes=()) -> None:
        self._roots: dict = {}
        self._count = 0
        for prefix in prefixes:
            self.insert(prefix)

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def insert(self, prefix) -> None:
        """Store *prefix*; replaces an existing entry with the same bits."""
        node = self._roots.setdefault(prefix.afi, [None, None, None])
        shift = prefix.max_length - 1
        network = prefix.network
        for depth in range(prefix.length):
            bit = (network >> (shift - depth)) & 1
            child = node[bit]
            if child is None:
                child = node[bit] = [None, None, None]
            node = child
        if node[2] is None:
            self._count += 1
        node[2] = prefix

    def covering(self, prefix):
        """The most specific stored block covering *prefix* (or ``None``).

        A stored block covers *prefix* exactly when it lies on the walk of
        *prefix*'s network bits at a depth ``<= prefix.length`` — the
        longest-prefix-match walk every BGP lookup table performs.
        """
        node = self._roots.get(prefix.afi)
        if node is None:
            return None
        best = node[2]
        shift = prefix.max_length - 1
        network = prefix.network
        for depth in range(prefix.length):
            node = node[(network >> (shift - depth)) & 1]
            if node is None:
                break
            if node[2] is not None:
                best = node[2]
        return best

    def has_covering(self, prefix) -> bool:
        """``True`` when any stored block covers *prefix*.

        Early-exits at the least specific covering block, so allocation
        checks against broad registry blocks terminate after a few bits.
        """
        node = self._roots.get(prefix.afi)
        if node is None:
            return False
        if node[2] is not None:
            return True
        shift = prefix.max_length - 1
        network = prefix.network
        for depth in range(prefix.length):
            node = node[(network >> (shift - depth)) & 1]
            if node is None:
                return False
            if node[2] is not None:
                return True
        return False

    def __contains__(self, prefix) -> bool:
        """Exact membership: was this very prefix inserted?"""
        node = self._roots.get(prefix.afi)
        if node is None:
            return False
        shift = prefix.max_length - 1
        network = prefix.network
        for depth in range(prefix.length):
            node = node[(network >> (shift - depth)) & 1]
            if node is None:
                return False
        return node[2] == prefix

    def __iter__(self) -> Iterator:
        """Yield every stored prefix (depth-first, zero branch first)."""
        for root in self._roots.values():
            stack: List[_Node] = [root]
            while stack:
                node = stack.pop()
                if node[2] is not None:
                    yield node[2]
                # Push one-child first so the zero branch is yielded first.
                if node[1] is not None:
                    stack.append(node[1])
                if node[0] is not None:
                    stack.append(node[0])

    def __reduce__(self):
        # Serialise as the stored prefixes, not the node graph: the pickle
        # stays flat (no 32/128-deep nested lists) and stable across
        # internal layout changes.
        return (PrefixTrie, (tuple(self),))

    def __repr__(self) -> str:
        return f"PrefixTrie({self._count} prefixes)"
