"""Command-line interface.

Mirrors the tooling the paper released alongside its dataset: point the tool
at MRT archives (RIBs and/or updates), run sanitation and the column-based
inference, and write the per-AS classification database.

Usage::

    python -m repro classify rib.mrt updates.mrt -o classification.txt
    python -m repro classify --threshold 0.95 --format json dump.mrt
    python -m repro classify --algorithm row dump.mrt    # row-based baseline
    python -m repro classify --workers 4 dump.mrt        # multi-core map-reduce
    python -m repro demo --scale tiny           # no input data: run on the synthetic Internet
    python -m repro show classification.txt --asn 3356
    python -m repro stream updates.mrt --window 3600 --checkpoint-dir state/
    python -m repro stream updates.mrt --workers 4       # multi-process shard workers
    python -m repro stream updates.mrt --store results.db   # materialize snapshots
    python -m repro serve --store results.db --port 8080    # HTTP query API
    python -m repro serve --store results.db --http-workers 4   # SO_REUSEPORT fan-out
    python -m repro serve --store results.db --retention 32 --archive-dir cold/
    python -m repro archive cold/ list                      # inspect archive segments
    python -m repro replicate --from http://leader:8080 --store replica.db --serve
    python -m repro replicate --from http://leader:8080 --store replica.db --promote
    python -m repro query http://localhost:8080 as 3356     # ask the running service
    python -m repro serve --store results.db --auth-token s3cret   # lock the API

Store URLs: ``--store`` accepts a plain path (SQLite, the default), an
explicit ``sqlite:path``, or ``memory:`` (in-process, tests/demos).  With
``--archive-dir`` retention *archives* pruned snapshots into checksummed
segment files instead of deleting them, and reads fall through to them.

Auth: ``--auth-token`` (or the ``REPRO_AUTH_TOKEN`` environment variable)
makes ``serve``/``replicate`` require ``Authorization: Bearer <token>`` on
every ``/v1/*`` endpoint (``/healthz`` and ``/metrics`` stay open), and
makes ``query``/``replicate`` send it on every request.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core.column import ColumnInference
from repro.core.export import ClassificationDatabase
from repro.core.pipeline import InferencePipeline
from repro.core.thresholds import Thresholds


def _write_database(database: ClassificationDatabase, output: Optional[str], fmt: str) -> None:
    """Write the database to a file or stdout in the chosen format."""
    text = database.to_json() if fmt == "json" else database.dumps()
    if output:
        Path(output).write_text(text)
    else:
        sys.stdout.write(text)


def _publish_batch(args: argparse.Namespace, result, events_total: int, unique_tuples: int) -> None:
    """Materialize a batch result into ``--store`` (no-op without the flag)."""
    if not getattr(args, "store", None):
        return
    from repro.service import publish_result
    from repro.service.store import open_store

    with open_store(args.store) as store:
        snapshot_id = publish_result(
            store, result, events_total=events_total, unique_tuples=unique_tuples
        )
    print(f"stored batch snapshot {snapshot_id} in {args.store}", file=sys.stderr)


def cmd_classify(args: argparse.Namespace) -> int:
    """``classify``: run the pipeline on MRT files."""
    blobs = {Path(filename).name: Path(filename).read_bytes() for filename in args.inputs}
    pipeline = InferencePipeline(
        thresholds=Thresholds.uniform(args.threshold),
        algorithm=args.algorithm,
        workers=args.workers,
        representation=args.representation,
        ingest_block_size=args.ingest_block_size,
    )
    outcome = pipeline.run_from_mrt(blobs)
    database = ClassificationDatabase.from_result(outcome.result)
    _write_database(database, args.output, args.format)
    _publish_batch(args, outcome.result, outcome.observations_in, outcome.unique_tuples)
    print(
        f"classified {len(database)} ASes from {outcome.observations_in} observations "
        f"({outcome.unique_tuples} unique tuples)",
        file=sys.stderr,
    )
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """``stream``: replay MRT update archives through the streaming engine."""
    from contextlib import ExitStack

    from repro.stream import (
        CheckpointManager,
        MRTReplaySource,
        StreamConfig,
        StreamEngine,
        WindowPolicy,
        WindowSpec,
    )

    if args.ingest_block_size < 1:
        print(
            f"error: --ingest-block-size must be >= 1, got {args.ingest_block_size}",
            file=sys.stderr,
        )
        return 2
    source = MRTReplaySource.from_files(args.inputs, order=args.order)
    manager = CheckpointManager(args.checkpoint_dir) if args.checkpoint_dir else None
    workers = args.workers
    # Each worker process hosts >= 1 shard; lift the shard count so every
    # requested worker actually gets a partition to own.
    shards = max(args.shards, workers)

    def report(snapshot) -> None:
        summary = snapshot.summary()
        print(
            f"window [{snapshot.window_start}, {snapshot.window_end}): "
            f"{summary['events_total']} events, {summary['unique_tuples']} tuples, "
            f"{summary['ases_observed']} ASes, {summary['changed_ases']} changed",
            file=sys.stderr,
        )

    # The store lives on the stack so *any* exit -- engine construction
    # errors, a mid-run engine failure, Ctrl-C -- closes the SQLite handle
    # and checkpoints the WAL, not just the success path.
    with ExitStack() as stack:
        store = None
        if args.store:
            from repro.service.backends import open_store

            store = stack.enter_context(
                open_store(
                    args.store,
                    retention=args.store_retention,
                    archive_dir=args.archive_dir,
                )
            )
        engine_cls = StreamEngine
        if workers > 1:
            from repro.parallel import ParallelStreamEngine

            engine_cls = ParallelStreamEngine
        resumed = args.resume and manager is not None and manager.latest() is not None
        if resumed:
            engine = engine_cls.restore(manager, on_window=report)
            # Block size is a runtime throughput knob, not checkpointed
            # state: a resumed engine honours the flag of *this* invocation.
            engine.config.ingest_block_size = args.ingest_block_size
            if workers > 1:
                engine.workers = workers
                if engine.config.shards < workers:
                    # The checkpoint pins the shard count; fewer shards than
                    # workers means the extra processes would own no partition.
                    print(
                        f"warning: checkpoint has {engine.config.shards} shard(s); "
                        f"--workers {workers} is capped to that many processes",
                        file=sys.stderr,
                    )
            print(f"resumed from {manager.latest()}", file=sys.stderr)
        else:
            config = StreamConfig(
                window=WindowSpec(
                    size=args.window,
                    policy=WindowPolicy(args.policy),
                    horizon=args.horizon,
                    allowed_lateness=args.allowed_lateness,
                ),
                shards=shards,
                algorithm=args.algorithm,
                thresholds=Thresholds.uniform(args.threshold),
                checkpoint_every=args.checkpoint_every,
                representation=args.representation,
                ingest_block_size=args.ingest_block_size,
            )
            if workers > 1:
                engine = engine_cls(
                    config, workers=workers, checkpoints=manager, on_window=report
                )
            else:
                engine = engine_cls(config, checkpoints=manager, on_window=report)

        publisher = None
        if store is not None:
            from repro.service import attach_store

            # On --resume the publisher deduplicates against the windows the
            # store already holds: the engine restores to its last
            # checkpoint and re-emits every window closed between that
            # checkpoint and the crash, and each re-emission must land on
            # the store's existing copy (exactly-once publishing).  Keyed on
            # the --resume *intent*, not on whether a checkpoint was found:
            # a resume whose checkpoint directory was lost starts the engine
            # fresh, and without dedup it would re-append every window the
            # store already holds.
            publisher = attach_store(engine, store, resume=args.resume)
            if args.resume and publisher.resume_window_end is not None:
                print(
                    f"store already holds windows through {publisher.resume_window_end}; "
                    "re-emitted windows will be deduplicated",
                    file=sys.stderr,
                )
        result = engine.run(source)
        if manager is not None:
            engine.checkpoint()
        database = ClassificationDatabase.from_result(result)
        _write_database(database, args.output, args.format)
        stats = engine.stats
        print(
            f"streamed {stats.events_in} events through {stats.windows_closed} windows: "
            f"classified {len(database)} ASes ({engine.unique_tuples} unique tuples, "
            f"{engine.late_events} late events, {stats.checkpoints_written} checkpoints)",
            file=sys.stderr,
        )
        if publisher is not None:
            deduplicated = (
                f" ({publisher.deduplicated} duplicate windows skipped)"
                if publisher.deduplicated
                else ""
            )
            print(
                f"stored {publisher.published} window snapshots in {args.store}"
                f"{deduplicated}",
                file=sys.stderr,
            )
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    """``demo``: run the pipeline on the synthetic Internet (no input files)."""
    from repro.experiments.context import ExperimentContext, ExperimentScale

    context = ExperimentContext(scale=ExperimentScale(args.scale), seed=args.seed)
    result = ColumnInference(Thresholds.uniform(args.threshold)).run(context.aggregate_tuples)
    database = ClassificationDatabase.from_result(result)
    _write_database(database, args.output, args.format)
    print(f"classified {len(database)} ASes on the synthetic Internet", file=sys.stderr)
    _publish_batch(args, result, 0, len(context.aggregate_tuples))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: expose a snapshot store over the JSON HTTP API."""
    from contextlib import ExitStack

    from repro.service import ClassificationServer, MultiWorkerServer
    from repro.service.auth import resolve_token
    from repro.service.backends import open_store, parse_store_url

    auth_token = resolve_token(args.auth_token)
    scheme, target = parse_store_url(args.store)
    if scheme == "sqlite" and target != ":memory:" and not Path(target).exists():
        print(f"error: store {args.store!r} does not exist", file=sys.stderr)
        return 1
    if args.http_workers < 1:
        print(f"error: --http-workers must be >= 1, got {args.http_workers}", file=sys.stderr)
        return 2
    if args.retention is not None:
        # The serving processes never append, so retention only takes effect
        # through an explicit prune here at startup.  With --archive-dir the
        # prune demotes into the archive instead of deleting.
        with open_store(
            args.store, retention=args.retention, archive_dir=args.archive_dir
        ) as pruning:
            dropped = pruning.compact()
        if dropped:
            verb = "archived" if args.archive_dir else "pruned"
            print(f"{verb} {dropped} snapshots beyond --retention", file=sys.stderr)
    if args.http_workers > 1:
        import signal

        with MultiWorkerServer(
            args.store,
            workers=args.http_workers,
            host=args.host,
            port=args.port,
            cache_size=args.cache_size,
            retention=args.retention,
            archive_dir=args.archive_dir,
            auth_token=auth_token,
        ) as fanout:
            fanout.start()
            locked = " [token auth]" if auth_token is not None else ""
            print(
                f"serving {args.store} at {fanout.url} with {fanout.workers} "
                f"{fanout.mode} workers{locked} (Ctrl-C to stop)",
                file=sys.stderr,
            )

            def _terminate(signum: int, frame: object) -> None:
                # SIGTERM must tear the fleet down like Ctrl-C does:
                # the default handler would kill only the supervisor and
                # orphan the workers on the port.
                raise KeyboardInterrupt

            previous = signal.signal(signal.SIGTERM, _terminate)
            try:
                fanout.serve_forever()
            except KeyboardInterrupt:
                print("shutting down", file=sys.stderr)
            finally:
                signal.signal(signal.SIGTERM, previous)
        return 0
    # Store and server both live on the stack: a failed bind (port already
    # in use) must unwind the store's handles instead of leaking them, and
    # ClassificationServer.close() is safe before serve_forever ran.
    with ExitStack() as stack:
        store = stack.enter_context(
            open_store(args.store, retention=args.retention, archive_dir=args.archive_dir)
        )
        server = stack.enter_context(
            ClassificationServer(
                store,
                host=args.host,
                port=args.port,
                cache_size=args.cache_size,
                auth_token=auth_token,
            )
        )
        locked = " [token auth]" if auth_token is not None else ""
        print(
            f"serving {args.store} at {server.url}{locked} (Ctrl-C to stop)",
            file=sys.stderr,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("shutting down", file=sys.stderr)
    return 0


def _serve_promoted(args: argparse.Namespace, stack, store, auth_token) -> int:
    """Serve a just-promoted replica as the new leader (blocks until Ctrl-C).

    Unlike ``replicate --serve``, no sync loop runs: promotion made this
    store the leader, and its deposed predecessor is fenced, not polled.
    """
    import signal

    from repro.service import ClassificationServer, MultiWorkerServer

    waiter: object
    if args.http_workers > 1:
        fanout = stack.enter_context(
            MultiWorkerServer(
                args.store,
                workers=args.http_workers,
                host=args.host,
                port=args.port,
                cache_size=args.cache_size,
                archive_dir=args.archive_dir,
                auth_token=auth_token,
            )
        )
        fanout.start()
        url, workers, waiter = fanout.url, f"{fanout.workers} {fanout.mode} workers", fanout
    else:
        server = stack.enter_context(
            ClassificationServer(
                store,
                host=args.host,
                port=args.port,
                cache_size=args.cache_size,
                auth_token=auth_token,
            )
        )
        server.start()
        url, workers, waiter = server.url, "1 worker", server
    print(
        f"serving promoted leader {args.store} at {url} with {workers} (Ctrl-C to stop)",
        file=sys.stderr,
    )

    def _terminate(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        waiter.serve_forever()  # type: ignore[attr-defined]
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        signal.signal(signal.SIGTERM, previous)
    return 0


def cmd_replicate(args: argparse.Namespace) -> int:
    """``replicate``: continuously sync a follower store from a leader's API."""
    import json as _json
    import signal
    from contextlib import ExitStack

    from repro.service import (
        ClassificationServer,
        MultiWorkerServer,
        ReplicaSyncer,
        ReplicationError,
        ServiceClient,
        ServiceError,
        promote,
    )
    from repro.service.auth import resolve_token
    from repro.service.backends import open_store

    if args.http_workers < 1:
        print(f"error: --http-workers must be >= 1, got {args.http_workers}", file=sys.stderr)
        return 2
    auth_token = resolve_token(args.auth_token)
    with ExitStack() as stack:
        store = stack.enter_context(
            open_store(args.store, retention=args.retention, archive_dir=args.archive_dir)
        )
        if args.promote:
            # Failover: fast-forward from the (possibly dead) leader on a
            # best-effort basis, then bump the fencing epoch so appends from
            # the deposed leader's epoch raise FencedWriterError here.
            outcome = promote(
                store,
                leader_url=args.source,
                token=auth_token,
                page_size=args.page_size,
            )
            print(_json.dumps(outcome.to_dict(), indent=2, sort_keys=True))
            if outcome.sync_error is not None:
                print(
                    f"warning: final sync from {args.source} failed "
                    f"({outcome.sync_error}); promoted with the replica's "
                    "current state",
                    file=sys.stderr,
                )
            print(
                f"promoted {args.store} to leader epoch {outcome.epoch}",
                file=sys.stderr,
            )
            if not args.serve:
                return 0
            return _serve_promoted(args, stack, store, auth_token)
        client = stack.enter_context(ServiceClient(args.source, token=auth_token))
        syncer = ReplicaSyncer(
            client, store, page_size=args.page_size, follower=args.follower
        )

        def report(sync) -> None:
            print(
                f"applied {sync.applied} snapshots ({sync.deduplicated} already held) "
                f"from {args.source}; replica at generation "
                f"{sync.applied_generation}/{sync.leader_generation}",
                file=sys.stderr,
            )

        try:
            report(syncer.sync_once())
        except ReplicationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        except (ServiceError, OSError) as error:
            # The first sync must succeed: a replica that cannot reach its
            # leader even once has nothing to serve and nothing to resume.
            print(f"error: leader unreachable: {error}", file=sys.stderr)
            return 1
        if args.once:
            return 0
        if args.serve:
            if args.http_workers > 1:
                fanout = stack.enter_context(
                    MultiWorkerServer(
                        args.store,
                        workers=args.http_workers,
                        host=args.host,
                        port=args.port,
                        cache_size=args.cache_size,
                        archive_dir=args.archive_dir,
                        auth_token=auth_token,
                    )
                )
                fanout.start()
                url, workers = fanout.url, f"{fanout.workers} {fanout.mode} workers"
            else:
                # The single-worker server shares the syncer's store object:
                # per-thread reader connections and the write lock make that
                # safe, and readers never block the applying writer (WAL).
                server = stack.enter_context(
                    ClassificationServer(
                        store,
                        host=args.host,
                        port=args.port,
                        cache_size=args.cache_size,
                        auth_token=auth_token,
                    )
                )
                server.start()
                url, workers = server.url, "1 worker"
            print(
                f"serving replica {args.store} at {url} with {workers} "
                "(Ctrl-C to stop)",
                file=sys.stderr,
            )

        def _terminate(signum: int, frame: object) -> None:
            # SIGTERM tears the replica down like Ctrl-C: the sync loop and
            # any serving workers must exit together.
            raise KeyboardInterrupt

        previous = signal.signal(signal.SIGTERM, _terminate)
        print(
            f"replicating {args.source} -> {args.store} every "
            f"{args.poll_interval:g}s (Ctrl-C to stop)",
            file=sys.stderr,
        )
        try:
            syncer.run(poll_interval=args.poll_interval, on_sync=report)
        except ReplicationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        except KeyboardInterrupt:
            print("shutting down", file=sys.stderr)
        finally:
            signal.signal(signal.SIGTERM, previous)
    return 0


def cmd_archive(args: argparse.Namespace) -> int:
    """``archive``: inspect and maintain a cold-tier snapshot archive."""
    from repro.service.backends import SnapshotArchive, StoreError

    root = Path(args.archive_dir)
    if not root.is_dir():
        print(f"error: archive directory {args.archive_dir!r} does not exist", file=sys.stderr)
        return 1
    try:
        archive = SnapshotArchive(root)
    except StoreError as error:
        # Unreadable segments must not hide behind a stack trace: point at
        # the broken line and exit like any other CLI failure.
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.action == "list":
        segments = archive.segments()
        for segment in segments:
            id_range = (
                f"ids {segment['min_snapshot_id']}..{segment['max_snapshot_id']}"
                if segment["records"]
                else "empty"
            )
            torn = "  [torn tail]" if segment["torn_tail"] else ""
            print(
                f"{segment['segment']}: {segment['records']} records, "
                f"{segment['bytes']} bytes, {id_range}{torn}"
            )
        print(f"{len(archive)} archived snapshots in {len(segments)} segments")
        return 0
    if args.action == "verify":
        problems = archive.verify()
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        if problems:
            print(f"{len(problems)} problems in {args.archive_dir}", file=sys.stderr)
            return 1
        print(
            f"verified {len(archive)} records in {len(archive.segments())} segments: OK"
        )
        return 0
    # compact
    before = len(archive.segments())
    removed = archive.compact()
    print(
        f"compacted {len(archive)} records: {before} -> {before - removed} segments"
    )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """``query``: ask a running service and print the JSON response."""
    import json as _json

    from repro.service import ServiceClient, ServiceError
    from repro.service.auth import resolve_token

    with ServiceClient(args.url, token=resolve_token(args.auth_token)) as client:
        try:
            if args.what == "metrics":
                # Prometheus exposition text, not JSON: print it verbatim.
                sys.stdout.write(client.metrics_text())
                return 0
            if args.what == "health":
                payload = client.health()
            elif args.what == "latest":
                payload = client.latest_snapshot()
            elif args.what == "stats":
                payload = client.stats()
            elif args.what == "diff":
                window = int(args.arg) if args.arg is not None else None
                payload = client.diff(window_end=window)
            elif args.what == "as":
                if args.arg is None:
                    print("error: 'query URL as' needs an AS number", file=sys.stderr)
                    return 2
                payload = client.as_info(int(args.arg), history=args.history)
            else:  # window
                if args.arg is None:
                    print("error: 'query URL window' needs a window end", file=sys.stderr)
                    return 2
                payload = client.snapshot(int(args.arg))
        except ServiceError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    print(_json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    """``show``: inspect an exported classification database."""
    text = Path(args.database).read_text()
    database = (
        ClassificationDatabase.from_json(text)
        if text.lstrip().startswith("[")
        else ClassificationDatabase.loads(text)
    )
    if args.asn is not None:
        record = database.get(args.asn)
        if record is None:
            print(f"AS{args.asn}: not in database")
            return 1
        counters = record.counters
        print(
            f"AS{args.asn}: class={record.classification.code} "
            f"t={counters.tagger} s={counters.silent} f={counters.forward} c={counters.cleaner}"
        )
        return 0
    print(f"{len(database)} ASes")
    for code, count in sorted(database.counts_by_code().items()):
        print(f"  {code}: {count}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    classify = subparsers.add_parser("classify", help="classify MRT archives")
    classify.add_argument("inputs", nargs="+", help="MRT files (RIBs and/or updates)")
    classify.add_argument("-o", "--output", help="output file (default: stdout)")
    classify.add_argument("--format", choices=("text", "json"), default="text")
    classify.add_argument("--threshold", type=float, default=0.99)
    classify.add_argument(
        "--algorithm",
        choices=("column", "row"),
        default="column",
        help="inference algorithm: the paper's column-based (default) or the row baseline",
    )
    classify.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sanitation and counting (default: 1, serial)",
    )
    classify.add_argument(
        "--representation",
        choices=("object", "columnar"),
        default="object",
        help="internal data layout: object tuples or the interned columnar "
        "hot path (identical classification, much faster counting)",
    )
    classify.add_argument(
        "--store",
        help="also materialize the result into this snapshot store "
        "(path, sqlite:path, or memory:)",
    )
    classify.add_argument(
        "--ingest-block-size",
        type=int,
        default=4096,
        help="observations sanitized per block (>= 1); a pure throughput "
        "knob that never changes the classification",
    )
    classify.set_defaults(handler=cmd_classify)

    stream = subparsers.add_parser(
        "stream", help="replay MRT update archives through the streaming engine"
    )
    stream.add_argument("inputs", nargs="+", help="MRT files to replay as an update feed")
    stream.add_argument("-o", "--output", help="output file (default: stdout)")
    stream.add_argument("--format", choices=("text", "json"), default="text")
    stream.add_argument("--threshold", type=float, default=0.99)
    stream.add_argument("--algorithm", choices=("column", "row"), default="column")
    stream.add_argument(
        "--representation",
        choices=("object", "columnar"),
        default="object",
        help="internal data layout (columnar requires --workers 1)",
    )
    stream.add_argument(
        "--window", type=int, default=3600, help="window size in seconds of event time"
    )
    stream.add_argument(
        "--policy",
        choices=("cumulative", "sliding"),
        default="cumulative",
        help="cumulative keeps all evidence; sliding retains only a trailing horizon",
    )
    stream.add_argument(
        "--horizon", type=int, default=None, help="sliding retention span (default: 4 windows)"
    )
    stream.add_argument("--allowed-lateness", type=int, default=0)
    stream.add_argument("--shards", type=int, default=1, help="per-AS-partition workers")
    stream.add_argument(
        "--workers",
        type=int,
        default=1,
        help="OS processes hosting the shard workers (default: 1, in-process); "
        "raises --shards to at least this many partitions",
    )
    stream.add_argument(
        "--order",
        choices=("archive", "time"),
        default="archive",
        help="replay in stored record order (lazy) or globally time-sorted",
    )
    stream.add_argument("--checkpoint-dir", help="directory for engine state checkpoints")
    stream.add_argument(
        "--checkpoint-every", type=int, default=None, help="auto-checkpoint every N events"
    )
    stream.add_argument(
        "--resume", action="store_true", help="resume from the latest checkpoint if present"
    )
    stream.add_argument(
        "--store",
        help="persist every window snapshot into this snapshot store "
        "(path, sqlite:path, or memory:); serve it afterwards with 'repro serve --store'",
    )
    stream.add_argument(
        "--store-retention",
        type=int,
        default=None,
        help="keep only the newest N snapshots in --store (default: keep all)",
    )
    stream.add_argument(
        "--archive-dir",
        default=None,
        help="with --store-retention: archive pruned snapshots into segment "
        "files under this directory instead of deleting them",
    )
    stream.add_argument(
        "--ingest-block-size",
        type=int,
        default=4096,
        help="events ingested per block (>= 1); blocks are split at window "
        "cuts so snapshots are identical at any size — this only trades "
        "per-event dispatch overhead against ingest latency",
    )
    stream.set_defaults(handler=cmd_stream)

    demo = subparsers.add_parser("demo", help="classify the synthetic Internet")
    demo.add_argument("--scale", choices=("tiny", "small", "default", "large"), default="tiny")
    demo.add_argument("--seed", type=int, default=1)
    demo.add_argument("-o", "--output", help="output file (default: stdout)")
    demo.add_argument("--format", choices=("text", "json"), default="text")
    demo.add_argument("--threshold", type=float, default=0.99)
    demo.add_argument(
        "--store",
        help="also materialize the result into this snapshot store "
        "(path, sqlite:path, or memory:)",
    )
    demo.set_defaults(handler=cmd_demo)

    show = subparsers.add_parser("show", help="inspect an exported database")
    show.add_argument("database", help="database file written by classify/demo")
    show.add_argument("--asn", type=int, default=None, help="show a single AS")
    show.set_defaults(handler=cmd_show)

    serve = subparsers.add_parser(
        "serve", help="serve a snapshot store over the JSON HTTP API"
    )
    serve.add_argument(
        "--store",
        required=True,
        help="snapshot store to serve (path, sqlite:path, or memory:)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--cache-size", type=int, default=512, help="encoded responses kept in the LRU cache"
    )
    serve.add_argument(
        "--http-workers",
        type=int,
        default=1,
        help="serving workers: 1 (default) runs one threaded server in-process; "
        "N > 1 fans out across N SO_REUSEPORT worker processes sharing the port "
        "(accept-loop threads where SO_REUSEPORT is unavailable), supervised "
        "and respawned on crash",
    )
    serve.add_argument(
        "--retention",
        type=int,
        default=None,
        help="prune the store to the newest N snapshots at startup "
        "(ongoing caps belong to the producer: stream --store-retention)",
    )
    serve.add_argument(
        "--archive-dir",
        default=None,
        help="serve the cold tier too: --retention demotes into this archive "
        "instead of deleting, and reads fall through to archived windows",
    )
    serve.add_argument(
        "--auth-token",
        default=None,
        help="require 'Authorization: Bearer <token>' on every /v1/* endpoint "
        "(/healthz and /metrics stay open); defaults to $REPRO_AUTH_TOKEN",
    )
    serve.set_defaults(handler=cmd_serve)

    replicate = subparsers.add_parser(
        "replicate",
        help="sync a follower store from a leader's HTTP API (optionally serving it)",
    )
    replicate.add_argument(
        "--from",
        dest="source",
        required=True,
        metavar="URL",
        help="leader base URL, e.g. http://leader:8080",
    )
    replicate.add_argument(
        "--store", required=True, help="follower snapshot store (created if missing)"
    )
    replicate.add_argument(
        "--poll-interval",
        type=float,
        default=1.0,
        help="seconds between changelog polls once caught up (default: 1)",
    )
    replicate.add_argument(
        "--page-size",
        type=int,
        default=64,
        help="snapshots fetched per changelog page (default: 64)",
    )
    replicate.add_argument(
        "--retention",
        type=int,
        default=None,
        help="cap the replica to the newest N snapshots (default: keep all)",
    )
    replicate.add_argument(
        "--archive-dir",
        default=None,
        help="with --retention: archive snapshots the cap demotes instead of "
        "deleting them (the replica grows its own cold tier)",
    )
    # A one-shot sync exits before any server could be useful; make the
    # contradiction an argparse error instead of silently ignoring --serve.
    replicate_mode = replicate.add_mutually_exclusive_group()
    replicate_mode.add_argument(
        "--once",
        action="store_true",
        help="sync to the leader's current generation once, then exit",
    )
    replicate_mode.add_argument(
        "--serve",
        action="store_true",
        help="also serve the replica over the JSON HTTP API while syncing",
    )
    replicate.add_argument(
        "--promote",
        action="store_true",
        help="failover: best-effort final sync from the leader, then bump this "
        "replica's leader epoch so it accepts writes and fences the deposed "
        "leader's producers; combine with --serve to start serving it",
    )
    replicate.add_argument(
        "--follower",
        default=None,
        help="name this follower reports on changelog polls; the leader "
        "publishes a per-follower replication-lag gauge on /metrics under it",
    )
    replicate.add_argument(
        "--auth-token",
        default=None,
        help="bearer token sent on every pull from the leader AND required by "
        "this replica's own API when serving; defaults to $REPRO_AUTH_TOKEN",
    )
    replicate.add_argument("--host", default="127.0.0.1")
    replicate.add_argument("--port", type=int, default=8080)
    replicate.add_argument(
        "--cache-size", type=int, default=512, help="encoded responses kept in the LRU cache"
    )
    replicate.add_argument(
        "--http-workers",
        type=int,
        default=1,
        help="with --serve: serving workers, as in 'repro serve --http-workers'",
    )
    replicate.set_defaults(handler=cmd_replicate)

    archive = subparsers.add_parser(
        "archive", help="inspect and maintain a cold-tier snapshot archive"
    )
    archive.add_argument("archive_dir", help="archive directory (--archive-dir of a store)")
    archive.add_argument(
        "action",
        choices=("list", "verify", "compact"),
        help="list segments, verify every record checksum, or rewrite into "
        "densely packed segments (offline only)",
    )
    archive.set_defaults(handler=cmd_archive)

    query = subparsers.add_parser("query", help="query a running results service")
    query.add_argument("url", help="service base URL, e.g. http://localhost:8080")
    query.add_argument(
        "what",
        choices=("health", "latest", "stats", "diff", "as", "window", "metrics"),
        help="what to ask for",
    )
    query.add_argument(
        "arg", nargs="?", default=None, help="AS number (as) or window end (window/diff)"
    )
    query.add_argument(
        "--history", type=int, default=None, help="with 'as': include the last N snapshots"
    )
    query.add_argument(
        "--auth-token",
        default=None,
        help="bearer token sent with every request (for an --auth-token "
        "service); defaults to $REPRO_AUTH_TOKEN",
    )
    query.set_defaults(handler=cmd_query)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
