"""Command-line interface.

Mirrors the tooling the paper released alongside its dataset: point the tool
at MRT archives (RIBs and/or updates), run sanitation and the column-based
inference, and write the per-AS classification database.

Usage::

    python -m repro classify rib.mrt updates.mrt -o classification.txt
    python -m repro classify --threshold 0.95 --format json dump.mrt
    python -m repro demo --scale tiny           # no input data: run on the synthetic Internet
    python -m repro show classification.txt --asn 3356
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.collectors.archive import observations_from_mrt
from repro.core.column import ColumnInference
from repro.core.export import ClassificationDatabase
from repro.core.pipeline import InferencePipeline
from repro.core.thresholds import Thresholds


def _write_database(database: ClassificationDatabase, output: Optional[str], fmt: str) -> None:
    """Write the database to a file or stdout in the chosen format."""
    text = database.to_json() if fmt == "json" else database.dumps()
    if output:
        Path(output).write_text(text)
    else:
        sys.stdout.write(text)


def cmd_classify(args: argparse.Namespace) -> int:
    """``classify``: run the pipeline on MRT files."""
    observations = []
    for filename in args.inputs:
        blob = Path(filename).read_bytes()
        observations.extend(observations_from_mrt(blob, collector=Path(filename).name))
    pipeline = InferencePipeline(thresholds=Thresholds.uniform(args.threshold))
    outcome = pipeline.run_from_observations(observations)
    database = ClassificationDatabase.from_result(outcome.result)
    _write_database(database, args.output, args.format)
    print(
        f"classified {len(database)} ASes from {outcome.observations_in} observations "
        f"({outcome.unique_tuples} unique tuples)",
        file=sys.stderr,
    )
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    """``demo``: run the pipeline on the synthetic Internet (no input files)."""
    from repro.experiments.context import ExperimentContext, ExperimentScale

    context = ExperimentContext(scale=ExperimentScale(args.scale), seed=args.seed)
    result = ColumnInference(Thresholds.uniform(args.threshold)).run(context.aggregate_tuples)
    database = ClassificationDatabase.from_result(result)
    _write_database(database, args.output, args.format)
    print(f"classified {len(database)} ASes on the synthetic Internet", file=sys.stderr)
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    """``show``: inspect an exported classification database."""
    text = Path(args.database).read_text()
    database = (
        ClassificationDatabase.from_json(text)
        if text.lstrip().startswith("[")
        else ClassificationDatabase.loads(text)
    )
    if args.asn is not None:
        record = database.get(args.asn)
        if record is None:
            print(f"AS{args.asn}: not in database")
            return 1
        counters = record.counters
        print(
            f"AS{args.asn}: class={record.classification.code} "
            f"t={counters.tagger} s={counters.silent} f={counters.forward} c={counters.cleaner}"
        )
        return 0
    print(f"{len(database)} ASes")
    for code, count in sorted(database.counts_by_code().items()):
        print(f"  {code}: {count}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    classify = subparsers.add_parser("classify", help="classify MRT archives")
    classify.add_argument("inputs", nargs="+", help="MRT files (RIBs and/or updates)")
    classify.add_argument("-o", "--output", help="output file (default: stdout)")
    classify.add_argument("--format", choices=("text", "json"), default="text")
    classify.add_argument("--threshold", type=float, default=0.99)
    classify.set_defaults(handler=cmd_classify)

    demo = subparsers.add_parser("demo", help="classify the synthetic Internet")
    demo.add_argument("--scale", choices=("tiny", "small", "default", "large"), default="tiny")
    demo.add_argument("--seed", type=int, default=1)
    demo.add_argument("-o", "--output", help="output file (default: stdout)")
    demo.add_argument("--format", choices=("text", "json"), default="text")
    demo.add_argument("--threshold", type=float, default=0.99)
    demo.set_defaults(handler=cmd_demo)

    show = subparsers.add_parser("show", help="inspect an exported database")
    show.add_argument("database", help="database file written by classify/demo")
    show.add_argument("--asn", type=int, default=None, help="show a single AS")
    show.set_defaults(handler=cmd_show)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
