"""Route collector simulation.

The paper's input data comes from four route collector projects (RIPE RIS,
RouteViews, Isolario, PCH) that archive RIB snapshots and BGP update streams
received from their peer ASes.  This package models those projects over the
generated topology:

* :mod:`repro.collectors.collector` -- collectors, collector peers, and
  collector projects,
* :mod:`repro.collectors.projects` -- the default four-project layout with
  paper-like characteristics (PCH: many peers but updates only),
* :mod:`repro.collectors.archive` -- generation of per-day RIB snapshots and
  update streams (with churn) as route observations and, optionally, as
  binary MRT archives.
"""

from repro.collectors.collector import Collector, CollectorProject
from repro.collectors.projects import DEFAULT_PROJECT_NAMES, build_default_projects
from repro.collectors.archive import ArchiveConfig, CollectorArchive, DayArchive

__all__ = [
    "Collector",
    "CollectorProject",
    "DEFAULT_PROJECT_NAMES",
    "build_default_projects",
    "ArchiveConfig",
    "CollectorArchive",
    "DayArchive",
]
