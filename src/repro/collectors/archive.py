"""Per-day collector archives: RIB snapshots and update streams.

Turns the routing substrate (best paths from every collector peer) and the
community usage model into the data a collector project archives for one day:

* one or more RIB snapshots per collector (every peer exports its best route
  per prefix, with the community set produced by the propagation model), and
* an update stream: re-announcements and flaps of a subset of routes spread
  over the day.

The archive can be materialised either directly as
:class:`repro.bgp.announcement.RouteObservation` objects (fast path used by
most experiments) or as binary MRT blobs (via :mod:`repro.mrt`) to exercise
the full decode-sanitize-infer pipeline end to end.

A light *realism noise* layer optionally adds private and stray communities,
which real collector data is full of (Table 1 reports them explicitly and
Figure 5 counts them at peer ASes); these communities are ignored by the
inference but must flow through the pipeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.bgp.announcement import RouteObservation
from repro.bgp.asn import ASN
from repro.bgp.community import CommunitySet, make_community
from repro.bgp.messages import BGPUpdate, PathAttributes
from repro.bgp.path import ASPath
from repro.collectors.collector import CollectorProject
from repro.mrt.decoder import MRTDecoder
from repro.mrt.encoder import MRTEncoder
from repro.mrt.records import BGP4MPMessage, PeerIndexTable, RIBEntryRecord
from repro.topology.generator import Topology
from repro.topology.routing import ValleyFreePath
from repro.usage.propagation import CommunityPropagator

#: 2021-05-19 00:00:00 UTC, the paper's primary measurement day.
DEFAULT_EPOCH = 1621382400


@dataclass
class ArchiveConfig:
    """Knobs controlling the volume and churn of the generated archives."""

    #: RIB snapshots written per day (RIPE: every 8h; we default to 2).
    rib_snapshots_per_day: int = 2
    #: Share of (peer, origin, prefix) routes that also appear in updates.
    update_share: float = 0.35
    #: Re-announcements per updated route per day (min, max).
    updates_per_route: Tuple[int, int] = (1, 3)
    #: Probability that a route is missing from a given day entirely
    #: (session resets, route unavailability) — drives day-to-day churn.
    p_route_missing: float = 0.02
    #: Probability that an observation additionally carries a private
    #: community / a stray community (realism noise).
    p_private_community: float = 0.03
    p_stray_community: float = 0.02
    seed: int = 0
    #: Unix timestamp of day 0.
    epoch: int = DEFAULT_EPOCH


@dataclass
class DayArchive:
    """One day of archived data for one collector project."""

    project: str
    day: int
    observations: List[RouteObservation]
    rib_entry_count: int
    update_message_count: int

    @property
    def total_entries(self) -> int:
        """RIB entries plus update messages (the Table 1 "Entries total" row)."""
        return self.rib_entry_count + self.update_message_count


class CollectorArchive:
    """Generates per-day archives for one collector project."""

    def __init__(
        self,
        topology: Topology,
        project: CollectorProject,
        paths_by_peer: Dict[ASN, Dict[ASN, ValleyFreePath]],
        propagator: CommunityPropagator,
        *,
        config: Optional[ArchiveConfig] = None,
    ) -> None:
        self.topology = topology
        self.project = project
        self.paths_by_peer = paths_by_peer
        self.propagator = propagator
        self.config = config or ArchiveConfig()
        self._output_cache: Dict[ASPath, CommunitySet] = {}
        self._stray_candidates: List[ASN] = sorted(topology.ases)

    # -- helpers ---------------------------------------------------------------
    def _output_for(self, path: ASPath) -> CommunitySet:
        """Community set exported by the peer for *path* (memoised)."""
        cached = self._output_cache.get(path)
        if cached is None:
            cached = self.propagator.output(path)
            self._output_cache[path] = cached
        return cached

    def _route_present(self, day: int, peer: ASN, origin: ASN) -> bool:
        """Deterministic per-day availability of a (peer, origin) route."""
        if self.config.p_route_missing <= 0:
            return True
        rng = random.Random(f"{self.config.seed}:{day}:{peer}:{origin}")
        return rng.random() >= self.config.p_route_missing

    def _realism_noise(self, rng: random.Random, path: ASPath, communities: CommunitySet) -> CommunitySet:
        """Optionally add private / stray communities to an observation."""
        config = self.config
        if config.p_private_community > 0 and rng.random() < config.p_private_community:
            communities = communities.add(make_community(64512 + rng.randint(0, 100), rng.randint(1, 500)))
        if config.p_stray_community > 0 and rng.random() < config.p_stray_community:
            stray_asn = rng.choice(self._stray_candidates)
            if stray_asn not in path:
                communities = communities.add(make_community(stray_asn, rng.randint(1, 500)))
        return communities

    # -- day generation -------------------------------------------------------------
    def generate_day(self, day: int = 0) -> DayArchive:
        """Generate the archive of *day* for the whole project."""
        config = self.config
        day_start = config.epoch + day * 86400
        rng = random.Random(f"{config.seed}:{self.project.name}:{day}")
        observations: List[RouteObservation] = []
        rib_entries = 0
        update_messages = 0

        for collector in self.project.collectors:
            for peer in collector.peer_asns:
                per_origin = self.paths_by_peer.get(peer, {})
                for origin, best in per_origin.items():
                    if not self._route_present(day, peer, origin):
                        continue
                    communities = self._output_for(best.path)
                    for prefix in self.topology.prefixes_of(origin):
                        noisy = self._realism_noise(rng, best.path, communities)
                        if self.project.provides_ribs:
                            for snapshot in range(config.rib_snapshots_per_day):
                                rib_entries += 1
                                if snapshot == 0:
                                    observations.append(
                                        RouteObservation(
                                            collector=collector.name,
                                            peer_asn=peer,
                                            prefix=prefix,
                                            path=best.path,
                                            communities=noisy,
                                            timestamp=day_start + snapshot * (86400 // max(1, config.rib_snapshots_per_day)),
                                            from_rib=True,
                                        )
                                    )
                        if rng.random() < config.update_share:
                            count = rng.randint(*config.updates_per_route)
                            update_messages += count
                            observations.append(
                                RouteObservation(
                                    collector=collector.name,
                                    peer_asn=peer,
                                    prefix=prefix,
                                    path=best.path,
                                    communities=noisy,
                                    timestamp=day_start + rng.randint(0, 86399),
                                    from_rib=False,
                                )
                            )
        return DayArchive(
            project=self.project.name,
            day=day,
            observations=observations,
            rib_entry_count=rib_entries,
            update_message_count=update_messages,
        )

    def generate_days(self, days: int) -> List[DayArchive]:
        """Generate several consecutive days of archives."""
        return [self.generate_day(day) for day in range(days)]

    # -- MRT materialisation -----------------------------------------------------------
    def day_to_mrt(self, archive: DayArchive) -> Dict[str, bytes]:
        """Encode a day archive into binary MRT blobs, one per collector."""
        blobs: Dict[str, bytes] = {}
        by_collector: Dict[str, List[RouteObservation]] = {}
        for observation in archive.observations:
            by_collector.setdefault(observation.collector, []).append(observation)
        for collector in self.project.collectors:
            observations = by_collector.get(collector.name, [])
            encoder = MRTEncoder()
            encoder.write_peer_index_table(
                list(collector.peer_asns), timestamp=self.config.epoch + archive.day * 86400
            )
            sequence = 0
            for observation in observations:
                attributes = PathAttributes(
                    as_path=observation.path, communities=observation.communities
                )
                if observation.from_rib:
                    encoder.write_rib_entry(
                        observation.prefix,
                        [(observation.peer_asn, observation.timestamp, attributes)],
                        sequence=sequence,
                        timestamp=observation.timestamp,
                    )
                    sequence += 1
                else:
                    encoder.write_update(
                        BGPUpdate(
                            peer_asn=observation.peer_asn,
                            timestamp=observation.timestamp,
                            announced=(observation.prefix,),
                            attributes=attributes,
                        )
                    )
            blobs[collector.name] = encoder.getvalue()
        return blobs


def iter_observations_from_mrt(blob: bytes, collector: str) -> Iterator[RouteObservation]:
    """Lazily decode one collector's MRT blob into route observations.

    Records are decoded on demand, so a multi-gigabyte archive can be
    streamed through the sanitizer (or the streaming engine) without ever
    materialising the full observation list.
    """
    decoder = MRTDecoder(blob)
    peer_table: Optional[PeerIndexTable] = None
    for record in decoder:
        if isinstance(record, PeerIndexTable):
            peer_table = record
        elif isinstance(record, RIBEntryRecord):
            if peer_table is None:
                raise ValueError("RIB record before PEER_INDEX_TABLE")
            for entry in record.to_rib_entries(peer_table):
                yield RouteObservation(
                    collector=collector,
                    peer_asn=entry.peer_asn,
                    prefix=entry.prefix,
                    path=entry.as_path,
                    communities=entry.communities,
                    timestamp=entry.timestamp,
                    from_rib=True,
                )
        elif isinstance(record, BGP4MPMessage) and record.update is not None:
            update = record.update
            if update.attributes is None:
                continue
            for prefix in update.announced:
                yield RouteObservation(
                    collector=collector,
                    peer_asn=update.peer_asn,
                    prefix=prefix,
                    path=update.attributes.as_path,
                    communities=update.attributes.communities,
                    timestamp=update.timestamp,
                    from_rib=False,
                )


def iter_observation_blocks_from_mrt(
    blob: bytes, collector: str, size: int
) -> Iterator[List[RouteObservation]]:
    """Lazily decode one collector's MRT blob into observation blocks.

    Yields the observations of :func:`iter_observations_from_mrt` in the same
    order, grouped into blocks of up to *size* (the final block may be
    short).  Like the event iterator, only one block is materialised at a
    time, so arbitrarily large archives stream through in bounded memory
    while block consumers amortize their per-event dispatch.
    """
    if size < 1:
        raise ValueError(f"block size must be >= 1, got {size}")
    block: List[RouteObservation] = []
    append = block.append
    for observation in iter_observations_from_mrt(blob, collector):
        append(observation)
        if len(block) >= size:
            yield block
            block = []
            append = block.append
    if block:
        yield block


def observations_from_mrt(blob: bytes, collector: str) -> List[RouteObservation]:
    """Decode one collector's MRT blob back into route observations."""
    return list(iter_observations_from_mrt(blob, collector))
