"""Collectors and collector projects."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Set, Tuple

from repro.bgp.asn import ASN


@dataclass(frozen=True)
class Collector:
    """A single route collector ("looking glass") with its peer ASes.

    A peer AS maintains a BGP session with the collector and exports its best
    routes; the collector archives them.  One AS can peer with collectors of
    several projects (the paper notes this explicitly), which simply means
    the same ASN appears in several peer lists.
    """

    name: str
    project: str
    peer_asns: Tuple[ASN, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.peer_asns, tuple):
            object.__setattr__(self, "peer_asns", tuple(self.peer_asns))

    def __len__(self) -> int:
        return len(self.peer_asns)

    def __contains__(self, asn: object) -> bool:
        return asn in self.peer_asns


@dataclass
class CollectorProject:
    """A collector project (RIPE RIS, RouteViews, ...)."""

    name: str
    collectors: List[Collector] = field(default_factory=list)
    #: Whether the project publishes RIB snapshots that include communities
    #: (PCH does not, which is why the paper treats it separately).
    provides_ribs: bool = True

    def add_collector(self, collector: Collector) -> None:
        """Attach a collector to this project."""
        if collector.project != self.name:
            raise ValueError(
                f"collector {collector.name!r} belongs to project {collector.project!r}"
            )
        self.collectors.append(collector)

    def peer_asns(self) -> Set[ASN]:
        """The union of the peers of every collector of the project."""
        peers: Set[ASN] = set()
        for collector in self.collectors:
            peers.update(collector.peer_asns)
        return peers

    def collector_names(self) -> List[str]:
        """Names of the project's collectors."""
        return [collector.name for collector in self.collectors]

    def __len__(self) -> int:
        return len(self.collectors)


def merge_peer_sets(projects: Iterable[CollectorProject]) -> Set[ASN]:
    """The union of collector peers across several projects."""
    peers: Set[ASN] = set()
    for project in projects:
        peers.update(project.peer_asns())
    return peers
