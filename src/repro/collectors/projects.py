"""Default collector project layout.

Builds four projects whose relative characteristics follow Table 1:

* **ripe** -- many collectors, large peer set, RIBs + updates,
* **routeviews** -- many collectors, mid-sized peer set, RIBs + updates,
* **isolario** -- few collectors, smallest peer set, RIBs + updates,
* **pch** -- the largest peer set but *updates only* (its RIBs lack the
  community attribute, so the paper excludes it from most analyses).

Peer counts scale with the size of the generated topology (roughly 1-2% of
ASes peer with collectors, as in the real Internet), and the per-project peer
sets overlap, since real ASes frequently peer with several projects.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.collectors.collector import Collector, CollectorProject
from repro.topology.generator import Topology

#: The canonical project names in the order the paper reports them.
DEFAULT_PROJECT_NAMES: Tuple[str, ...] = ("ripe", "routeviews", "isolario", "pch")

#: Relative peer-set sizes, normalised to the RIPE peer count.
_PEER_SHARE: Dict[str, float] = {
    "ripe": 1.0,
    "routeviews": 0.55,
    "isolario": 0.21,
    "pch": 1.7,
}

#: Number of collectors per project (scaled down from reality).
_COLLECTOR_COUNT: Dict[str, int] = {
    "ripe": 6,
    "routeviews": 8,
    "isolario": 3,
    "pch": 10,
}


def build_default_projects(
    topology: Topology,
    *,
    seed: int = 7,
    peer_fraction: float = 0.015,
) -> Dict[str, CollectorProject]:
    """Create the four default projects over *topology*.

    *peer_fraction* controls how many distinct ASes peer with the RIPE-like
    project; the other projects are sized relative to it.  Peer sets are
    drawn with overlap so the aggregated dataset gains fewer peers than the
    sum of the parts, as in the paper.
    """
    rng = random.Random(seed)
    base_count = max(6, int(len(topology) * peer_fraction))

    projects: Dict[str, CollectorProject] = {}
    for index, name in enumerate(DEFAULT_PROJECT_NAMES):
        count = max(4, int(base_count * _PEER_SHARE[name]))
        peers = topology.select_collector_peers(count, seed=seed + index * 101)
        project = CollectorProject(name=name, provides_ribs=(name != "pch"))
        collectors = _COLLECTOR_COUNT[name]
        # Spread the project's peers over its collectors (peers may appear at
        # several collectors of the same project, as in reality).
        for collector_index in range(collectors):
            sample_size = max(2, len(peers) // collectors + rng.randint(0, 3))
            sample_size = min(sample_size, len(peers))
            collector_peers = tuple(sorted(rng.sample(peers, sample_size)))
            project.add_collector(
                Collector(
                    name=f"{name}-{collector_index:02d}",
                    project=name,
                    peer_asns=collector_peers,
                )
            )
        # Guarantee every selected peer appears at least once in the project.
        covered = project.peer_asns()
        missing = [asn for asn in peers if asn not in covered]
        if missing:
            project.add_collector(
                Collector(name=f"{name}-extra", project=name, peer_asns=tuple(missing))
            )
        projects[name] = project
    return projects
