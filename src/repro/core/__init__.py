"""The paper's primary contribution: per-AS community usage inference.

* :mod:`repro.core.classes` -- the inferred classes (tagger / silent /
  undecided / none and forward / cleaner / undecided / none),
* :mod:`repro.core.thresholds` -- the counting thresholds (default 99%),
* :mod:`repro.core.counters` -- per-AS evidence counters and the threshold
  queries ``is_tagger`` / ``is_silent`` / ``is_forward`` / ``is_cleaner``,
* :mod:`repro.core.conditions` -- Cond1 and Cond2 (Section 5.2),
* :mod:`repro.core.column` -- the column-based inference algorithm
  (Section 5.6, Listing 1),
* :mod:`repro.core.row` -- the row-based baseline (Listing 2),
* :mod:`repro.core.results` -- classification results and summaries,
* :mod:`repro.core.attribution` -- the future-work extension that attributes
  concrete community values to inferred taggers,
* :mod:`repro.core.pipeline` -- the end-to-end pipeline from raw collector
  data to per-AS classifications.
"""

from repro.core.classes import ForwardingClass, TaggingClass, UsageClassification
from repro.core.thresholds import Thresholds
from repro.core.counters import ASCounters, CounterStore
from repro.core.conditions import cond1, cond2, find_downstream_tagger
from repro.core.column import ColumnInference
from repro.core.row import RowInference
from repro.core.results import ClassificationResult
from repro.core.attribution import CommunityAttribution
from repro.core.export import ClassificationDatabase, ClassificationRecord
from repro.core.pipeline import InferencePipeline, PipelineResult

__all__ = [
    "TaggingClass",
    "ForwardingClass",
    "UsageClassification",
    "Thresholds",
    "ASCounters",
    "CounterStore",
    "cond1",
    "cond2",
    "find_downstream_tagger",
    "ColumnInference",
    "RowInference",
    "ClassificationResult",
    "CommunityAttribution",
    "ClassificationDatabase",
    "ClassificationRecord",
    "InferencePipeline",
    "PipelineResult",
]
