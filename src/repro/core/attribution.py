"""Community value attribution (paper Section 8, future work).

The paper's outlook asks not only *whether* an AS is a tagger but *which*
communities it adds.  This module implements that extension on top of a
finished classification: every community observed in the input whose upper
field names an AS that

* was classified as a tagger, and
* appears on the corresponding AS path with all upstream ASes classified as
  forward (so the community plausibly travelled from that AS to the
  collector unmodified),

is attributed to that AS.  The result is a per-AS dictionary of community
values with occurrence counts, which downstream users can feed into
signalling-vs-informational analyses or automated community filtering.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Sequence

from repro.bgp.announcement import PathCommTuple
from repro.bgp.asn import ASN
from repro.bgp.community import AnyCommunity
from repro.core.classes import ForwardingClass, TaggingClass
from repro.core.results import ClassificationResult


class CommunityAttribution:
    """Attributes observed community values to inferred tagger ASes."""

    def __init__(self, result: ClassificationResult) -> None:
        self.result = result
        self._values: Dict[ASN, Counter] = defaultdict(Counter)
        self._observations: int = 0

    # -- construction ------------------------------------------------------------------
    def ingest(self, tuples: Iterable[PathCommTuple]) -> "CommunityAttribution":
        """Attribute the communities of every tuple; returns ``self``."""
        for item in tuples:
            self._ingest_one(item)
        return self

    def _ingest_one(self, item: PathCommTuple) -> None:
        self._observations += 1
        asns = item.path.asns
        # Position of each ASN on the path (first occurrence; sanitized paths
        # contain no duplicates).
        positions = {asn: index for index, asn in enumerate(asns)}
        for community in item.communities:
            upper = community.upper
            position = positions.get(upper)
            if position is None:
                continue  # stray or private relative to this path
            if self.result.classification_of(upper).tagging is not TaggingClass.TAGGER:
                continue
            if not self._upstream_all_forward(asns, position):
                continue
            self._values[upper][community] += 1

    def _upstream_all_forward(self, asns: Sequence[ASN], position: int) -> bool:
        """All ASes between the collector and *position* are inferred forward."""
        for index in range(position):
            forwarding = self.result.classification_of(asns[index]).forwarding
            if forwarding is not ForwardingClass.FORWARD:
                return False
        return True

    # -- queries -------------------------------------------------------------------------
    def communities_of(self, asn: ASN) -> Dict[AnyCommunity, int]:
        """The communities attributed to *asn* with their occurrence counts."""
        return dict(self._values.get(asn, Counter()))

    def distinct_values(self, asn: ASN) -> int:
        """Number of distinct community values attributed to *asn*."""
        return len(self._values.get(asn, ()))

    def attributed_ases(self) -> List[ASN]:
        """Every AS that received at least one attributed community."""
        return sorted(self._values)

    def top_values(self, asn: ASN, count: int = 5) -> List[AnyCommunity]:
        """The most frequently attributed community values of *asn*."""
        return [community for community, _ in self._values.get(asn, Counter()).most_common(count)]

    def __len__(self) -> int:
        return len(self._values)
