"""Inferred community usage classes (paper Section 5.5).

The classifier assigns every AS a two-character string: the first character
describes the inferred *tagging* behaviour, the second the inferred
*forwarding* behaviour.  Each character is one of

* ``t`` / ``s`` -- tagger / silent (respectively ``f`` / ``c`` -- forward /
  cleaner),
* ``u`` -- undecided: counters exist but neither threshold is met
  (conflicting evidence, e.g. selective tagging),
* ``n`` -- none: no counter was ever increased (no usable evidence).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.usage.roles import ForwardingRole, TaggingRole


class TaggingClass(enum.Enum):
    """Inferred tagging behaviour."""

    TAGGER = "t"
    SILENT = "s"
    UNDECIDED = "u"
    NONE = "n"

    @property
    def code(self) -> str:
        """Single-character code used in the paper's tables."""
        return self.value

    @property
    def is_decided(self) -> bool:
        """``True`` for tagger / silent inferences."""
        return self in (TaggingClass.TAGGER, TaggingClass.SILENT)

    @classmethod
    def from_role(cls, role: TaggingRole) -> "TaggingClass":
        """The class matching a ground-truth role (used for scoring)."""
        return cls.TAGGER if role is TaggingRole.TAGGER else cls.SILENT

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ForwardingClass(enum.Enum):
    """Inferred forwarding behaviour."""

    FORWARD = "f"
    CLEANER = "c"
    UNDECIDED = "u"
    NONE = "n"

    @property
    def code(self) -> str:
        """Single-character code used in the paper's tables."""
        return self.value

    @property
    def is_decided(self) -> bool:
        """``True`` for forward / cleaner inferences."""
        return self in (ForwardingClass.FORWARD, ForwardingClass.CLEANER)

    @classmethod
    def from_role(cls, role: ForwardingRole) -> "ForwardingClass":
        """The class matching a ground-truth role (used for scoring)."""
        return cls.FORWARD if role is ForwardingRole.FORWARD else cls.CLEANER

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class UsageClassification:
    """The complete inferred classification of one AS."""

    tagging: TaggingClass
    forwarding: ForwardingClass

    @property
    def code(self) -> str:
        """Two-character code, e.g. ``tf``, ``sc``, ``nu``."""
        return self.tagging.code + self.forwarding.code

    @property
    def is_full(self) -> bool:
        """``True`` when both behaviours were decided (tf, tc, sf, sc)."""
        return self.tagging.is_decided and self.forwarding.is_decided

    @property
    def is_partial(self) -> bool:
        """``True`` when exactly one behaviour was decided."""
        return self.tagging.is_decided != self.forwarding.is_decided

    @property
    def is_empty(self) -> bool:
        """``True`` when no behaviour was decided at all."""
        return not self.tagging.is_decided and not self.forwarding.is_decided

    @classmethod
    def from_code(cls, code: str) -> "UsageClassification":
        """Parse a two-character code such as ``"tf"`` or ``"nu"``."""
        if len(code) != 2:
            raise ValueError(f"invalid classification code {code!r}")
        return cls(TaggingClass(code[0]), ForwardingClass(code[1]))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.code


#: The class assigned when an AS was never seen at all.
UNCLASSIFIED = UsageClassification(TaggingClass.NONE, ForwardingClass.NONE)
