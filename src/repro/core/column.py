"""The column-based inference algorithm (paper Section 5.6, Listing 1).

The algorithm iterates over the input ``(path, comm)`` tuples **by path
index** (column) rather than path by path (row).  For every column ``x`` it
performs two passes:

1. **count tagging** -- for every tuple whose path is long enough and whose
   upstream ASes satisfy Cond1, increase ``t[A_x]`` when a community with
   upper field ``A_x`` is present in ``output(A_1)``, else ``s[A_x]``;
2. **count forwarding** -- additionally require a qualifying downstream
   tagger ``A_t`` (Cond2) and increase ``f[A_x]`` when ``A_t``'s community is
   present, else ``c[A_x]``.

Knowledge gained at lower indices (starting with the trivially observable
collector peers at index 1) feeds the condition checks at higher indices.
The loop stops as soon as a column produces no new evidence, which in
practice happens around index 7 (the paper makes the same observation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.announcement import PathCommTuple
from repro.bgp.asn import ASN
from repro.core.conditions import cond1, find_downstream_tagger
from repro.core.counters import CounterStore
from repro.core.results import ClassificationResult
from repro.core.thresholds import Thresholds


@dataclass
class ColumnInferenceReport:
    """Diagnostics about one inference run (coverage per column)."""

    columns_processed: int = 0
    tagging_counts_per_column: List[int] = field(default_factory=list)
    forwarding_counts_per_column: List[int] = field(default_factory=list)

    @property
    def total_tagging_counts(self) -> int:
        """Total number of tagging counter increments."""
        return sum(self.tagging_counts_per_column)

    @property
    def total_forwarding_counts(self) -> int:
        """Total number of forwarding counter increments."""
        return sum(self.forwarding_counts_per_column)


class ColumnInference:
    """Runs the paper's column-based inference over ``(path, comm)`` tuples."""

    def __init__(
        self,
        thresholds: Optional[Thresholds] = None,
        *,
        max_columns: Optional[int] = None,
        stop_when_stalled: bool = True,
    ) -> None:
        self.thresholds = thresholds or Thresholds()
        self.max_columns = max_columns
        self.stop_when_stalled = stop_when_stalled
        self.report = ColumnInferenceReport()

    # -- public API --------------------------------------------------------------------
    def run(self, tuples: Sequence[PathCommTuple]) -> ClassificationResult:
        """Infer the community usage classification for every observed AS."""
        store = CounterStore(self.thresholds)
        observed: Set[ASN] = set()
        if not tuples:
            return ClassificationResult(store=store, observed_ases=observed, algorithm="column")

        # Pre-compute the upper-field sets once; membership tests dominate the
        # inner loops.
        prepared: List[Tuple[Tuple[ASN, ...], FrozenSet[ASN]]] = []
        max_length = 0
        for item in tuples:
            asns = item.path.asns
            observed.update(asns)
            prepared.append((asns, frozenset(item.communities.upper_fields())))
            if len(asns) > max_length:
                max_length = len(asns)

        limit = max_length if self.max_columns is None else min(max_length, self.max_columns)
        self.report = ColumnInferenceReport()

        for column in range(1, limit + 1):
            tagging_increments = self._count_tagging_column(prepared, column, store)
            forwarding_increments = self._count_forwarding_column(prepared, column, store)
            self.report.columns_processed = column
            self.report.tagging_counts_per_column.append(tagging_increments)
            self.report.forwarding_counts_per_column.append(forwarding_increments)
            if (
                self.stop_when_stalled
                and column > 1
                and tagging_increments == 0
                and forwarding_increments == 0
            ):
                break

        return ClassificationResult(store=store, observed_ases=observed, algorithm="column")

    # -- per-column passes ----------------------------------------------------------------
    @staticmethod
    def _cond1_holds(asns: Tuple[ASN, ...], index: int, store: CounterStore) -> bool:
        """Cond1 for a raw ASN tuple (avoids re-wrapping into ASPath)."""
        is_forward = store.is_forward
        for i in range(index - 1):
            if not is_forward(asns[i]):
                return False
        return True

    def _count_tagging_column(
        self,
        prepared: Sequence[Tuple[Tuple[ASN, ...], FrozenSet[ASN]]],
        column: int,
        store: CounterStore,
    ) -> int:
        """Phase 1 of one column: count tagging evidence.  Returns increments."""
        increments = 0
        for asns, uppers in prepared:
            if len(asns) < column:
                continue
            if column > 1 and not self._cond1_holds(asns, column, store):
                continue
            asn = asns[column - 1]
            if asn in uppers:
                store.count_tagger(asn)
            else:
                store.count_silent(asn)
            increments += 1
        return increments

    def _count_forwarding_column(
        self,
        prepared: Sequence[Tuple[Tuple[ASN, ...], FrozenSet[ASN]]],
        column: int,
        store: CounterStore,
    ) -> int:
        """Phase 2 of one column: count forwarding evidence.  Returns increments."""
        increments = 0
        is_tagger = store.is_tagger
        is_forward = store.is_forward
        for asns, uppers in prepared:
            if len(asns) < column:
                continue
            if column > 1 and not self._cond1_holds(asns, column, store):
                continue
            # Cond2: nearest downstream tagger reachable through forward ASes.
            tagger_asn: Optional[ASN] = None
            for position in range(column, len(asns)):
                candidate = asns[position]
                if is_tagger(candidate):
                    tagger_asn = candidate
                    break
                if not is_forward(candidate):
                    break
            if tagger_asn is None:
                continue
            asn = asns[column - 1]
            if tagger_asn in uppers:
                store.count_forward(asn)
            else:
                store.count_cleaner(asn)
            increments += 1
        return increments
