"""The column-based inference algorithm (paper Section 5.6, Listing 1).

The algorithm iterates over the input ``(path, comm)`` tuples **by path
index** (column) rather than path by path (row).  For every column ``x`` it
performs two passes:

1. **count tagging** -- for every tuple whose path is long enough and whose
   upstream ASes satisfy Cond1, increase ``t[A_x]`` when a community with
   upper field ``A_x`` is present in ``output(A_1)``, else ``s[A_x]``;
2. **count forwarding** -- additionally require a qualifying downstream
   tagger ``A_t`` (Cond2) and increase ``f[A_x]`` when ``A_t``'s community is
   present, else ``c[A_x]``.

Knowledge gained at lower indices (starting with the trivially observable
collector peers at index 1) feeds the condition checks at higher indices.
Within one pass the knowledge is pinned to a :class:`DecisionView` snapshot
taken when the pass starts, which makes every pass a pure function of
``(tuples, decisions)``; the streaming engine exploits this purity to count
only newly arrived tuples when the decisions are unchanged.  The loop stops
as soon as a column produces no new evidence, which in practice happens
around index 7 (the paper makes the same observation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.announcement import PathCommTuple
from repro.bgp.asn import ASN
from repro.core.counters import CounterStore, DecisionView
from repro.core.results import ClassificationResult
from repro.core.thresholds import Thresholds

#: The internal per-tuple form: ``(path ASNs, upper fields of output(A_1))``.
PreparedTuple = Tuple[Tuple[ASN, ...], FrozenSet[ASN]]

#: Per-AS two-component counter deltas produced by one counting phase
#: (``[dt, ds]`` for tagging phases, ``[df, dc]`` for forwarding phases).
PhaseDelta = Dict[ASN, List[int]]


def prepare_tuple(item: PathCommTuple) -> PreparedTuple:
    """Pre-compute the membership-test form of one ``(path, comm)`` tuple."""
    return (item.path.asns, frozenset(item.communities.upper_fields()))


def prepare_tuples(tuples: Iterable[PathCommTuple]) -> List[PreparedTuple]:
    """Pre-compute the membership-test form of many tuples."""
    return [prepare_tuple(item) for item in tuples]


def merge_phase_delta(target: PhaseDelta, extra: PhaseDelta) -> None:
    """Fold *extra* phase deltas into *target* in place.

    Phase deltas are per-AS commutative sums, so merging the deltas of
    disjoint tuple chunks is equivalent to counting the concatenated chunk in
    one pass — the property both the incremental classifier and the
    multi-process phase barrier rely on.
    """
    for asn, (first, second) in extra.items():
        entry = target.get(asn)
        if entry is None:
            target[asn] = [first, second]
        else:
            entry[0] += first
            entry[1] += second


def merge_phase_deltas(deltas: Iterable[PhaseDelta]) -> PhaseDelta:
    """Merge many per-chunk phase deltas into one (shard-merge barrier)."""
    merged: PhaseDelta = {}
    for delta in deltas:
        merge_phase_delta(merged, delta)
    return merged


def count_tagging_phase(
    prepared: Sequence[PreparedTuple],
    column: int,
    decisions: DecisionView,
) -> Tuple[PhaseDelta, int]:
    """Phase 1 of one column: count tagging evidence.

    Pure in ``(prepared, column, decisions)``; returns the per-AS
    ``[dt, ds]`` deltas and the number of increments (the stall signal).
    """
    delta: PhaseDelta = {}
    increments = 0
    forward_ases = decisions.forward_ases
    check_cond1 = column > 1
    for asns, uppers in prepared:
        if len(asns) < column:
            continue
        if check_cond1:
            # Cond1: every AS between the collector and A_x must forward.
            qualified = True
            for i in range(column - 1):
                if asns[i] not in forward_ases:
                    qualified = False
                    break
            if not qualified:
                continue
        asn = asns[column - 1]
        entry = delta.get(asn)
        if entry is None:
            entry = delta[asn] = [0, 0]
        if asn in uppers:
            entry[0] += 1
        else:
            entry[1] += 1
        increments += 1
    return delta, increments


def count_forwarding_phase(
    prepared: Sequence[PreparedTuple],
    column: int,
    decisions: DecisionView,
) -> Tuple[PhaseDelta, int]:
    """Phase 2 of one column: count forwarding evidence.

    Pure in ``(prepared, column, decisions)``; returns the per-AS
    ``[df, dc]`` deltas and the number of increments (the stall signal).
    """
    delta: PhaseDelta = {}
    increments = 0
    tagger_ases = decisions.tagger_ases
    forward_ases = decisions.forward_ases
    check_cond1 = column > 1
    for asns, uppers in prepared:
        if len(asns) < column:
            continue
        if check_cond1:
            qualified = True
            for i in range(column - 1):
                if asns[i] not in forward_ases:
                    qualified = False
                    break
            if not qualified:
                continue
        # Cond2: nearest downstream tagger reachable through forward ASes.
        tagger_asn: Optional[ASN] = None
        for position in range(column, len(asns)):
            candidate = asns[position]
            if candidate in tagger_ases:
                tagger_asn = candidate
                break
            if candidate not in forward_ases:
                break
        if tagger_asn is None:
            continue
        asn = asns[column - 1]
        entry = delta.get(asn)
        if entry is None:
            entry = delta[asn] = [0, 0]
        if tagger_asn in uppers:
            entry[0] += 1
        else:
            entry[1] += 1
        increments += 1
    return delta, increments


@dataclass
class ColumnInferenceReport:
    """Diagnostics about one inference run (coverage per column)."""

    columns_processed: int = 0
    tagging_counts_per_column: List[int] = field(default_factory=list)
    forwarding_counts_per_column: List[int] = field(default_factory=list)

    @property
    def total_tagging_counts(self) -> int:
        """Total number of tagging counter increments."""
        return sum(self.tagging_counts_per_column)

    @property
    def total_forwarding_counts(self) -> int:
        """Total number of forwarding counter increments."""
        return sum(self.forwarding_counts_per_column)


class ColumnInference:
    """Runs the paper's column-based inference over ``(path, comm)`` tuples."""

    def __init__(
        self,
        thresholds: Optional[Thresholds] = None,
        *,
        max_columns: Optional[int] = None,
        stop_when_stalled: bool = True,
    ) -> None:
        self.thresholds = thresholds or Thresholds()
        self.max_columns = max_columns
        self.stop_when_stalled = stop_when_stalled
        self.report = ColumnInferenceReport()

    # -- public API --------------------------------------------------------------------
    def run(self, tuples: Sequence[PathCommTuple]) -> ClassificationResult:
        """Infer the community usage classification for every observed AS."""
        store = CounterStore(self.thresholds)
        observed: Set[ASN] = set()
        if not tuples:
            return ClassificationResult(store=store, observed_ases=observed, algorithm="column")

        # Pre-compute the upper-field sets once; membership tests dominate the
        # inner loops.
        prepared: List[PreparedTuple] = []
        max_length = 0
        for item in tuples:
            asns = item.path.asns
            observed.update(asns)
            prepared.append((asns, frozenset(item.communities.upper_fields())))
            if len(asns) > max_length:
                max_length = len(asns)

        limit = max_length if self.max_columns is None else min(max_length, self.max_columns)
        self.report = ColumnInferenceReport()

        for column in range(1, limit + 1):
            tagging_delta, tagging_increments = count_tagging_phase(
                prepared, column, store.decision_view()
            )
            store.apply_tagging_delta(tagging_delta)
            forwarding_delta, forwarding_increments = count_forwarding_phase(
                prepared, column, store.decision_view()
            )
            store.apply_forwarding_delta(forwarding_delta)
            self.report.columns_processed = column
            self.report.tagging_counts_per_column.append(tagging_increments)
            self.report.forwarding_counts_per_column.append(forwarding_increments)
            if (
                self.stop_when_stalled
                and column > 1
                and tagging_increments == 0
                and forwarding_increments == 0
            ):
                break

        return ClassificationResult(store=store, observed_ases=observed, algorithm="column")
