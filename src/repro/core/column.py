"""The column-based inference algorithm (paper Section 5.6, Listing 1).

The algorithm iterates over the input ``(path, comm)`` tuples **by path
index** (column) rather than path by path (row).  For every column ``x`` it
performs two passes:

1. **count tagging** -- for every tuple whose path is long enough and whose
   upstream ASes satisfy Cond1, increase ``t[A_x]`` when a community with
   upper field ``A_x`` is present in ``output(A_1)``, else ``s[A_x]``;
2. **count forwarding** -- additionally require a qualifying downstream
   tagger ``A_t`` (Cond2) and increase ``f[A_x]`` when ``A_t``'s community is
   present, else ``c[A_x]``.

Knowledge gained at lower indices (starting with the trivially observable
collector peers at index 1) feeds the condition checks at higher indices.
Within one pass the knowledge is pinned to a :class:`DecisionView` snapshot
taken when the pass starts, which makes every pass a pure function of
``(tuples, decisions)``; the streaming engine exploits this purity to count
only newly arrived tuples when the decisions are unchanged.  The loop stops
as soon as a column produces no new evidence, which in practice happens
around index 7 (the paper makes the same observation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.announcement import PathCommTuple
from repro.bgp.asn import ASN
from repro.core import matrix as _matrix
from repro.core.counters import CounterStore, DecisionView, PackedCounterStore
from repro.core.results import ClassificationResult
from repro.core.thresholds import Thresholds
from repro.core.tuples import ColumnarBatch, CountingGroup, TupleTable

#: Inference data representations: the object oracle and the columnar twin.
REPRESENTATIONS = ("object", "columnar")

#: The internal per-tuple form: ``(path ASNs, upper fields of output(A_1))``.
PreparedTuple = Tuple[Tuple[ASN, ...], FrozenSet[ASN]]

#: Per-AS two-component counter deltas produced by one counting phase
#: (``[dt, ds]`` for tagging phases, ``[df, dc]`` for forwarding phases).
PhaseDelta = Dict[ASN, List[int]]


def prepare_tuple(item: PathCommTuple) -> PreparedTuple:
    """Pre-compute the membership-test form of one ``(path, comm)`` tuple."""
    return (item.path.asns, item.communities.upper_fields())


def prepare_tuples(tuples: Iterable[PathCommTuple]) -> List[PreparedTuple]:
    """Pre-compute the membership-test form of many tuples."""
    return [prepare_tuple(item) for item in tuples]


def merge_phase_delta(target: PhaseDelta, extra: PhaseDelta) -> None:
    """Fold *extra* phase deltas into *target* in place.

    Phase deltas are per-AS commutative sums, so merging the deltas of
    disjoint tuple chunks is equivalent to counting the concatenated chunk in
    one pass — the property both the incremental classifier and the
    multi-process phase barrier rely on.
    """
    for asn, (first, second) in extra.items():
        entry = target.get(asn)
        if entry is None:
            target[asn] = [first, second]
        else:
            entry[0] += first
            entry[1] += second


def merge_phase_deltas(deltas: Iterable[PhaseDelta]) -> PhaseDelta:
    """Merge many per-chunk phase deltas into one (shard-merge barrier)."""
    merged: PhaseDelta = {}
    for delta in deltas:
        merge_phase_delta(merged, delta)
    return merged


def count_tagging_phase(
    prepared: Sequence[PreparedTuple],
    column: int,
    decisions: DecisionView,
) -> Tuple[PhaseDelta, int]:
    """Phase 1 of one column: count tagging evidence.

    Pure in ``(prepared, column, decisions)``; returns the per-AS
    ``[dt, ds]`` deltas and the number of increments (the stall signal).
    """
    delta: PhaseDelta = {}
    delta_get = delta.get
    increments = 0
    forward_ases = decisions.forward_ases
    check_cond1 = column > 1
    for asns, uppers in prepared:
        if len(asns) < column:
            continue
        if check_cond1:
            # Cond1: every AS between the collector and A_x must forward.
            qualified = True
            for i in range(column - 1):
                if asns[i] not in forward_ases:
                    qualified = False
                    break
            if not qualified:
                continue
        asn = asns[column - 1]
        entry = delta_get(asn)
        if entry is None:
            entry = delta[asn] = [0, 0]
        if asn in uppers:
            entry[0] += 1
        else:
            entry[1] += 1
        increments += 1
    return delta, increments


def count_forwarding_phase(
    prepared: Sequence[PreparedTuple],
    column: int,
    decisions: DecisionView,
) -> Tuple[PhaseDelta, int]:
    """Phase 2 of one column: count forwarding evidence.

    Pure in ``(prepared, column, decisions)``; returns the per-AS
    ``[df, dc]`` deltas and the number of increments (the stall signal).
    """
    delta: PhaseDelta = {}
    delta_get = delta.get
    increments = 0
    tagger_ases = decisions.tagger_ases
    forward_ases = decisions.forward_ases
    check_cond1 = column > 1
    for asns, uppers in prepared:
        if len(asns) < column:
            continue
        if check_cond1:
            qualified = True
            for i in range(column - 1):
                if asns[i] not in forward_ases:
                    qualified = False
                    break
            if not qualified:
                continue
        # Cond2: nearest downstream tagger reachable through forward ASes.
        tagger_asn: Optional[ASN] = None
        for position in range(column, len(asns)):
            candidate = asns[position]
            if candidate in tagger_ases:
                tagger_asn = candidate
                break
            if candidate not in forward_ases:
                break
        if tagger_asn is None:
            continue
        asn = asns[column - 1]
        entry = delta_get(asn)
        if entry is None:
            entry = delta[asn] = [0, 0]
        if tagger_asn in uppers:
            entry[0] += 1
        else:
            entry[1] += 1
        increments += 1
    return delta, increments


def _group_matrix(groups: Sequence[CountingGroup]) -> Optional["_matrix.GroupMatrix"]:
    """The vectorised form of *groups* if it is worth using, else ``None``."""
    if len(groups) < _matrix.MIN_MATRIX_GROUPS:
        return None
    matrix_of = getattr(groups, "matrix", None)  # GroupList carries the cache
    return matrix_of() if matrix_of is not None else None


def count_tagging_phase_packed(
    groups: Sequence[CountingGroup],
    column: int,
    tagger_flags: Sequence[int],
    forward_flags: Sequence[int],
) -> Tuple[Dict[int, List[int]], int]:
    """Columnar twin of :func:`count_tagging_phase`.

    Operates on grouped ``(as-index row, hits, count)`` work units: the
    Cond1 scan runs once per group and the contribution is multiplied by
    the group's multiplicity, which is exactly the sum the object kernel
    produces over the group's tuples (phase contributions are commutative).
    The ``A_x in output(A_1)`` membership test is one bit test on ``hits``.

    Large :class:`~repro.core.matrix.GroupList` inputs take the vectorised
    bucket kernel; overflow groups (paths too long for an int64 bitmask)
    and small inputs run the scalar loop below.
    """
    matrix = _group_matrix(groups)
    if matrix is not None:
        delta, increments = _matrix.count_tagging_matrix(matrix, column, forward_flags)
        if matrix.overflow:
            extra, more = _count_tagging_groups(
                matrix.overflow, column, tagger_flags, forward_flags
            )
            merge_phase_delta(delta, extra)
            increments += more
        return delta, increments
    return _count_tagging_groups(groups, column, tagger_flags, forward_flags)


def _count_tagging_groups(
    groups: Sequence[CountingGroup],
    column: int,
    tagger_flags: Sequence[int],
    forward_flags: Sequence[int],
) -> Tuple[Dict[int, List[int]], int]:
    """Scalar tagging kernel (also the conformance oracle for the matrix)."""
    del tagger_flags  # same signature as the forwarding kernel
    delta: Dict[int, List[int]] = {}
    delta_get = delta.get
    increments = 0
    check_cond1 = column > 1
    position = column - 1
    bit = 1 << position
    for row, hits, count in groups:
        if len(row) < column:
            continue
        if check_cond1:
            qualified = True
            for i in range(position):
                if not forward_flags[row[i]]:
                    qualified = False
                    break
            if not qualified:
                continue
        index = row[position]
        entry = delta_get(index)
        if entry is None:
            entry = delta[index] = [0, 0]
        if hits & bit:
            entry[0] += count
        else:
            entry[1] += count
        increments += count
    return delta, increments


def count_forwarding_phase_packed(
    groups: Sequence[CountingGroup],
    column: int,
    tagger_flags: Sequence[int],
    forward_flags: Sequence[int],
) -> Tuple[Dict[int, List[int]], int]:
    """Columnar twin of :func:`count_forwarding_phase`.

    The Cond2 tagger search walks the AS-index row through the packed
    decision flags; whether the found tagger's community is present is the
    bit of ``hits`` at the tagger's path position (identical to the object
    kernel's frozenset test, because the bitmask was computed per position).

    Dispatches to the vectorised bucket kernel exactly like
    :func:`count_tagging_phase_packed`.
    """
    matrix = _group_matrix(groups)
    if matrix is not None:
        delta, increments = _matrix.count_forwarding_matrix(
            matrix, column, tagger_flags, forward_flags
        )
        if matrix.overflow:
            extra, more = _count_forwarding_groups(
                matrix.overflow, column, tagger_flags, forward_flags
            )
            merge_phase_delta(delta, extra)
            increments += more
        return delta, increments
    return _count_forwarding_groups(groups, column, tagger_flags, forward_flags)


def _count_forwarding_groups(
    groups: Sequence[CountingGroup],
    column: int,
    tagger_flags: Sequence[int],
    forward_flags: Sequence[int],
) -> Tuple[Dict[int, List[int]], int]:
    """Scalar forwarding kernel (also the matrix kernel's overflow path)."""
    delta: Dict[int, List[int]] = {}
    delta_get = delta.get
    increments = 0
    check_cond1 = column > 1
    position = column - 1
    for row, hits, count in groups:
        length = len(row)
        if length < column:
            continue
        if check_cond1:
            qualified = True
            for i in range(position):
                if not forward_flags[row[i]]:
                    qualified = False
                    break
            if not qualified:
                continue
        tagger_position = -1
        for candidate in range(column, length):
            if tagger_flags[row[candidate]]:
                tagger_position = candidate
                break
            if not forward_flags[row[candidate]]:
                break
        if tagger_position < 0:
            continue
        index = row[position]
        entry = delta_get(index)
        if entry is None:
            entry = delta[index] = [0, 0]
        if (hits >> tagger_position) & 1:
            entry[0] += count
        else:
            entry[1] += count
        increments += count
    return delta, increments


@dataclass
class ColumnInferenceReport:
    """Diagnostics about one inference run (coverage per column)."""

    columns_processed: int = 0
    tagging_counts_per_column: List[int] = field(default_factory=list)
    forwarding_counts_per_column: List[int] = field(default_factory=list)

    @property
    def total_tagging_counts(self) -> int:
        """Total number of tagging counter increments."""
        return sum(self.tagging_counts_per_column)

    @property
    def total_forwarding_counts(self) -> int:
        """Total number of forwarding counter increments."""
        return sum(self.forwarding_counts_per_column)


class ColumnInference:
    """Runs the paper's column-based inference over ``(path, comm)`` tuples."""

    def __init__(
        self,
        thresholds: Optional[Thresholds] = None,
        *,
        max_columns: Optional[int] = None,
        stop_when_stalled: bool = True,
        representation: str = "object",
    ) -> None:
        if representation not in REPRESENTATIONS:
            raise ValueError(f"unknown representation {representation!r}")
        self.thresholds = thresholds or Thresholds()
        self.max_columns = max_columns
        self.stop_when_stalled = stop_when_stalled
        self.representation = representation
        self.report = ColumnInferenceReport()

    # -- public API --------------------------------------------------------------------
    def run(self, tuples: Sequence[PathCommTuple]) -> ClassificationResult:
        """Infer the community usage classification for every observed AS."""
        if self.representation == "columnar":
            return self._run_columnar(tuples)
        store = CounterStore(self.thresholds)
        observed: Set[ASN] = set()
        if not tuples:
            return ClassificationResult(store=store, observed_ases=observed, algorithm="column")

        # Pre-compute the upper-field sets once; membership tests dominate the
        # inner loops.
        prepared: List[PreparedTuple] = []
        max_length = 0
        for item in tuples:
            asns = item.path.asns
            observed.update(asns)
            prepared.append((asns, item.communities.upper_fields()))
            if len(asns) > max_length:
                max_length = len(asns)

        limit = max_length if self.max_columns is None else min(max_length, self.max_columns)
        self.report = ColumnInferenceReport()

        for column in range(1, limit + 1):
            tagging_delta, tagging_increments = count_tagging_phase(
                prepared, column, store.decision_view()
            )
            store.apply_tagging_delta(tagging_delta)
            forwarding_delta, forwarding_increments = count_forwarding_phase(
                prepared, column, store.decision_view()
            )
            store.apply_forwarding_delta(forwarding_delta)
            self.report.columns_processed = column
            self.report.tagging_counts_per_column.append(tagging_increments)
            self.report.forwarding_counts_per_column.append(forwarding_increments)
            if (
                self.stop_when_stalled
                and column > 1
                and tagging_increments == 0
                and forwarding_increments == 0
            ):
                break

        return ClassificationResult(store=store, observed_ases=observed, algorithm="column")

    # -- columnar fast path ------------------------------------------------------------
    def _run_columnar(self, tuples: Sequence[PathCommTuple]) -> ClassificationResult:
        """Same inference over the interned, packed representation."""
        table = TupleTable()
        batch = ColumnarBatch(table)
        for item in tuples:
            batch.add_tuple(item)
        observed = batch.observed_ases()
        packed = PackedCounterStore(self.thresholds)
        self.report = ColumnInferenceReport()
        if not len(batch):
            return ClassificationResult(
                store=CounterStore(self.thresholds), observed_ases=observed, algorithm="column"
            )

        groups = batch.counting_groups()
        limit = (
            table.max_path_length
            if self.max_columns is None
            else min(table.max_path_length, self.max_columns)
        )
        for column in range(1, limit + 1):
            tagger_flags, forward_flags = packed.decision_flags(table.as_count)
            tagging_delta, tagging_increments = count_tagging_phase_packed(
                groups, column, tagger_flags, forward_flags
            )
            packed.apply_tagging_delta(tagging_delta)
            tagger_flags, forward_flags = packed.decision_flags(table.as_count)
            forwarding_delta, forwarding_increments = count_forwarding_phase_packed(
                groups, column, tagger_flags, forward_flags
            )
            packed.apply_forwarding_delta(forwarding_delta)
            self.report.columns_processed = column
            self.report.tagging_counts_per_column.append(tagging_increments)
            self.report.forwarding_counts_per_column.append(forwarding_increments)
            if (
                self.stop_when_stalled
                and column > 1
                and tagging_increments == 0
                and forwarding_increments == 0
            ):
                break

        return ClassificationResult(
            store=packed.to_store(table.as_values()), observed_ases=observed, algorithm="column"
        )
