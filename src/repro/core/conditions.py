"""The counting conditions Cond1 and Cond2 (paper Section 5.2).

Both conditions are evaluated against the knowledge (counters) accumulated so
far; they gate whether evidence may be counted for an AS at a given path
index:

* **Cond1** -- every upstream AS (closer to the collector) must already be
  known to be a forward AS, otherwise the community output of the AS under
  consideration is hidden and nothing can be said about it.
* **Cond2** -- a downstream tagger must exist that is reachable through
  forward ASes only; only then does the presence or absence of that tagger's
  community reveal the forwarding behaviour of the AS under consideration.
"""

from __future__ import annotations

from typing import Optional

from repro.bgp.path import ASPath
from repro.core.counters import CounterStore


def cond1(path: ASPath, index: int, store: CounterStore) -> bool:
    """Cond1: ``is_forward(A_i)`` for every upstream ``A_i`` (``i < index``).

    *index* is 1-based (the paper's ``x``).  At ``index == 1`` there is no
    upstream AS and the condition holds trivially.
    """
    asns = path.asns
    for i in range(index - 1):
        if not store.is_forward(asns[i]):
            return False
    return True


def find_downstream_tagger(path: ASPath, index: int, store: CounterStore) -> Optional[int]:
    """The 1-based index of the nearest qualifying downstream tagger.

    Scans downstream of *index* for the first AS ``A_t`` with
    ``is_tagger(A_t)``; every AS strictly between *index* and ``t`` must be a
    forward AS.  Returns ``None`` when no such tagger exists (Cond2 fails).
    """
    asns = path.asns
    for t in range(index + 1, len(asns) + 1):
        candidate = asns[t - 1]
        if store.is_tagger(candidate):
            return t
        if not store.is_forward(candidate):
            return None
    return None


def cond2(path: ASPath, index: int, store: CounterStore) -> bool:
    """Cond2: a downstream tagger reachable through forward ASes exists."""
    return find_downstream_tagger(path, index, store) is not None
