"""Per-AS evidence counters (paper Section 5.3).

Four counters are maintained per AS:

* ``t`` / ``s`` -- occurrences counted as tagger / silent evidence,
* ``f`` / ``c`` -- occurrences counted as forward / cleaner evidence.

The threshold queries ``is_tagger(A)`` etc. evaluate the share of the
respective counter against the configured threshold; they are used both
*during* counting (Cond1 / Cond2 need the knowledge gained so far) and for
the final classification.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.bgp.asn import ASN
from repro.core.classes import ForwardingClass, TaggingClass, UsageClassification
from repro.core.thresholds import Thresholds


@dataclass
class ASCounters:
    """The four evidence counters of a single AS."""

    tagger: int = 0
    silent: int = 0
    forward: int = 0
    cleaner: int = 0

    # -- tagging ----------------------------------------------------------------
    @property
    def tagging_total(self) -> int:
        """Total tagging evidence (``t + s``)."""
        return self.tagger + self.silent

    def tagger_share(self) -> float:
        """``t / (t + s)``, or 0.0 without evidence."""
        total = self.tagging_total
        return self.tagger / total if total else 0.0

    def silent_share(self) -> float:
        """``s / (t + s)``, or 0.0 without evidence."""
        total = self.tagging_total
        return self.silent / total if total else 0.0

    # -- forwarding ----------------------------------------------------------------
    @property
    def forwarding_total(self) -> int:
        """Total forwarding evidence (``f + c``)."""
        return self.forward + self.cleaner

    def forward_share(self) -> float:
        """``f / (f + c)``, or 0.0 without evidence."""
        total = self.forwarding_total
        return self.forward / total if total else 0.0

    def cleaner_share(self) -> float:
        """``c / (f + c)``, or 0.0 without evidence."""
        total = self.forwarding_total
        return self.cleaner / total if total else 0.0

    def merge(self, other: "ASCounters") -> "ASCounters":
        """Element-wise sum of two counter sets (used to merge datasets)."""
        return ASCounters(
            tagger=self.tagger + other.tagger,
            silent=self.silent + other.silent,
            forward=self.forward + other.forward,
            cleaner=self.cleaner + other.cleaner,
        )

    def as_tuple(self) -> Tuple[int, int, int, int]:
        """``(t, s, f, c)`` for compact comparisons in tests."""
        return (self.tagger, self.silent, self.forward, self.cleaner)

    @classmethod
    def from_tuple(cls, values: Sequence[int]) -> "ASCounters":
        """Inverse of :meth:`as_tuple` (used by checkpoint restore)."""
        tagger, silent, forward, cleaner = values
        return cls(tagger=tagger, silent=silent, forward=forward, cleaner=cleaner)

    def decay(self, factor: float) -> "ASCounters":
        """Multiplicatively age all four counters (streaming decay).

        Rounds half-up rather than truncating: truncation would collapse any
        counter ``<= 1/factor`` straight to zero, silently erasing minority
        evidence and skewing the share ratios after repeated decay.  Rounding
        keeps e.g. a ``(99, 1)`` tagger/silent split near a 0.99 share instead
        of snapping it to 1.0.

        Consequence: with ``factor >= 0.5`` a counter of 1 is a fixed point,
        so decay alone never fully ages evidence out.  Deployments that need
        bounded state should evict (sliding windows) or use factors < 0.5.
        """
        return ASCounters(
            tagger=int(self.tagger * factor + 0.5),
            silent=int(self.silent * factor + 0.5),
            forward=int(self.forward * factor + 0.5),
            cleaner=int(self.cleaner * factor + 0.5),
        )

    @property
    def is_zero(self) -> bool:
        """``True`` when no evidence at all is recorded."""
        return not (self.tagger or self.silent or self.forward or self.cleaner)


@dataclass(frozen=True)
class DecisionView:
    """Frozen snapshot of the threshold predicates of a counter state.

    The column algorithm consults ``is_tagger`` / ``is_forward`` while
    counting; a :class:`DecisionView` pins the answers to the knowledge at a
    well-defined point (the start of a counting phase), which makes every
    phase a pure function of ``(tuples, decisions)``.  The streaming engine
    relies on this purity: when the decision view of a phase is unchanged
    between two runs, previously counted tuples contribute exactly the same
    deltas and only new tuples need to be counted.
    """

    tagger_ases: FrozenSet[ASN]
    forward_ases: FrozenSet[ASN]

    def is_tagger(self, asn: ASN) -> bool:
        """Snapshot answer to :meth:`CounterStore.is_tagger`."""
        return asn in self.tagger_ases

    def is_forward(self, asn: ASN) -> bool:
        """Snapshot answer to :meth:`CounterStore.is_forward`."""
        return asn in self.forward_ases


class CounterStore:
    """The counters of all ASes plus the threshold queries over them."""

    def __init__(self, thresholds: Optional[Thresholds] = None) -> None:
        self.thresholds = thresholds or Thresholds()
        self._counters: Dict[ASN, ASCounters] = {}

    # -- mutation -------------------------------------------------------------------
    def counters_for(self, asn: ASN) -> ASCounters:
        """The (mutable) counters of *asn*, created on first access."""
        counters = self._counters.get(asn)
        if counters is None:
            counters = ASCounters()
            self._counters[asn] = counters
        return counters

    def count_tagger(self, asn: ASN) -> None:
        """Record one piece of tagger evidence (``t[A]++``)."""
        self.counters_for(asn).tagger += 1

    def count_silent(self, asn: ASN) -> None:
        """Record one piece of silent evidence (``s[A]++``)."""
        self.counters_for(asn).silent += 1

    def count_forward(self, asn: ASN) -> None:
        """Record one piece of forward evidence (``f[A]++``)."""
        self.counters_for(asn).forward += 1

    def count_cleaner(self, asn: ASN) -> None:
        """Record one piece of cleaner evidence (``c[A]++``)."""
        self.counters_for(asn).cleaner += 1

    # -- incremental updates (streaming engine) --------------------------------------
    def apply_tagging_delta(self, delta: Mapping[ASN, Sequence[int]]) -> None:
        """Apply ``{asn: (dt, ds)}`` tagging deltas (may be negative)."""
        for asn, (d_tagger, d_silent) in delta.items():
            counters = self.counters_for(asn)
            counters.tagger += d_tagger
            counters.silent += d_silent

    def apply_forwarding_delta(self, delta: Mapping[ASN, Sequence[int]]) -> None:
        """Apply ``{asn: (df, dc)}`` forwarding deltas (may be negative)."""
        for asn, (d_forward, d_cleaner) in delta.items():
            counters = self.counters_for(asn)
            counters.forward += d_forward
            counters.cleaner += d_cleaner

    def apply_delta(self, delta: Mapping[ASN, Sequence[int]]) -> None:
        """Apply full ``{asn: (dt, ds, df, dc)}`` deltas (may be negative).

        Negative components retract previously counted evidence, which is how
        the streaming engine evicts expired tuples without a full recount.
        """
        for asn, (d_tagger, d_silent, d_forward, d_cleaner) in delta.items():
            counters = self.counters_for(asn)
            counters.tagger += d_tagger
            counters.silent += d_silent
            counters.forward += d_forward
            counters.cleaner += d_cleaner

    def merge_from(self, other: "CounterStore") -> None:
        """Element-wise add every counter of *other* into this store.

        This is the shard-merge operation of the parallel execution layer:
        because all counting phases produce commutative per-AS sums, merging
        per-shard stores at a phase barrier is equivalent to having counted
        the union of their inputs in one process.
        """
        for asn, counters in other._counters.items():
            mine = self.counters_for(asn)
            mine.tagger += counters.tagger
            mine.silent += counters.silent
            mine.forward += counters.forward
            mine.cleaner += counters.cleaner

    @classmethod
    def merged(
        cls,
        stores: Iterable["CounterStore"],
        thresholds: Optional[Thresholds] = None,
    ) -> "CounterStore":
        """A new store holding the element-wise sum of *stores*."""
        merged = cls(thresholds)
        for store in stores:
            merged.merge_from(store)
        return merged

    def prune_zeros(self) -> int:
        """Drop ASes whose evidence was fully retracted; returns the count.

        Keeps the store's membership semantics identical to one that never
        saw the retracted evidence (used after negative-delta eviction).
        """
        zeroed = [asn for asn, counters in self._counters.items() if counters.is_zero]
        for asn in zeroed:
            del self._counters[asn]
        return len(zeroed)

    def decay(self, factor: float, *, prune: bool = True) -> None:
        """Multiplicatively age every counter by ``factor`` in ``[0, 1]``.

        Streaming deployments use decay to let stale evidence fade out
        between windows instead of recounting from scratch.  With *prune*,
        ASes whose evidence decayed to zero are dropped entirely.
        """
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"decay factor must be within [0, 1], got {factor}")
        decayed: Dict[ASN, ASCounters] = {}
        for asn, counters in self._counters.items():
            aged = counters.decay(factor)
            if prune and aged.is_zero:
                continue
            decayed[asn] = aged
        self._counters = decayed

    def decision_view(self) -> DecisionView:
        """Snapshot the ``is_tagger`` / ``is_forward`` predicates of all ASes."""
        tagger_threshold = self.thresholds.tagger
        forward_threshold = self.thresholds.forward
        taggers = []
        forwards = []
        for asn, counters in self._counters.items():
            tagging_total = counters.tagger + counters.silent
            if tagging_total and counters.tagger / tagging_total >= tagger_threshold:
                taggers.append(asn)
            forwarding_total = counters.forward + counters.cleaner
            if forwarding_total and counters.forward / forwarding_total >= forward_threshold:
                forwards.append(asn)
        return DecisionView(frozenset(taggers), frozenset(forwards))

    # -- (de)serialisation (checkpointing) ------------------------------------------
    def state_dict(self) -> Dict[ASN, Tuple[int, int, int, int]]:
        """Plain-data snapshot of every AS's counters."""
        return {asn: counters.as_tuple() for asn, counters in self._counters.items()}

    @classmethod
    def from_state(
        cls,
        state: Mapping[ASN, Sequence[int]],
        thresholds: Optional[Thresholds] = None,
    ) -> "CounterStore":
        """Rebuild a store from a :meth:`state_dict` snapshot."""
        store = cls(thresholds)
        for asn, values in state.items():
            store._counters[asn] = ASCounters.from_tuple(values)
        return store

    # -- lookup ----------------------------------------------------------------------
    def get(self, asn: ASN) -> ASCounters:
        """The counters of *asn* (zeroes if the AS was never counted)."""
        return self._counters.get(asn, ASCounters())

    def __contains__(self, asn: object) -> bool:
        return asn in self._counters

    def __len__(self) -> int:
        return len(self._counters)

    def __iter__(self) -> Iterator[ASN]:
        return iter(self._counters)

    def items(self) -> Iterable[Tuple[ASN, ASCounters]]:
        return self._counters.items()

    # -- threshold queries (Section 5.3) ------------------------------------------------
    def is_tagger(self, asn: ASN) -> bool:
        """``t[A] / (t[A] + s[A]) >= tagger_threshold`` (with evidence)."""
        counters = self._counters.get(asn)
        if counters is None or counters.tagging_total == 0:
            return False
        return counters.tagger_share() >= self.thresholds.tagger

    def is_silent(self, asn: ASN) -> bool:
        """``s[A] / (t[A] + s[A]) >= silent_threshold`` (with evidence)."""
        counters = self._counters.get(asn)
        if counters is None or counters.tagging_total == 0:
            return False
        return counters.silent_share() >= self.thresholds.silent

    def is_forward(self, asn: ASN) -> bool:
        """``f[A] / (f[A] + c[A]) >= forward_threshold`` (with evidence)."""
        counters = self._counters.get(asn)
        if counters is None or counters.forwarding_total == 0:
            return False
        return counters.forward_share() >= self.thresholds.forward

    def is_cleaner(self, asn: ASN) -> bool:
        """``c[A] / (f[A] + c[A]) >= cleaner_threshold`` (with evidence)."""
        counters = self._counters.get(asn)
        if counters is None or counters.forwarding_total == 0:
            return False
        return counters.cleaner_share() >= self.thresholds.cleaner

    # -- classification (Section 5.5) ------------------------------------------------------
    def get_tagging(self, asn: ASN) -> TaggingClass:
        """``get_tagging(A)``: tagger, silent, undecided, or none."""
        counters = self._counters.get(asn)
        if counters is None or counters.tagging_total == 0:
            return TaggingClass.NONE
        if self.is_tagger(asn):
            return TaggingClass.TAGGER
        if self.is_silent(asn):
            return TaggingClass.SILENT
        return TaggingClass.UNDECIDED

    def get_forwarding(self, asn: ASN) -> ForwardingClass:
        """``get_forwarding(A)``: forward, cleaner, undecided, or none."""
        counters = self._counters.get(asn)
        if counters is None or counters.forwarding_total == 0:
            return ForwardingClass.NONE
        if self.is_forward(asn):
            return ForwardingClass.FORWARD
        if self.is_cleaner(asn):
            return ForwardingClass.CLEANER
        return ForwardingClass.UNDECIDED

    def get_class(self, asn: ASN) -> UsageClassification:
        """``get_class(A)``: the two-character classification of *asn*."""
        return UsageClassification(self.get_tagging(asn), self.get_forwarding(asn))

    def classify_all(self) -> Dict[ASN, UsageClassification]:
        """Classification of every AS with at least one counter."""
        return {asn: self.get_class(asn) for asn in self._counters}


#: Per-AS-index phase deltas of the packed path (``idx -> [d1, d2]``).
PackedPhaseDelta = Dict[int, Sequence[int]]


class PackedCounterStore:
    """Dense ``array``-backed twin of :class:`CounterStore`.

    Counters live in four flat ``array('q')`` columns indexed by the dense
    AS index a :class:`~repro.core.tuples.TupleTable` assigns, so the hot
    counting loops touch machine integers instead of per-AS objects.  The
    delta/merge/state APIs mirror the object store; a slot whose four
    counters are all zero reads as *absent*, which keeps the membership
    semantics identical to an object store that pruned retracted evidence.
    """

    __slots__ = ("thresholds", "tagger", "silent", "forward", "cleaner")

    def __init__(self, thresholds: Optional[Thresholds] = None, slots: int = 0) -> None:
        self.thresholds = thresholds or Thresholds()
        self.tagger: "array[int]" = array("q", bytes(8 * slots))
        self.silent: "array[int]" = array("q", bytes(8 * slots))
        self.forward: "array[int]" = array("q", bytes(8 * slots))
        self.cleaner: "array[int]" = array("q", bytes(8 * slots))

    @property
    def slots(self) -> int:
        """Number of AS-index slots currently allocated."""
        return len(self.tagger)

    def ensure_slots(self, count: int) -> None:
        """Grow to at least *count* zero-initialised slots."""
        grow = count - len(self.tagger)
        if grow > 0:
            pad = bytes(8 * grow)
            self.tagger.frombytes(pad)
            self.silent.frombytes(pad)
            self.forward.frombytes(pad)
            self.cleaner.frombytes(pad)

    # -- incremental updates ----------------------------------------------------------
    def apply_tagging_delta(self, delta: Mapping[int, Sequence[int]]) -> None:
        """Apply ``{as_index: (dt, ds)}`` deltas (may be negative)."""
        tagger, silent = self.tagger, self.silent
        for index, (d_tagger, d_silent) in delta.items():
            tagger[index] += d_tagger
            silent[index] += d_silent

    def apply_forwarding_delta(self, delta: Mapping[int, Sequence[int]]) -> None:
        """Apply ``{as_index: (df, dc)}`` deltas (may be negative)."""
        forward, cleaner = self.forward, self.cleaner
        for index, (d_forward, d_cleaner) in delta.items():
            forward[index] += d_forward
            cleaner[index] += d_cleaner

    def apply_delta(self, delta: Mapping[int, Sequence[int]]) -> None:
        """Apply full ``{as_index: (dt, ds, df, dc)}`` deltas (may be negative)."""
        tagger, silent, forward, cleaner = self.tagger, self.silent, self.forward, self.cleaner
        for index, (d_tagger, d_silent, d_forward, d_cleaner) in delta.items():
            tagger[index] += d_tagger
            silent[index] += d_silent
            forward[index] += d_forward
            cleaner[index] += d_cleaner

    def merge_from(self, other: "PackedCounterStore") -> None:
        """Element-wise add *other*'s counters (same table's index space)."""
        self.ensure_slots(other.slots)
        for mine, theirs in (
            (self.tagger, other.tagger),
            (self.silent, other.silent),
            (self.forward, other.forward),
            (self.cleaner, other.cleaner),
        ):
            for index, value in enumerate(theirs):
                if value:
                    mine[index] += value

    def decay(self, factor: float) -> None:
        """Multiplicatively age every counter (half-up, like the object store).

        Slots aged to zero read as absent, matching ``decay(prune=True)``.
        """
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"decay factor must be within [0, 1], got {factor}")
        for column in (self.tagger, self.silent, self.forward, self.cleaner):
            for index, value in enumerate(column):
                if value:
                    column[index] = int(value * factor + 0.5)

    # -- decisions ---------------------------------------------------------------------
    def decision_flags(self, slots: Optional[int] = None) -> Tuple[bytearray, bytearray]:
        """Per-index ``is_tagger`` / ``is_forward`` flags, zero-padded to *slots*.

        The flag semantics are exactly :meth:`CounterStore.decision_view`'s:
        a flag is set iff there is evidence and the share meets the
        threshold.  Padding lets the kernels index by any AS the table has
        interned, counted or not.
        """
        if slots is not None:
            self.ensure_slots(slots)
        tagger_threshold = self.thresholds.tagger
        forward_threshold = self.thresholds.forward
        count = len(self.tagger)
        tagger_flags = bytearray(count)
        forward_flags = bytearray(count)
        tagger, silent, forward, cleaner = self.tagger, self.silent, self.forward, self.cleaner
        for index in range(count):
            t = tagger[index]
            total = t + silent[index]
            if total and t / total >= tagger_threshold:
                tagger_flags[index] = 1
            f = forward[index]
            total = f + cleaner[index]
            if total and f / total >= forward_threshold:
                forward_flags[index] = 1
        return tagger_flags, forward_flags

    def decision_view(self, as_values: Sequence[ASN]) -> DecisionView:
        """The :class:`DecisionView` equivalent of :meth:`decision_flags`."""
        tagger_flags, forward_flags = self.decision_flags()
        return DecisionView(
            frozenset(as_values[i] for i, flag in enumerate(tagger_flags) if flag),
            frozenset(as_values[i] for i, flag in enumerate(forward_flags) if flag),
        )

    # -- conversion / (de)serialisation -----------------------------------------------
    def state_dict(self, as_values: Sequence[ASN]) -> Dict[ASN, Tuple[int, int, int, int]]:
        """``{asn: (t, s, f, c)}`` of every non-zero slot (object-store parity)."""
        state: Dict[ASN, Tuple[int, int, int, int]] = {}
        tagger, silent, forward, cleaner = self.tagger, self.silent, self.forward, self.cleaner
        for index in range(len(tagger)):
            t, s, f, c = tagger[index], silent[index], forward[index], cleaner[index]
            if t or s or f or c:
                state[as_values[index]] = (t, s, f, c)
        return state

    def to_store(self, as_values: Sequence[ASN]) -> CounterStore:
        """An equivalent object :class:`CounterStore` (the result boundary)."""
        return CounterStore.from_state(self.state_dict(as_values), self.thresholds)

    def arrays_state(self) -> Dict[str, "array[int]"]:
        """Raw column snapshot (checkpointing alongside the tuple table)."""
        return {
            "tagger": array("q", self.tagger),
            "silent": array("q", self.silent),
            "forward": array("q", self.forward),
            "cleaner": array("q", self.cleaner),
        }

    @classmethod
    def from_arrays_state(
        cls, state: Mapping[str, Sequence[int]], thresholds: Optional[Thresholds] = None
    ) -> "PackedCounterStore":
        """Rebuild from :meth:`arrays_state` output (same table required)."""
        store = cls(thresholds)
        store.tagger = array("q", state["tagger"])
        store.silent = array("q", state["silent"])
        store.forward = array("q", state["forward"])
        store.cleaner = array("q", state["cleaner"])
        return store
