"""Per-AS evidence counters (paper Section 5.3).

Four counters are maintained per AS:

* ``t`` / ``s`` -- occurrences counted as tagger / silent evidence,
* ``f`` / ``c`` -- occurrences counted as forward / cleaner evidence.

The threshold queries ``is_tagger(A)`` etc. evaluate the share of the
respective counter against the configured threshold; they are used both
*during* counting (Cond1 / Cond2 need the knowledge gained so far) and for
the final classification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.bgp.asn import ASN
from repro.core.classes import ForwardingClass, TaggingClass, UsageClassification
from repro.core.thresholds import Thresholds


@dataclass
class ASCounters:
    """The four evidence counters of a single AS."""

    tagger: int = 0
    silent: int = 0
    forward: int = 0
    cleaner: int = 0

    # -- tagging ----------------------------------------------------------------
    @property
    def tagging_total(self) -> int:
        """Total tagging evidence (``t + s``)."""
        return self.tagger + self.silent

    def tagger_share(self) -> float:
        """``t / (t + s)``, or 0.0 without evidence."""
        total = self.tagging_total
        return self.tagger / total if total else 0.0

    def silent_share(self) -> float:
        """``s / (t + s)``, or 0.0 without evidence."""
        total = self.tagging_total
        return self.silent / total if total else 0.0

    # -- forwarding ----------------------------------------------------------------
    @property
    def forwarding_total(self) -> int:
        """Total forwarding evidence (``f + c``)."""
        return self.forward + self.cleaner

    def forward_share(self) -> float:
        """``f / (f + c)``, or 0.0 without evidence."""
        total = self.forwarding_total
        return self.forward / total if total else 0.0

    def cleaner_share(self) -> float:
        """``c / (f + c)``, or 0.0 without evidence."""
        total = self.forwarding_total
        return self.cleaner / total if total else 0.0

    def merge(self, other: "ASCounters") -> "ASCounters":
        """Element-wise sum of two counter sets (used to merge datasets)."""
        return ASCounters(
            tagger=self.tagger + other.tagger,
            silent=self.silent + other.silent,
            forward=self.forward + other.forward,
            cleaner=self.cleaner + other.cleaner,
        )

    def as_tuple(self) -> Tuple[int, int, int, int]:
        """``(t, s, f, c)`` for compact comparisons in tests."""
        return (self.tagger, self.silent, self.forward, self.cleaner)


class CounterStore:
    """The counters of all ASes plus the threshold queries over them."""

    def __init__(self, thresholds: Optional[Thresholds] = None) -> None:
        self.thresholds = thresholds or Thresholds()
        self._counters: Dict[ASN, ASCounters] = {}

    # -- mutation -------------------------------------------------------------------
    def counters_for(self, asn: ASN) -> ASCounters:
        """The (mutable) counters of *asn*, created on first access."""
        counters = self._counters.get(asn)
        if counters is None:
            counters = ASCounters()
            self._counters[asn] = counters
        return counters

    def count_tagger(self, asn: ASN) -> None:
        """Record one piece of tagger evidence (``t[A]++``)."""
        self.counters_for(asn).tagger += 1

    def count_silent(self, asn: ASN) -> None:
        """Record one piece of silent evidence (``s[A]++``)."""
        self.counters_for(asn).silent += 1

    def count_forward(self, asn: ASN) -> None:
        """Record one piece of forward evidence (``f[A]++``)."""
        self.counters_for(asn).forward += 1

    def count_cleaner(self, asn: ASN) -> None:
        """Record one piece of cleaner evidence (``c[A]++``)."""
        self.counters_for(asn).cleaner += 1

    # -- lookup ----------------------------------------------------------------------
    def get(self, asn: ASN) -> ASCounters:
        """The counters of *asn* (zeroes if the AS was never counted)."""
        return self._counters.get(asn, ASCounters())

    def __contains__(self, asn: object) -> bool:
        return asn in self._counters

    def __len__(self) -> int:
        return len(self._counters)

    def __iter__(self) -> Iterator[ASN]:
        return iter(self._counters)

    def items(self) -> Iterable[Tuple[ASN, ASCounters]]:
        return self._counters.items()

    # -- threshold queries (Section 5.3) ------------------------------------------------
    def is_tagger(self, asn: ASN) -> bool:
        """``t[A] / (t[A] + s[A]) >= tagger_threshold`` (with evidence)."""
        counters = self._counters.get(asn)
        if counters is None or counters.tagging_total == 0:
            return False
        return counters.tagger_share() >= self.thresholds.tagger

    def is_silent(self, asn: ASN) -> bool:
        """``s[A] / (t[A] + s[A]) >= silent_threshold`` (with evidence)."""
        counters = self._counters.get(asn)
        if counters is None or counters.tagging_total == 0:
            return False
        return counters.silent_share() >= self.thresholds.silent

    def is_forward(self, asn: ASN) -> bool:
        """``f[A] / (f[A] + c[A]) >= forward_threshold`` (with evidence)."""
        counters = self._counters.get(asn)
        if counters is None or counters.forwarding_total == 0:
            return False
        return counters.forward_share() >= self.thresholds.forward

    def is_cleaner(self, asn: ASN) -> bool:
        """``c[A] / (f[A] + c[A]) >= cleaner_threshold`` (with evidence)."""
        counters = self._counters.get(asn)
        if counters is None or counters.forwarding_total == 0:
            return False
        return counters.cleaner_share() >= self.thresholds.cleaner

    # -- classification (Section 5.5) ------------------------------------------------------
    def get_tagging(self, asn: ASN) -> TaggingClass:
        """``get_tagging(A)``: tagger, silent, undecided, or none."""
        counters = self._counters.get(asn)
        if counters is None or counters.tagging_total == 0:
            return TaggingClass.NONE
        if self.is_tagger(asn):
            return TaggingClass.TAGGER
        if self.is_silent(asn):
            return TaggingClass.SILENT
        return TaggingClass.UNDECIDED

    def get_forwarding(self, asn: ASN) -> ForwardingClass:
        """``get_forwarding(A)``: forward, cleaner, undecided, or none."""
        counters = self._counters.get(asn)
        if counters is None or counters.forwarding_total == 0:
            return ForwardingClass.NONE
        if self.is_forward(asn):
            return ForwardingClass.FORWARD
        if self.is_cleaner(asn):
            return ForwardingClass.CLEANER
        return ForwardingClass.UNDECIDED

    def get_class(self, asn: ASN) -> UsageClassification:
        """``get_class(A)``: the two-character classification of *asn*."""
        return UsageClassification(self.get_tagging(asn), self.get_forwarding(asn))

    def classify_all(self) -> Dict[ASN, UsageClassification]:
        """Classification of every AS with at least one counter."""
        return {asn: self.get_class(asn) for asn in self._counters}
