"""Export and import of the classification database.

The paper publishes its per-AS inferences as a public resource (Section 1,
[5]).  This module provides the equivalent for this reproduction: a stable,
line-oriented text format (and a JSON variant) containing, per AS, the
two-character classification, the four evidence counters, and the evidence
shares, so downstream tooling (hijack detection, community filtering, ...)
can consume the inferences without running the pipeline.

Format (one AS per line, ``|``-separated)::

    # as-community-usage v1
    # asn|class|t|s|f|c
    3356|tf|412|3|371|0
    64496|sn|0|57|0|0
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, TextIO

from repro.bgp.asn import ASN
from repro.core.classes import UsageClassification
from repro.core.counters import ASCounters, CounterStore
from repro.core.results import ClassificationResult
from repro.core.thresholds import Thresholds

#: Format magic written as the first header line.
FORMAT_HEADER = "# as-community-usage v1"


@dataclass(frozen=True)
class ClassificationRecord:
    """One exported AS: classification plus raw evidence."""

    asn: ASN
    classification: UsageClassification
    counters: ASCounters

    def to_line(self) -> str:
        """Serialise to the ``|``-separated line format."""
        c = self.counters
        return f"{self.asn}|{self.classification.code}|{c.tagger}|{c.silent}|{c.forward}|{c.cleaner}"

    @classmethod
    def from_line(cls, line: str) -> "ClassificationRecord":
        """Parse one data line."""
        parts = line.strip().split("|")
        if len(parts) != 6:
            raise ValueError(f"malformed classification line: {line!r}")
        asn = int(parts[0])
        classification = UsageClassification.from_code(parts[1])
        counters = ASCounters(
            tagger=int(parts[2]), silent=int(parts[3]), forward=int(parts[4]), cleaner=int(parts[5])
        )
        return cls(asn=asn, classification=classification, counters=counters)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        return {
            "asn": self.asn,
            "class": self.classification.code,
            "tagger_count": self.counters.tagger,
            "silent_count": self.counters.silent,
            "forward_count": self.counters.forward,
            "cleaner_count": self.counters.cleaner,
        }


class ClassificationDatabase:
    """An exported (or imported) set of per-AS classification records."""

    def __init__(self, records: Optional[Mapping[ASN, ClassificationRecord]] = None) -> None:
        self._records: Dict[ASN, ClassificationRecord] = dict(records or {})

    # -- construction ----------------------------------------------------------------
    @classmethod
    def from_result(cls, result: ClassificationResult) -> "ClassificationDatabase":
        """Build a database from a finished classification result."""
        records: Dict[ASN, ClassificationRecord] = {}
        for asn in sorted(result.observed_ases):
            records[asn] = ClassificationRecord(
                asn=asn,
                classification=result.classification_of(asn),
                counters=result.counters_of(asn),
            )
        return cls(records)

    # -- mapping protocol --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, asn: object) -> bool:
        return asn in self._records

    def __iter__(self) -> Iterator[ASN]:
        return iter(sorted(self._records))

    def get(self, asn: ASN) -> Optional[ClassificationRecord]:
        """The record of *asn*, or ``None``."""
        return self._records.get(asn)

    def classification_of(self, asn: ASN) -> Optional[UsageClassification]:
        """Shortcut: the classification of *asn*, or ``None``."""
        record = self._records.get(asn)
        return record.classification if record else None

    def records(self) -> List[ClassificationRecord]:
        """All records, sorted by ASN."""
        return [self._records[asn] for asn in sorted(self._records)]

    def counts_by_code(self) -> Dict[str, int]:
        """Number of ASes per two-character classification code."""
        counts: Dict[str, int] = {}
        for record in self._records.values():
            counts[record.classification.code] = counts.get(record.classification.code, 0) + 1
        return counts

    # -- text format ---------------------------------------------------------------------
    def dump(self, stream: TextIO) -> None:
        """Write the database in the line format."""
        stream.write(FORMAT_HEADER + "\n")
        stream.write("# asn|class|t|s|f|c\n")
        for record in self.records():
            stream.write(record.to_line() + "\n")

    def dumps(self) -> str:
        """The line format as a string."""
        from io import StringIO

        buffer = StringIO()
        self.dump(buffer)
        return buffer.getvalue()

    @classmethod
    def load(cls, stream: TextIO) -> "ClassificationDatabase":
        """Read a database from the line format."""
        records: Dict[ASN, ClassificationRecord] = {}
        first_line = True
        for raw in stream:
            line = raw.strip()
            if first_line:
                first_line = False
                if line != FORMAT_HEADER:
                    raise ValueError(f"unexpected header {line!r}; expected {FORMAT_HEADER!r}")
                continue
            if not line or line.startswith("#"):
                continue
            record = ClassificationRecord.from_line(line)
            records[record.asn] = record
        return cls(records)

    @classmethod
    def loads(cls, text: str) -> "ClassificationDatabase":
        """Read a database from a string in the line format."""
        from io import StringIO

        return cls.load(StringIO(text))

    # -- JSON format ---------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialise to JSON (list of per-AS objects)."""
        return json.dumps([record.to_dict() for record in self.records()], indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ClassificationDatabase":
        """Parse the JSON serialisation."""
        records: Dict[ASN, ClassificationRecord] = {}
        for entry in json.loads(text):
            record = ClassificationRecord(
                asn=int(entry["asn"]),
                classification=UsageClassification.from_code(entry["class"]),
                counters=ASCounters(
                    tagger=int(entry.get("tagger_count", 0)),
                    silent=int(entry.get("silent_count", 0)),
                    forward=int(entry.get("forward_count", 0)),
                    cleaner=int(entry.get("cleaner_count", 0)),
                ),
            )
            records[record.asn] = record
        return cls(records)

    # -- round trip back into a result ------------------------------------------------------
    def to_result(self, thresholds: Optional[Thresholds] = None) -> ClassificationResult:
        """Rebuild a :class:`ClassificationResult` from the exported counters.

        Because the export keeps the raw counters, re-deriving the classes
        with the same thresholds reproduces the original classification; with
        different thresholds this doubles as an offline re-thresholding tool.
        """
        store = CounterStore(thresholds or Thresholds())
        for record in self._records.values():
            counters = store.counters_for(record.asn)
            counters.tagger = record.counters.tagger
            counters.silent = record.counters.silent
            counters.forward = record.counters.forward
            counters.cleaner = record.counters.cleaner
        return ClassificationResult(store=store, observed_ases=set(self._records), algorithm="imported")
