"""Vectorised (numpy) twins of the packed counting kernels.

The pure-Python packed kernels in :mod:`repro.core.column` and
:mod:`repro.core.row` walk one counting group at a time.  When numpy is
available the same sums can be computed bucket-wise: groups are split by
path length into dense ``(n, L)`` index matrices once, and every phase
reduces whole buckets with boolean masks and ``bincount`` instead of a
Python loop per group.  All arithmetic stays in integers (the ``bincount``
weights are integer-valued float64, exact far beyond any realistic event
count), so the deltas are *identical* to the scalar kernels — the
conformance suites run with this path active.

numpy is optional.  When it is missing every entry point in this module
keeps working in the degenerate sense (``HAVE_NUMPY`` is ``False`` and the
callers fall back to the scalar kernels), so nothing here may be imported
for effect.

Groups whose path is longer than :data:`MAX_MATRIX_LENGTH` cannot have
their hits bitmask represented in an ``int64`` and are kept aside in
:attr:`GroupMatrix.overflow` for the scalar kernels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised implicitly by every columnar test
    import numpy as _np
except ImportError:  # pragma: no cover - the container bakes numpy in
    _np = None  # type: ignore[assignment]

HAVE_NUMPY = _np is not None

#: Longest path representable as an int64 hits bitmask (sign bit spared).
MAX_MATRIX_LENGTH = 62

#: Below this many groups the scalar kernels win; matrix setup is overhead.
MIN_MATRIX_GROUPS = 512


class GroupList(list):
    """A list of counting groups carrying a lazily built matrix form.

    The matrix is cached on first use and rebuilt lazily after pickling
    (``__reduce__`` ships only the groups), so pinned worker chunks build
    their matrices once per process, not once per phase.
    """

    __slots__ = ("_matrix",)

    def matrix(self) -> Optional["GroupMatrix"]:
        """The cached matrix form, or ``None`` when numpy is unavailable."""
        if not HAVE_NUMPY:
            return None
        matrix = getattr(self, "_matrix", None)
        if matrix is None:
            matrix = self._matrix = GroupMatrix(self)
        return matrix

    def extend_merged(self, other: "GroupList") -> None:
        """Append *other*'s groups, folding its matrix into the cached one.

        The appended rows may duplicate ``(row, hits)`` keys already present;
        kernels sum group contributions commutatively and emit deltas in
        ascending AS-index order, so duplicated rows are indistinguishable
        from merged multiplicities.  Keeping the matrix incrementally beats
        rebuilding it from Python tuples on every streaming update.
        """
        matrix = getattr(self, "_matrix", None)
        self.extend(other)
        if matrix is not None:
            extra = other.matrix()
            if extra is not None:
                matrix.extend(extra)

    def __reduce__(self):
        return (GroupList, (list(self),))


class GroupMatrix:
    """Counting groups bucketed by path length into dense index matrices.

    Per length ``L`` the bucket holds ``rows`` (``(n, L)`` int64 AS-index
    matrix), ``hits`` (``(n,)`` int64 bitmasks), and ``counts`` (``(n,)``
    int64 multiplicities).
    """

    __slots__ = ("buckets", "overflow")

    def __init__(self, groups) -> None:
        by_length: Dict[int, list] = {}
        overflow = []
        for group in groups:
            length = len(group[0])
            if length > MAX_MATRIX_LENGTH:
                overflow.append(group)
            else:
                by_length.setdefault(length, []).append(group)
        self.overflow: list = overflow
        self.buckets: Dict[int, Tuple["_np.ndarray", "_np.ndarray", "_np.ndarray"]] = {}
        for length, bucket in by_length.items():
            self.buckets[length] = (
                _np.array([g[0] for g in bucket], dtype=_np.int64),
                _np.array([g[1] for g in bucket], dtype=_np.int64),
                _np.array([g[2] for g in bucket], dtype=_np.int64),
            )

    def extend(self, other: "GroupMatrix") -> None:
        """Concatenate *other*'s buckets onto this matrix in place.

        Sound because every kernel reduces buckets with commutative sums;
        row order within a bucket never reaches the output.
        """
        buckets = self.buckets
        for length, (rows, hits, counts) in other.buckets.items():
            mine = buckets.get(length)
            if mine is None:
                buckets[length] = (rows, hits, counts)
            else:
                buckets[length] = (
                    _np.concatenate((mine[0], rows)),
                    _np.concatenate((mine[1], hits)),
                    _np.concatenate((mine[2], counts)),
                )
        self.overflow.extend(other.overflow)


def _flags_array(flags) -> "_np.ndarray":
    """Zero-copy uint8 view of a decision flag bytearray."""
    return _np.frombuffer(flags, dtype=_np.uint8)


def _accumulate(
    totals: "_np.ndarray", indices: "_np.ndarray", weights: "_np.ndarray"
) -> None:
    """``totals[indices] += weights`` with repeated indices summed exactly."""
    if indices.size:
        totals += _np.bincount(
            indices, weights=weights, minlength=len(totals)
        ).astype(_np.int64)


def _nonzero_delta(
    first: "_np.ndarray", second: "_np.ndarray"
) -> Dict[int, List[int]]:
    """Lower two per-slot component arrays into the kernels' delta dict."""
    nonzero = _np.nonzero(first | second)[0]
    return {
        int(index): [int(a), int(b)]
        for index, a, b in zip(
            nonzero.tolist(), first[nonzero].tolist(), second[nonzero].tolist()
        )
    }


def count_tagging_matrix(
    matrix: GroupMatrix, column: int, forward_flags
) -> Tuple[Dict[int, List[int]], int]:
    """Vectorised :func:`repro.core.column.count_tagging_phase_packed`.

    Does not handle :attr:`GroupMatrix.overflow`; the dispatching caller
    folds those through the scalar kernel.
    """
    forward = _flags_array(forward_flags)
    slots = len(forward)
    taggers = _np.zeros(slots, dtype=_np.int64)
    silents = _np.zeros(slots, dtype=_np.int64)
    increments = 0
    position = column - 1
    for length, (rows, hits, counts) in matrix.buckets.items():
        if length < column:
            continue
        if column > 1:
            qualified = forward[rows[:, :position]].all(axis=1)
            rows_q, hits_q, counts_q = rows[qualified], hits[qualified], counts[qualified]
        else:
            rows_q, hits_q, counts_q = rows, hits, counts
        if not counts_q.size:
            continue
        indices = rows_q[:, position]
        tagged = ((hits_q >> position) & 1).astype(bool)
        _accumulate(taggers, indices[tagged], counts_q[tagged])
        _accumulate(silents, indices[~tagged], counts_q[~tagged])
        increments += int(counts_q.sum())
    return _nonzero_delta(taggers, silents), increments


def count_forwarding_matrix(
    matrix: GroupMatrix, column: int, tagger_flags, forward_flags
) -> Tuple[Dict[int, List[int]], int]:
    """Vectorised :func:`repro.core.column.count_forwarding_phase_packed`.

    The Cond2 scan ("nearest downstream tagger reachable through forward
    ASes") becomes a per-bucket reachability mask: position ``j`` is
    reachable while every earlier downstream position was a non-tagger
    forwarder, and the first reachable tagger position (``argmax`` over the
    eligibility mask) selects the hit bit exactly like the scalar walk.
    """
    tagger = _flags_array(tagger_flags)
    forward = _flags_array(forward_flags)
    slots = len(forward)
    forwards = _np.zeros(slots, dtype=_np.int64)
    cleaners = _np.zeros(slots, dtype=_np.int64)
    increments = 0
    position = column - 1
    for length, (rows, hits, counts) in matrix.buckets.items():
        if length <= column:  # no downstream positions to search
            continue
        if column > 1:
            qualified = forward[rows[:, :position]].all(axis=1)
            rows_q, hits_q, counts_q = rows[qualified], hits[qualified], counts[qualified]
        else:
            rows_q, hits_q, counts_q = rows, hits, counts
        if not counts_q.size:
            continue
        downstream = rows_q[:, column:]
        is_tagger = tagger[downstream] != 0
        proceed = (~is_tagger) & (forward[downstream] != 0)
        reachable = _np.empty(is_tagger.shape, dtype=bool)
        reachable[:, 0] = True
        if reachable.shape[1] > 1:
            reachable[:, 1:] = _np.logical_and.accumulate(proceed[:, :-1], axis=1)
        eligible = reachable & is_tagger
        found = eligible.any(axis=1)
        if not found.any():
            continue
        first = eligible[found].argmax(axis=1)
        tagger_position = column + first
        tagged = ((hits_q[found] >> tagger_position) & 1).astype(bool)
        indices = rows_q[found, position]
        counts_f = counts_q[found]
        _accumulate(forwards, indices[tagged], counts_f[tagged])
        _accumulate(cleaners, indices[~tagged], counts_f[~tagged])
        increments += int(counts_f.sum())
    return _nonzero_delta(forwards, cleaners), increments


def count_row_matrix(matrix: GroupMatrix) -> Dict[int, List[int]]:
    """Vectorised :func:`repro.core.row.count_row_phase_packed`.

    Tagging counts every position's hit bit; the forwarding pass uses the
    same suffix-count identity as the scalar kernel (``df`` at position
    ``j`` is the number of present communities strictly downstream of
    ``j``), computed as total minus inclusive cumulative sum.
    """
    slots = 0
    for _, (rows, _, _) in matrix.buckets.items():
        if rows.size:
            slots = max(slots, int(rows.max()) + 1)
    for row, _, _ in matrix.overflow:
        for index in row:
            slots = max(slots, index + 1)
    components = _np.zeros((4, slots), dtype=_np.int64)
    for length, (rows, hits, counts) in matrix.buckets.items():
        bits = ((hits[:, None] >> _np.arange(length)) & 1).astype(_np.int64)
        flat_rows = rows.ravel()
        flat_bits = bits.ravel().astype(bool)
        flat_counts = _np.repeat(counts, length)
        _accumulate(components[0], flat_rows[flat_bits], flat_counts[flat_bits])
        _accumulate(components[1], flat_rows[~flat_bits], flat_counts[~flat_bits])
        if length < 2:
            continue
        # present-downstream suffix counts, excluding the position itself
        suffix = bits.sum(axis=1, keepdims=True) - _np.cumsum(bits, axis=1)
        upstream = rows[:, :-1]
        _accumulate(
            components[2], upstream.ravel(), (suffix[:, :-1] * counts[:, None]).ravel()
        )
        missing_next = bits[:, 1:] == 0
        _accumulate(
            components[3],
            upstream[missing_next],
            _np.broadcast_to(counts[:, None], upstream.shape)[missing_next],
        )
    nonzero = _np.nonzero(components.any(axis=0))[0]
    return {
        int(index): [int(a), int(b), int(c), int(d)]
        for index, a, b, c, d in zip(nonzero.tolist(), *components[:, nonzero].tolist())
    }
