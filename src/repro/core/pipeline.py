"""End-to-end inference pipeline.

Chains the stages the paper's measurement system performs:

1. decode MRT archives (optional -- callers may start from observations),
2. sanitize the observations (Section 4.1),
3. deduplicate into unique ``(path, comm)`` tuples,
4. run the column-based inference (Section 5),
5. summarise the classification.

The pipeline object is what the examples and the Table 3 experiment drive;
each stage can also be used on its own.  With ``workers=N`` the sanitation /
dedup stage and the counting phases execute on N OS processes (see
:mod:`repro.parallel`); the result is identical to the serial run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional

from repro.bgp.announcement import PathCommTuple, RouteObservation
from repro.bgp.asn import ASNRegistry
from repro.bgp.prefix import PrefixAllocation
from repro.collectors.archive import iter_observations_from_mrt
from repro.core.column import REPRESENTATIONS, ColumnInference
from repro.core.results import ClassificationResult
from repro.core.row import RowInference
from repro.core.thresholds import Thresholds
from repro.sanitize.filters import SanitationConfig, SanitationStats, Sanitizer


@dataclass
class PipelineResult:
    """Everything one pipeline run produced."""

    result: ClassificationResult
    tuples: List[PathCommTuple]
    sanitation: SanitationStats
    observations_in: int
    #: ``False`` when the input bypassed sanitation (``run_from_tuples``):
    #: the sanitation stats are then all-zero by construction, and no raw
    #: observation count exists to report.
    sanitized: bool = True

    @property
    def unique_tuples(self) -> int:
        """Number of unique ``(path, comm)`` tuples after sanitation."""
        return len(self.tuples)

    def summary(self) -> Dict[str, int]:
        """Flat summary combining sanitation and classification figures.

        ``observations_in`` is only reported for runs that actually consumed
        raw observations; pre-sanitized tuple runs have no meaningful raw
        observation count and claiming one would misstate the provenance.
        """
        summary = {
            "unique_tuples": self.unique_tuples,
            **self.result.summary(),
        }
        if self.sanitized:
            summary["observations_in"] = self.observations_in
        return summary


class InferencePipeline:
    """Raw collector data in, per-AS community usage classification out."""

    def __init__(
        self,
        *,
        thresholds: Optional[Thresholds] = None,
        asn_registry: Optional[ASNRegistry] = None,
        prefix_allocation: Optional[PrefixAllocation] = None,
        sanitation: Optional[SanitationConfig] = None,
        algorithm: str = "column",
        workers: int = 1,
        representation: str = "object",
        ingest_block_size: int = 4096,
    ) -> None:
        if algorithm not in ("column", "row"):
            raise ValueError(f"unknown algorithm {algorithm!r}")
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if representation not in REPRESENTATIONS:
            raise ValueError(f"unknown representation {representation!r}")
        if ingest_block_size < 1:
            raise ValueError(f"ingest_block_size must be >= 1, got {ingest_block_size}")
        self.thresholds = thresholds or Thresholds()
        self.asn_registry = asn_registry
        self.prefix_allocation = prefix_allocation
        self.sanitation_config = sanitation or SanitationConfig()
        self.algorithm = algorithm
        self.workers = workers
        self.representation = representation
        #: Observations sanitized per block on the single-process path
        #: (mirrors :attr:`repro.stream.engine.StreamConfig.ingest_block_size`;
        #: purely a throughput knob, never changes the output).
        self.ingest_block_size = ingest_block_size

    # -- stage helpers --------------------------------------------------------------------
    def _make_sanitizer(self) -> Sanitizer:
        return Sanitizer(
            asn_registry=self.asn_registry,
            prefix_allocation=self.prefix_allocation,
            config=self.sanitation_config,
        )

    def _make_inference(self):
        if self.workers > 1:
            from repro.parallel.inference import ParallelColumnInference, ParallelRowInference

            if self.algorithm == "row":
                return ParallelRowInference(
                    self.thresholds, workers=self.workers, representation=self.representation
                )
            return ParallelColumnInference(
                self.thresholds, workers=self.workers, representation=self.representation
            )
        if self.algorithm == "row":
            return RowInference(self.thresholds, representation=self.representation)
        return ColumnInference(self.thresholds, representation=self.representation)

    # -- entry points ----------------------------------------------------------------------
    def run_from_observations(self, observations: Iterable[RouteObservation]) -> PipelineResult:
        """Sanitize, deduplicate, and classify observations.

        *observations* may be any iterable, including a lazy generator: the
        input is streamed through the sanitizer in blocks of
        :attr:`ingest_block_size`, so only one block plus the deduplicated
        unique tuples are ever held in memory.  With ``workers > 1`` the
        stream is partitioned by collector-peer AS across worker processes;
        the output is identical either way.
        """
        if self.workers > 1:
            from repro.parallel.batch import parallel_unique_tuples

            tuples, stats = parallel_unique_tuples(
                observations,
                self.workers,
                asn_registry=self.asn_registry,
                prefix_allocation=self.prefix_allocation,
                sanitation=self.sanitation_config,
            )
        else:
            sanitizer = self._make_sanitizer()
            tuples = list(
                sanitizer.iter_unique_tuples_blocked(
                    observations, self.ingest_block_size
                )
            )
            stats = sanitizer.stats
        inference = self._make_inference()
        result = inference.run(tuples)
        return PipelineResult(
            result=result,
            tuples=tuples,
            sanitation=stats,
            observations_in=stats.observations_in,
        )

    def run_from_tuples(self, tuples: Iterable[PathCommTuple]) -> PipelineResult:
        """Classify pre-sanitized ``(path, comm)`` tuples directly.

        No sanitation happens here, so the result honestly reports all-zero
        sanitation stats and ``sanitized=False`` instead of fabricating a
        raw observation count from the tuple count.
        """
        materialized = list(tuples)
        inference = self._make_inference()
        result = inference.run(materialized)
        return PipelineResult(
            result=result,
            tuples=materialized,
            sanitation=SanitationStats(),
            observations_in=0,
            sanitized=False,
        )

    def run_from_mrt(self, blobs: Mapping[str, bytes]) -> PipelineResult:
        """Decode per-collector MRT blobs, then sanitize and classify.

        Decoding is lazy: records stream straight from the decoder into the
        sanitizer without materialising per-collector observation lists.
        """
        observations = (
            observation
            for collector, blob in blobs.items()
            for observation in iter_observations_from_mrt(blob, collector)
        )
        return self.run_from_observations(observations)
