"""Classification results.

Wraps the final counter store and provides the summaries the paper reports:
per-class counts split by tagging and forwarding (Table 3), full
classifications (tf / tc / sf / sc), and per-AS lookup with ``nn`` for ASes
that were never counted.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Set, Tuple

from repro.bgp.asn import ASN
from repro.core.classes import (
    UNCLASSIFIED,
    ForwardingClass,
    TaggingClass,
    UsageClassification,
)
from repro.core.counters import ASCounters, CounterStore
from repro.core.thresholds import Thresholds

#: The four full classification codes in the paper's reporting order.
FULL_CLASS_CODES: Tuple[str, ...] = ("tf", "tc", "sf", "sc")


@dataclass
class ClassificationResult:
    """The outcome of one inference run."""

    store: CounterStore
    #: Every AS seen in the input paths (including those never counted).
    observed_ases: Set[ASN] = field(default_factory=set)
    #: Name of the algorithm that produced the result (column / row).
    algorithm: str = "column"

    # -- per-AS access -----------------------------------------------------------
    def classification_of(self, asn: ASN) -> UsageClassification:
        """The classification of *asn* (``nn`` when never counted)."""
        if asn in self.store:
            return self.store.get_class(asn)
        return UNCLASSIFIED

    def counters_of(self, asn: ASN) -> ASCounters:
        """The raw evidence counters of *asn*."""
        return self.store.get(asn)

    def __getitem__(self, asn: ASN) -> UsageClassification:
        return self.classification_of(asn)

    def __len__(self) -> int:
        return len(self.observed_ases)

    @property
    def thresholds(self) -> Thresholds:
        """The thresholds the result was computed with."""
        return self.store.thresholds

    # -- summaries --------------------------------------------------------------------
    def classifications(self) -> Dict[ASN, UsageClassification]:
        """Classification of every observed AS."""
        return {asn: self.classification_of(asn) for asn in self.observed_ases}

    def tagging_counts(self) -> Dict[TaggingClass, int]:
        """Number of ASes per inferred tagging class (Table 3, upper half)."""
        counts: Dict[TaggingClass, int] = {cls: 0 for cls in TaggingClass}
        for asn in self.observed_ases:
            counts[self.classification_of(asn).tagging] += 1
        return counts

    def forwarding_counts(self) -> Dict[ForwardingClass, int]:
        """Number of ASes per inferred forwarding class (Table 3, middle)."""
        counts: Dict[ForwardingClass, int] = {cls: 0 for cls in ForwardingClass}
        for asn in self.observed_ases:
            counts[self.classification_of(asn).forwarding] += 1
        return counts

    def full_class_counts(self) -> Dict[str, int]:
        """Number of ASes per full classification (Table 3, lower part)."""
        counts: Dict[str, int] = {code: 0 for code in FULL_CLASS_CODES}
        for asn in self.observed_ases:
            classification = self.classification_of(asn)
            if classification.is_full:
                counts[classification.code] += 1
        return counts

    def fully_classified_ases(self) -> Dict[ASN, UsageClassification]:
        """Every AS whose tagging *and* forwarding behaviour was decided."""
        result: Dict[ASN, UsageClassification] = {}
        for asn in self.observed_ases:
            classification = self.classification_of(asn)
            if classification.is_full:
                result[asn] = classification
        return result

    def ases_with_class(self, code: str) -> List[ASN]:
        """Sorted list of ASes whose classification equals *code*."""
        return sorted(
            asn for asn in self.observed_ases if self.classification_of(asn).code == code
        )

    def ases_with_tagging(self, tagging: TaggingClass) -> List[ASN]:
        """Sorted list of ASes with the given inferred tagging class."""
        return sorted(
            asn
            for asn in self.observed_ases
            if self.classification_of(asn).tagging is tagging
        )

    def ases_with_forwarding(self, forwarding: ForwardingClass) -> List[ASN]:
        """Sorted list of ASes with the given inferred forwarding class."""
        return sorted(
            asn
            for asn in self.observed_ases
            if self.classification_of(asn).forwarding is forwarding
        )

    def code_counter(self) -> Counter:
        """A :class:`collections.Counter` over two-character codes."""
        return Counter(self.classification_of(asn).code for asn in self.observed_ases)

    # -- incremental / streaming views -------------------------------------------------
    def as_code_map(self) -> Dict[ASN, str]:
        """Flat ``{asn: code}`` view, the unit of streaming diffs."""
        return {asn: self.classification_of(asn).code for asn in self.observed_ases}

    def changed_since(self, previous: Mapping[ASN, str]) -> Dict[ASN, Tuple[str, str]]:
        """Classification changes relative to an earlier :meth:`as_code_map`.

        Returns ``{asn: (old_code, new_code)}`` for every AS whose code
        changed; ASes not present earlier appear with ``old_code == "nn"``,
        and ASes that disappeared (all their evidence evicted under a
        sliding window) appear with ``new_code == "nn"``.  The streaming
        engine emits this per window so consumers can follow a live
        classification database without re-reading it wholesale.
        """
        changes: Dict[ASN, Tuple[str, str]] = {}
        unclassified = UNCLASSIFIED.code
        for asn in self.observed_ases:
            new_code = self.classification_of(asn).code
            old_code = previous.get(asn, unclassified)
            if new_code != old_code:
                changes[asn] = (old_code, new_code)
        observed = self.observed_ases
        for asn, old_code in previous.items():
            if asn not in observed and old_code != unclassified:
                changes[asn] = (old_code, unclassified)
        return changes

    def summary(self) -> Dict[str, int]:
        """A flat summary dictionary used by reports and benchmarks."""
        tagging = self.tagging_counts()
        forwarding = self.forwarding_counts()
        full = self.full_class_counts()
        return {
            "ases_observed": len(self.observed_ases),
            "tagger": tagging[TaggingClass.TAGGER],
            "silent": tagging[TaggingClass.SILENT],
            "tagging_undecided": tagging[TaggingClass.UNDECIDED],
            "tagging_none": tagging[TaggingClass.NONE],
            "forward": forwarding[ForwardingClass.FORWARD],
            "cleaner": forwarding[ForwardingClass.CLEANER],
            "forwarding_undecided": forwarding[ForwardingClass.UNDECIDED],
            "forwarding_none": forwarding[ForwardingClass.NONE],
            **{f"full_{code}": count for code, count in full.items()},
        }
