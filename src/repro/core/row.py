"""The row-based baseline (paper Section 5.7, Listing 2).

The baseline processes one ``(path, comm)`` tuple at a time, without the
Cond1 / Cond2 safeguards:

* **tagging pass** -- for every AS on the path, count tagger evidence when a
  community carrying its ASN is present, silent evidence otherwise;
* **forwarding pass** -- walking the path from the origin towards the peer,
  when the community of the downstream neighbour ``A_{x+1}`` is missing the
  AS ``A_x`` receives cleaner evidence; when it is present every AS between
  the collector and ``A_{x+1}`` receives forward evidence (they all must
  have forwarded it).

Every tuple's contribution is independent of all counters, so the whole
algorithm is one commutative sum of per-tuple deltas: :func:`row_tuple_delta`
computes one tuple's contribution, :func:`count_row_phase` folds a chunk of
tuples, and disjoint chunks merge exactly (the property both the streaming
retraction path and the multi-process shard merge rely on).

The paper argues (and Section 6 shows) that this approach cannot distinguish
hidden behaviour from silence/cleaning and is therefore prone to
misclassification; it is included as the comparison baseline and exercised by
the ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.bgp.announcement import PathCommTuple
from repro.bgp.asn import ASN
from repro.core import matrix as _matrix
from repro.core.column import REPRESENTATIONS, PreparedTuple, prepare_tuple
from repro.core.counters import CounterStore, PackedCounterStore
from repro.core.results import ClassificationResult
from repro.core.thresholds import Thresholds
from repro.core.tuples import ColumnarBatch, CountingGroup, TupleTable

#: Per-AS four-component ``[dt, ds, df, dc]`` counter deltas.
RowDelta = Dict[ASN, List[int]]


def row_tuple_delta(prepared: PreparedTuple, delta: Optional[RowDelta] = None) -> RowDelta:
    """The ``(t, s, f, c)`` contributions of one prepared tuple (order-free).

    Folds into *delta* in place when one is given (chunk counting), else
    returns a fresh mapping (per-tuple retraction in the streaming engine).
    """
    asns, uppers = prepared
    if delta is None:
        delta = {}

    def entry(asn: ASN) -> List[int]:
        found = delta.get(asn)
        if found is None:
            found = delta[asn] = [0, 0, 0, 0]
        return found

    # Tagging: every AS of the path, tagger when its own community is present.
    for asn in asns:
        if asn in uppers:
            entry(asn)[0] += 1
        else:
            entry(asn)[1] += 1
    # Forwarding: walk origin -> peer; a missing downstream community is
    # cleaner evidence, a present one is forward evidence for all upstreams.
    n = len(asns)
    for x in range(n - 1, 0, -1):
        if asns[x] not in uppers:
            entry(asns[x - 1])[3] += 1
        else:
            for j in range(x):
                entry(asns[j])[2] += 1
    return delta


def count_row_phase(prepared: Sequence[PreparedTuple]) -> RowDelta:
    """Summed per-AS deltas of a chunk of prepared tuples.

    Pure in *prepared*; chunks may be counted in any partition (including in
    worker processes) and merged with :meth:`CounterStore.apply_delta`.
    """
    delta: RowDelta = {}
    for item in prepared:
        row_tuple_delta(item, delta)
    return delta


def row_group_delta_packed(
    row: Sequence[int],
    hits: int,
    count: int,
    delta: Optional[Dict[int, List[int]]] = None,
) -> Dict[int, List[int]]:
    """Columnar twin of :func:`row_tuple_delta` over one counting group.

    The object kernel's forwarding pass is O(n²): for every *present*
    downstream community it walks all upstream positions.  Per position
    ``j`` that inner loop contributes exactly ``#{x > j : hits bit x set}``
    forward counts, so one right-to-left suffix count produces identical
    sums in O(n).  Multiplying by the group multiplicity folds all tuples
    sharing ``(row, hits)`` in one pass (contributions are commutative).
    """
    if delta is None:
        delta = {}

    def entry(index: int) -> List[int]:
        found = delta.get(index)
        if found is None:
            found = delta[index] = [0, 0, 0, 0]
        return found

    # Tagging: every position, tagger when its own community is present.
    for position in range(len(row)):
        if (hits >> position) & 1:
            entry(row[position])[0] += count
        else:
            entry(row[position])[1] += count
    # Forwarding: suffix-count of present downstream communities.
    present_downstream = 0
    for position in range(len(row) - 2, -1, -1):
        next_present = (hits >> (position + 1)) & 1
        present_downstream += next_present
        slot = entry(row[position])
        if present_downstream:
            slot[2] += present_downstream * count
        if not next_present:
            slot[3] += count
    return delta


def count_row_phase_packed(groups: Sequence[CountingGroup]) -> Dict[int, List[int]]:
    """Summed per-AS-index deltas of grouped columnar work units.

    Large :class:`~repro.core.matrix.GroupList` inputs take the vectorised
    bucket kernel; overflow groups and small inputs run the scalar loop.
    """
    matrix_of = getattr(groups, "matrix", None)
    if matrix_of is not None and len(groups) >= _matrix.MIN_MATRIX_GROUPS:
        matrix = matrix_of()
        if matrix is not None:
            delta = _matrix.count_row_matrix(matrix)
            for row, hits, count in matrix.overflow:
                row_group_delta_packed(row, hits, count, delta)
            return delta
    delta: Dict[int, List[int]] = {}
    for row, hits, count in groups:
        row_group_delta_packed(row, hits, count, delta)
    return delta


class RowInference:
    """Runs the row-based baseline over ``(path, comm)`` tuples."""

    def __init__(
        self, thresholds: Optional[Thresholds] = None, *, representation: str = "object"
    ) -> None:
        if representation not in REPRESENTATIONS:
            raise ValueError(f"unknown representation {representation!r}")
        self.thresholds = thresholds or Thresholds()
        self.representation = representation

    def run(self, tuples: Sequence[PathCommTuple]) -> ClassificationResult:
        """Infer classifications with the row-based counting rules."""
        if self.representation == "columnar":
            return self._run_columnar(tuples)
        store = CounterStore(self.thresholds)
        observed: Set[ASN] = set()

        prepared: List[PreparedTuple] = []
        for item in tuples:
            asns = item.path.asns
            observed.update(asns)
            prepared.append(prepare_tuple(item))

        store.apply_delta(count_row_phase(prepared))
        return ClassificationResult(store=store, observed_ases=observed, algorithm="row")

    def _run_columnar(self, tuples: Sequence[PathCommTuple]) -> ClassificationResult:
        """Same counting over the interned, packed representation."""
        table = TupleTable()
        batch = ColumnarBatch(table)
        for item in tuples:
            batch.add_tuple(item)
        packed = PackedCounterStore(self.thresholds, slots=table.as_count)
        packed.apply_delta(count_row_phase_packed(batch.counting_groups()))
        return ClassificationResult(
            store=packed.to_store(table.as_values()),
            observed_ases=batch.observed_ases(),
            algorithm="row",
        )
