"""The row-based baseline (paper Section 5.7, Listing 2).

The baseline processes one ``(path, comm)`` tuple at a time, without the
Cond1 / Cond2 safeguards:

* **tagging pass** -- for every AS on the path, count tagger evidence when a
  community carrying its ASN is present, silent evidence otherwise;
* **forwarding pass** -- walking the path from the origin towards the peer,
  when the community of the downstream neighbour ``A_{x+1}`` is missing the
  AS ``A_x`` receives cleaner evidence; when it is present every AS between
  the collector and ``A_{x+1}`` receives forward evidence (they all must
  have forwarded it).

The paper argues (and Section 6 shows) that this approach cannot distinguish
hidden behaviour from silence/cleaning and is therefore prone to
misclassification; it is included as the comparison baseline and exercised by
the ablation benchmark.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.bgp.announcement import PathCommTuple
from repro.bgp.asn import ASN
from repro.core.counters import CounterStore
from repro.core.results import ClassificationResult
from repro.core.thresholds import Thresholds


class RowInference:
    """Runs the row-based baseline over ``(path, comm)`` tuples."""

    def __init__(self, thresholds: Optional[Thresholds] = None) -> None:
        self.thresholds = thresholds or Thresholds()

    def run(self, tuples: Sequence[PathCommTuple]) -> ClassificationResult:
        """Infer classifications with the row-based counting rules."""
        store = CounterStore(self.thresholds)
        observed: Set[ASN] = set()

        prepared: List[Tuple[Tuple[ASN, ...], FrozenSet[ASN]]] = []
        for item in tuples:
            asns = item.path.asns
            observed.update(asns)
            prepared.append((asns, frozenset(item.communities.upper_fields())))

        # PHASE 1: tagging evidence for every AS of every path.
        for asns, uppers in prepared:
            for asn in asns:
                if asn in uppers:
                    store.count_tagger(asn)
                else:
                    store.count_silent(asn)

        # PHASE 2: forwarding evidence, walking each path origin -> peer.
        for asns, uppers in prepared:
            n = len(asns)
            for x in range(n - 1, 0, -1):  # x = n-1 .. 1 (1-based indices)
                downstream = asns[x]  # A_{x+1}
                if downstream not in uppers:
                    store.count_cleaner(asns[x - 1])
                else:
                    for j in range(x):
                        store.count_forward(asns[j])

        return ClassificationResult(store=store, observed_ases=observed, algorithm="row")
