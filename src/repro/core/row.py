"""The row-based baseline (paper Section 5.7, Listing 2).

The baseline processes one ``(path, comm)`` tuple at a time, without the
Cond1 / Cond2 safeguards:

* **tagging pass** -- for every AS on the path, count tagger evidence when a
  community carrying its ASN is present, silent evidence otherwise;
* **forwarding pass** -- walking the path from the origin towards the peer,
  when the community of the downstream neighbour ``A_{x+1}`` is missing the
  AS ``A_x`` receives cleaner evidence; when it is present every AS between
  the collector and ``A_{x+1}`` receives forward evidence (they all must
  have forwarded it).

Every tuple's contribution is independent of all counters, so the whole
algorithm is one commutative sum of per-tuple deltas: :func:`row_tuple_delta`
computes one tuple's contribution, :func:`count_row_phase` folds a chunk of
tuples, and disjoint chunks merge exactly (the property both the streaming
retraction path and the multi-process shard merge rely on).

The paper argues (and Section 6 shows) that this approach cannot distinguish
hidden behaviour from silence/cleaning and is therefore prone to
misclassification; it is included as the comparison baseline and exercised by
the ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.bgp.announcement import PathCommTuple
from repro.bgp.asn import ASN
from repro.core.column import PreparedTuple, prepare_tuple
from repro.core.counters import CounterStore
from repro.core.results import ClassificationResult
from repro.core.thresholds import Thresholds

#: Per-AS four-component ``[dt, ds, df, dc]`` counter deltas.
RowDelta = Dict[ASN, List[int]]


def row_tuple_delta(prepared: PreparedTuple, delta: Optional[RowDelta] = None) -> RowDelta:
    """The ``(t, s, f, c)`` contributions of one prepared tuple (order-free).

    Folds into *delta* in place when one is given (chunk counting), else
    returns a fresh mapping (per-tuple retraction in the streaming engine).
    """
    asns, uppers = prepared
    if delta is None:
        delta = {}

    def entry(asn: ASN) -> List[int]:
        found = delta.get(asn)
        if found is None:
            found = delta[asn] = [0, 0, 0, 0]
        return found

    # Tagging: every AS of the path, tagger when its own community is present.
    for asn in asns:
        if asn in uppers:
            entry(asn)[0] += 1
        else:
            entry(asn)[1] += 1
    # Forwarding: walk origin -> peer; a missing downstream community is
    # cleaner evidence, a present one is forward evidence for all upstreams.
    n = len(asns)
    for x in range(n - 1, 0, -1):
        if asns[x] not in uppers:
            entry(asns[x - 1])[3] += 1
        else:
            for j in range(x):
                entry(asns[j])[2] += 1
    return delta


def count_row_phase(prepared: Sequence[PreparedTuple]) -> RowDelta:
    """Summed per-AS deltas of a chunk of prepared tuples.

    Pure in *prepared*; chunks may be counted in any partition (including in
    worker processes) and merged with :meth:`CounterStore.apply_delta`.
    """
    delta: RowDelta = {}
    for item in prepared:
        row_tuple_delta(item, delta)
    return delta


class RowInference:
    """Runs the row-based baseline over ``(path, comm)`` tuples."""

    def __init__(self, thresholds: Optional[Thresholds] = None) -> None:
        self.thresholds = thresholds or Thresholds()

    def run(self, tuples: Sequence[PathCommTuple]) -> ClassificationResult:
        """Infer classifications with the row-based counting rules."""
        store = CounterStore(self.thresholds)
        observed: Set[ASN] = set()

        prepared: List[PreparedTuple] = []
        for item in tuples:
            asns = item.path.asns
            observed.update(asns)
            prepared.append(prepare_tuple(item))

        store.apply_delta(count_row_phase(prepared))
        return ClassificationResult(store=store, observed_ases=observed, algorithm="row")
