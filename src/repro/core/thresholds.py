"""Counting thresholds (paper Section 5.3).

An AS is classified ``tagger`` when the share of tagger evidence among all
tagging evidence reaches ``tagger_threshold`` (and analogously for the other
three classes).  The paper uses 99% throughout and shows in Section 6.3.1
(Figure 2) that results are not very sensitive to this choice; the ROC sweep
re-runs the inference for thresholds between 50% and 100%.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Thresholds:
    """The four classification thresholds, each in ``(0.5, 1.0]``."""

    tagger: float = 0.99
    silent: float = 0.99
    forward: float = 0.99
    cleaner: float = 0.99

    def __post_init__(self) -> None:
        for name in ("tagger", "silent", "forward", "cleaner"):
            value = getattr(self, name)
            if not 0.5 < value <= 1.0:
                raise ValueError(
                    f"{name} threshold must be in (0.5, 1.0], got {value}"
                )

    @classmethod
    def uniform(cls, value: float) -> "Thresholds":
        """All four thresholds set to the same *value* (Figure 2 sweep)."""
        return cls(tagger=value, silent=value, forward=value, cleaner=value)

    def with_tagging(self, value: float) -> "Thresholds":
        """Copy with only the tagging-side thresholds changed."""
        return replace(self, tagger=value, silent=value)

    def with_forwarding(self, value: float) -> "Thresholds":
        """Copy with only the forwarding-side thresholds changed."""
        return replace(self, forward=value, cleaner=value)


#: The paper's default configuration.
DEFAULT_THRESHOLDS = Thresholds()
