"""Interned columnar representation of sanitized ``(path, comm)`` tuples.

The object pipeline carries every tuple as an :class:`~repro.bgp.path.ASPath`
plus a :class:`~repro.bgp.community.CommunitySet` and answers the counting
kernels' membership questions (``A_x in output(A_1)``) with frozenset
lookups on boxed Python ints.  At millions of events per second that object
overhead dominates the runtime.

This module provides the columnar twin of that representation:

* :class:`TupleTable` interns each unique AS path and community set exactly
  once.  ASNs get dense indices into a flat ``array('Q')`` symbol table;
  paths are stored as packed ``array('Q')`` runs of AS indices with an
  offset index (one slice per path); community sets keep their upper-field
  sets.  For every distinct ``(path, comm)`` pair the table computes a
  **hits bitmask** once: bit ``p`` is set iff ``path[p]``'s ASN appears as
  an upper field of the community set.  Every membership test the counting
  kernels perform afterwards is a single shift-and-mask on that bitmask.
* :class:`ColumnarBatch` holds a batch of tuples as dense integer id pairs
  (``path_id``, ``comm_id``) and groups them into :data:`CountingGroup`
  rows — ``(as-index row, hits, multiplicity)`` — the form the packed
  kernels in :mod:`repro.core.column` / :mod:`repro.core.row` consume.

Because every counting phase is a pure function of ``(tuples, decisions)``
and all phase contributions are commutative sums, swapping the
representation cannot change a single output byte — the conformance tests
pin the columnar path against the object oracle tuple for tuple.
"""

from __future__ import annotations

from array import array
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.bgp.announcement import PathCommTuple
from repro.bgp.asn import ASN
from repro.bgp.community import CommunitySet
from repro.bgp.path import ASPath
from repro.core.matrix import GroupList

#: A tuple interned into a :class:`TupleTable`: ``(path_id, comm_id)``.
TupleRef = Tuple[int, int]

#: One unit of packed counting work: ``(as-index row, hits bitmask,
#: multiplicity)``.  Tuples sharing a path and a hits bitmask are counted
#: once and their contribution multiplied — the kernels never look at the
#: community set again.
CountingGroup = Tuple[Tuple[int, ...], int, int]

#: Aggregated multiplicities of one batch: ``(path_id, hits) -> count``.
GroupCounts = Dict[Tuple[int, int], int]


def _hits_bitmask(asns: Sequence[ASN], uppers: FrozenSet[ASN]) -> int:
    """Bit ``p`` set iff ``asns[p]`` appears as an upper field."""
    hits = 0
    for position, asn in enumerate(asns):
        if asn in uppers:
            hits |= 1 << position
    return hits


class TupleTable:
    """Append-only symbol tables interning paths, community sets, and ASNs.

    Ids are dense and assigned in first-intern order, so a table restored
    from :meth:`state_dict` output assigns identical ids to identical
    inputs — the property the checkpoint round-trip relies on.
    """

    __slots__ = (
        "_as_ids",
        "_as_values",
        "_path_ids",
        "_path_rows",
        "_path_objs",
        "_path_offsets",
        "_path_data",
        "_comm_ids",
        "_comm_sets",
        "_comm_uppers",
        "_pair_hits",
        "max_path_length",
    )

    def __init__(self) -> None:
        self._as_ids: Dict[ASN, int] = {}
        self._as_values: "array[int]" = array("Q")
        self._path_ids: Dict[Tuple[ASN, ...], int] = {}
        #: Per-path tuple of AS indices (the kernels' row form).
        self._path_rows: List[Tuple[int, ...]] = []
        #: Per-path interned :class:`ASPath` (reconstruction without rebuild).
        self._path_objs: List[ASPath] = []
        #: Packed persisted form: offsets into one flat AS-index run array.
        self._path_offsets: "array[int]" = array("Q", [0])
        self._path_data: "array[int]" = array("Q")
        self._comm_ids: Dict[CommunitySet, int] = {}
        self._comm_sets: List[CommunitySet] = []
        self._comm_uppers: List[FrozenSet[ASN]] = []
        #: ``(path_id, comm_id) -> hits`` bitmask cache (computed once).
        self._pair_hits: Dict[TupleRef, int] = {}
        self.max_path_length = 0

    # -- sizes -------------------------------------------------------------------------
    @property
    def as_count(self) -> int:
        """Number of distinct ASNs interned so far."""
        return len(self._as_values)

    @property
    def path_count(self) -> int:
        """Number of distinct paths interned so far."""
        return len(self._path_rows)

    @property
    def comm_count(self) -> int:
        """Number of distinct community sets interned so far."""
        return len(self._comm_sets)

    def __len__(self) -> int:
        """Number of distinct ``(path, comm)`` pairs seen."""
        return len(self._pair_hits)

    # -- interning ---------------------------------------------------------------------
    def intern_asn(self, asn: ASN) -> int:
        """Dense index of *asn*, assigned on first sight."""
        index = self._as_ids.get(asn)
        if index is None:
            index = self._as_ids[asn] = len(self._as_values)
            self._as_values.append(asn)
        return index

    def intern_path(self, path: ASPath) -> int:
        """Id of *path*'s ASN sequence, interning it on first sight."""
        asns = path.asns
        path_id = self._path_ids.get(asns)
        if path_id is None:
            path_id = self._intern_path_asns(asns, path)
        return path_id

    def _intern_path_asns(self, asns: Tuple[ASN, ...], path: Optional[ASPath]) -> int:
        path_id = self._path_ids[asns] = len(self._path_rows)
        # Inlined intern_asn: this loop runs once per ASN of every new path
        # and is the hottest part of interning.
        as_ids = self._as_ids
        as_values = self._as_values
        indices = []
        for asn in asns:
            index = as_ids.get(asn)
            if index is None:
                index = as_ids[asn] = len(as_values)
                as_values.append(asn)
            indices.append(index)
        row = tuple(indices)
        self._path_rows.append(row)
        self._path_objs.append(path if path is not None else ASPath(asns))
        self._path_data.extend(row)
        self._path_offsets.append(len(self._path_data))
        if len(asns) > self.max_path_length:
            self.max_path_length = len(asns)
        return path_id

    def intern_comm(self, communities: CommunitySet) -> int:
        """Id of *communities*, interning it on first sight."""
        comm_id = self._comm_ids.get(communities)
        if comm_id is None:
            comm_id = self._comm_ids[communities] = len(self._comm_sets)
            self._comm_sets.append(communities)
            self._comm_uppers.append(communities.upper_fields())
        return comm_id

    def intern(self, path: ASPath, communities: CommunitySet) -> TupleRef:
        """Intern one ``(path, comm)`` pair; computes its hits bitmask once."""
        ref = (self.intern_path(path), self.intern_comm(communities))
        if ref not in self._pair_hits:
            self._pair_hits[ref] = _hits_bitmask(
                self._path_objs[ref[0]].asns, self._comm_uppers[ref[1]]
            )
        return ref

    def intern_tuple(self, item: PathCommTuple) -> TupleRef:
        """Intern one :class:`PathCommTuple`."""
        return self.intern(item.path, item.communities)

    # -- lookup ------------------------------------------------------------------------
    def asn_of(self, index: int) -> ASN:
        """The ASN behind dense AS index *index*."""
        return self._as_values[index]

    def as_values(self) -> Sequence[ASN]:
        """Dense index -> ASN symbol table (index order)."""
        return self._as_values

    def path_row(self, path_id: int) -> Tuple[int, ...]:
        """The AS-index row of *path_id* (the kernels' path form)."""
        return self._path_rows[path_id]

    def path_of(self, path_id: int) -> ASPath:
        """The interned :class:`ASPath` behind *path_id*."""
        return self._path_objs[path_id]

    def comm_of(self, comm_id: int) -> CommunitySet:
        """The interned :class:`CommunitySet` behind *comm_id*."""
        return self._comm_sets[comm_id]

    def hits_of(self, path_id: int, comm_id: int) -> int:
        """The hits bitmask of an interned pair (cached)."""
        ref = (path_id, comm_id)
        hits = self._pair_hits.get(ref)
        if hits is None:
            hits = self._pair_hits[ref] = _hits_bitmask(
                self._path_objs[path_id].asns, self._comm_uppers[comm_id]
            )
        return hits

    def tuple_of(self, ref: TupleRef) -> PathCommTuple:
        """Reconstruct the :class:`PathCommTuple` behind *ref*."""
        return PathCommTuple(self._path_objs[ref[0]], self._comm_sets[ref[1]])

    def path_asns_of(self, path_id: int) -> Tuple[ASN, ...]:
        """The ASN sequence of *path_id*."""
        return self._path_objs[path_id].asns

    # -- (de)serialisation (checkpointing) ---------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Plain-data snapshot; ids are preserved by the append order."""
        return {
            "as_values": array("Q", self._as_values),
            "path_offsets": array("Q", self._path_offsets),
            "path_data": array("Q", self._path_data),
            "comm_sets": list(self._comm_sets),
            "max_path_length": self.max_path_length,
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore the table **in place** from :meth:`state_dict` output.

        In-place so every holder of this table instance (shard workers, the
        incremental classifier) observes the restored contents.
        """
        as_values = state["as_values"]
        offsets = state["path_offsets"]
        data = state["path_data"]
        comm_sets = state["comm_sets"]
        self.__init__()  # type: ignore[misc]
        self._as_values = array("Q", as_values)  # type: ignore[arg-type]
        self._as_ids = {asn: index for index, asn in enumerate(self._as_values)}
        self._path_offsets = array("Q", offsets)  # type: ignore[arg-type]
        self._path_data = array("Q", data)  # type: ignore[arg-type]
        for path_id in range(len(self._path_offsets) - 1):
            start, end = self._path_offsets[path_id], self._path_offsets[path_id + 1]
            row = tuple(self._path_data[start:end])
            asns = tuple(self._as_values[index] for index in row)
            self._path_rows.append(row)
            self._path_objs.append(ASPath(asns))
            self._path_ids[asns] = path_id
            if len(asns) > self.max_path_length:
                self.max_path_length = len(asns)
        for comm_id, communities in enumerate(comm_sets):  # type: ignore[arg-type]
            self._comm_ids[communities] = comm_id
            self._comm_sets.append(communities)
            self._comm_uppers.append(communities.upper_fields())
        # Hits bitmasks are derived data; recomputed lazily on demand.
        self.max_path_length = state["max_path_length"]  # type: ignore[assignment]

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "TupleTable":
        """Rebuild a table from :meth:`state_dict` output."""
        table = cls()
        table.load_state(state)
        return table


class ColumnarBatch:
    """A batch of interned tuples as dense integer id columns.

    The wire/pickle form is two flat ``array('I')`` columns, which is what
    makes shipping batches between processes cheap; :meth:`counting_groups`
    lowers the batch into the grouped form the packed kernels consume.
    """

    __slots__ = ("table", "_path_ids", "_comm_ids")

    def __init__(self, table: TupleTable, refs: Iterable[TupleRef] = ()) -> None:
        self.table = table
        self._path_ids: "array[int]" = array("I")
        self._comm_ids: "array[int]" = array("I")
        self.extend(refs)

    def append(self, ref: TupleRef) -> None:
        """Append one interned tuple to the batch."""
        self._path_ids.append(ref[0])
        self._comm_ids.append(ref[1])

    def extend(self, refs: Iterable[TupleRef]) -> None:
        """Append many interned tuples."""
        for ref in refs:
            self.append(ref)

    def add_tuple(self, item: PathCommTuple) -> TupleRef:
        """Intern *item* into the table and append it."""
        ref = self.table.intern_tuple(item)
        self.append(ref)
        return ref

    def __len__(self) -> int:
        return len(self._path_ids)

    def refs(self) -> Iterator[TupleRef]:
        """The contained ``(path_id, comm_id)`` pairs, in append order."""
        return zip(self._path_ids, self._comm_ids)

    def group_counts(self) -> GroupCounts:
        """Aggregate the batch into ``(path_id, hits) -> multiplicity``."""
        table = self.table
        counts: GroupCounts = {}
        for path_id, comm_id in zip(self._path_ids, self._comm_ids):
            key = (path_id, table.hits_of(path_id, comm_id))
            count = counts.get(key)
            counts[key] = 1 if count is None else count + 1
        return counts

    def counting_groups(self) -> List[CountingGroup]:
        """The grouped kernel form of this batch."""
        return materialize_groups(self.table, self.group_counts())

    def observed_ases(self) -> Set[ASN]:
        """Every ASN appearing on any contained path."""
        table = self.table
        observed: Set[ASN] = set()
        for path_id in set(self._path_ids):
            observed.update(table.path_asns_of(path_id))
        return observed

    def max_path_length(self) -> int:
        """Longest path length among the contained tuples."""
        table = self.table
        longest = 0
        for path_id in set(self._path_ids):
            length = len(table.path_row(path_id))
            if length > longest:
                longest = length
        return longest

    # -- (de)serialisation -------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Plain-data snapshot (ids are table-relative)."""
        return {
            "path_ids": array("I", self._path_ids),
            "comm_ids": array("I", self._comm_ids),
        }

    @classmethod
    def from_state(cls, table: TupleTable, state: Dict[str, object]) -> "ColumnarBatch":
        """Rebuild a batch against the table its ids were minted by."""
        batch = cls(table)
        batch._path_ids = array("I", state["path_ids"])  # type: ignore[arg-type]
        batch._comm_ids = array("I", state["comm_ids"])  # type: ignore[arg-type]
        return batch


def materialize_groups(table: TupleTable, counts: GroupCounts) -> List[CountingGroup]:
    """Lower ``(path_id, hits) -> count`` aggregates into kernel groups.

    Returns a :class:`~repro.core.matrix.GroupList` so large group sets can
    take the vectorised counting kernels (the matrix form is built lazily
    and cached on the list).
    """
    path_row = table.path_row
    return GroupList(
        (path_row(path_id), hits, count) for (path_id, hits), count in counts.items()
    )


def merge_group_counts(target: GroupCounts, extra: GroupCounts) -> None:
    """Fold *extra* multiplicities into *target* in place (commutative)."""
    get = target.get
    for key, count in extra.items():
        existing = get(key)
        target[key] = count if existing is None else existing + count
