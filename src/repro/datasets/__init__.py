"""Dataset construction.

* :mod:`repro.datasets.synthetic` -- builds the complete synthetic Internet
  (topology, collector projects, routing, realistic community usage) that
  stands in for the paper's May 2021 collector data,
* :mod:`repro.datasets.stats` -- the Table 1 dataset-overview statistics.
"""

from repro.datasets.synthetic import SyntheticConfig, SyntheticInternet
from repro.datasets.stats import DatasetStatistics, compute_statistics

__all__ = [
    "SyntheticConfig",
    "SyntheticInternet",
    "DatasetStatistics",
    "compute_statistics",
]
