"""Dataset overview statistics (paper Table 1).

Given the day archives of one collector project (or of the aggregate), this
module computes the same rows the paper reports: raw entry counts, unique
``(path, comm)`` tuples, AS counts before and after cleaning (with leaf and
32-bit breakdowns), collector peers, community counts (total, large, unique),
and the unique upper-field counts with and without private / stray
communities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.bgp.asn import ASN, ASNRegistry, is_32bit_only
from repro.bgp.community import CommunitySet
from repro.bgp.path import ASPath
from repro.collectors.archive import DayArchive
from repro.sanitize.filters import Sanitizer
from repro.sanitize.sources import CommunitySource, classify_community


@dataclass
class DatasetStatistics:
    """The Table 1 column of one dataset."""

    name: str
    entries_total: int = 0
    rib_entries: int = 0
    unique_tuples: int = 0
    as_numbers: int = 0
    as_after_cleaning: int = 0
    leaf_ases: int = 0
    ases_32bit: int = 0
    collector_peers: int = 0
    communities_total: int = 0
    communities_large: int = 0
    unique_communities: int = 0
    unique_large_communities: int = 0
    unique_upper_regular: int = 0
    unique_upper_large: int = 0
    unique_upper_both: int = 0
    unique_upper_wo_private: int = 0
    unique_upper_wo_stray: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Flat dictionary in the paper's row order."""
        return {
            "Entries total": self.entries_total,
            "incl. RIB entries": self.rib_entries,
            "Uniq. (path, comm)": self.unique_tuples,
            "AS numbers": self.as_numbers,
            "After cleaning": self.as_after_cleaning,
            "incl. Leaf ASes": self.leaf_ases,
            "incl. 32-bit ASes": self.ases_32bit,
            "Collector peers": self.collector_peers,
            "Communities": self.communities_total,
            "incl. large": self.communities_large,
            "Unique communities": self.unique_communities,
            "incl. large (unique)": self.unique_large_communities,
            "Uniq. upper field (regular)": self.unique_upper_regular,
            "Uniq. upper field (large)": self.unique_upper_large,
            "Uniq. upper field (both)": self.unique_upper_both,
            "w/o private": self.unique_upper_wo_private,
            "w/o stray": self.unique_upper_wo_stray,
        }


def compute_statistics(
    name: str,
    archives: Sequence[DayArchive],
    *,
    registry: Optional[ASNRegistry] = None,
    sanitizer: Optional[Sanitizer] = None,
) -> DatasetStatistics:
    """Compute the Table 1 statistics for one dataset.

    *archives* may come from a single project or from several projects (the
    aggregate column); entries and communities are counted across all of
    them, while unique counts are deduplicated globally.
    """
    stats = DatasetStatistics(name=name)
    sanitizer = sanitizer or Sanitizer(asn_registry=registry)

    unique_tuples: Set[Tuple[ASPath, CommunitySet]] = set()
    raw_ases: Set[ASN] = set()
    clean_ases: Set[ASN] = set()
    transit_ases: Set[ASN] = set()
    peers: Set[ASN] = set()
    unique_regular: Set = set()
    unique_large: Set = set()
    upper_regular: Set[ASN] = set()
    upper_large: Set[ASN] = set()
    upper_non_private: Set[ASN] = set()
    upper_non_stray: Set[ASN] = set()

    for archive in archives:
        stats.entries_total += archive.total_entries
        stats.rib_entries += archive.rib_entry_count
        for observation in archive.observations:
            raw_ases.update(observation.path.asns)
            peers.add(observation.peer_asn)

            clean_path = sanitizer.sanitize_path(observation.path, observation.peer_asn)
            if clean_path is None:
                continue
            clean_ases.update(clean_path.asns)
            if len(clean_path) >= 2:
                transit_ases.update(clean_path.asns[:-1])
            unique_tuples.add((clean_path, observation.communities))

            # Per-entry community accounting mirrors the paper: every
            # occurrence counts towards the totals, uniqueness is global.
            for community in observation.communities:
                stats.communities_total += 1
                if community.is_large:
                    stats.communities_large += 1
                    unique_large.add(community)
                    upper_large.add(community.upper)
                else:
                    unique_regular.add(community)
                    upper_regular.add(community.upper)
                source = classify_community(community, clean_path, registry=registry)
                if source is not CommunitySource.PRIVATE:
                    upper_non_private.add(community.upper)
                    if source is not CommunitySource.STRAY:
                        upper_non_stray.add(community.upper)

    stats.unique_tuples = len(unique_tuples)
    stats.as_numbers = len(raw_ases)
    stats.as_after_cleaning = len(clean_ases)
    stats.leaf_ases = len(clean_ases - transit_ases)
    stats.ases_32bit = sum(1 for asn in clean_ases if is_32bit_only(asn))
    stats.collector_peers = len(peers)
    stats.unique_communities = len(unique_regular) + len(unique_large)
    stats.unique_large_communities = len(unique_large)
    stats.unique_upper_regular = len(upper_regular)
    stats.unique_upper_large = len(upper_large)
    stats.unique_upper_both = len(upper_regular | upper_large)
    stats.unique_upper_wo_private = len(upper_non_private)
    stats.unique_upper_wo_stray = len(upper_non_stray)
    return stats


def format_table(columns: Sequence[DatasetStatistics]) -> str:
    """Render several dataset columns side by side (the Table 1 layout)."""
    if not columns:
        return ""
    rows = list(columns[0].as_dict().keys())
    header = f"{'Input data':<30}" + "".join(f"{c.name:>14}" for c in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        values = "".join(f"{c.as_dict()[row]:>14,}" for c in columns)
        lines.append(f"{row:<30}" + values)
    return "\n".join(lines)
