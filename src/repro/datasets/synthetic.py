"""The synthetic Internet used in place of the May 2021 collector data.

Bundles every substrate needed by the Section 7 style analyses: an
Internet-like topology, the four collector projects, valley-free routes from
every collector peer, a realistic community-usage role model, and the
propagation machinery that turns those ingredients into per-day collector
archives and ``(path, comm)`` tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.announcement import PathCommTuple, RouteObservation
from repro.bgp.asn import ASN
from repro.bgp.path import ASPath
from repro.collectors.archive import ArchiveConfig, CollectorArchive, DayArchive
from repro.collectors.collector import CollectorProject
from repro.collectors.projects import DEFAULT_PROJECT_NAMES, build_default_projects
from repro.topology.cone import CustomerCones
from repro.topology.generator import InternetTopologyGenerator, Topology, TopologyConfig
from repro.topology.routing import RoutingEngine, ValleyFreePath
from repro.usage.propagation import CommunityPropagator, TaggerCommunityPlan
from repro.usage.roles import RoleAssignment
from repro.usage.scenarios import assign_realistic_roles

#: The aggregate of RIPE, RouteViews, and Isolario (the paper's d_May21).
AGGREGATE_NAME = "dMay21"
AGGREGATE_PROJECTS: Tuple[str, ...] = ("ripe", "routeviews", "isolario")


@dataclass
class SyntheticConfig:
    """Scale and seeding of the synthetic Internet."""

    topology: TopologyConfig = field(default_factory=TopologyConfig)
    #: Fraction of ASes that peer with the RIPE-like project (others scale off it).
    peer_fraction: float = 0.05
    archive: ArchiveConfig = field(default_factory=ArchiveConfig)
    roles_seed: int = 11
    projects_seed: int = 7

    @classmethod
    def small(cls, *, seed: int = 1) -> "SyntheticConfig":
        """A small configuration for unit and integration tests."""
        return cls(topology=TopologyConfig.scaled(0.25, seed=seed), peer_fraction=0.08)

    @classmethod
    def default(cls, *, seed: int = 1) -> "SyntheticConfig":
        """The default experiment scale (≈2,000 ASes, ≈100 collector peers)."""
        return cls(topology=TopologyConfig(seed=seed), peer_fraction=0.05)

    @classmethod
    def large(cls, *, seed: int = 1) -> "SyntheticConfig":
        """A larger configuration exercised by the benchmark harness."""
        return cls(topology=TopologyConfig.scaled(2.5, seed=seed), peer_fraction=0.04)


@dataclass
class SyntheticInternet:
    """Everything the Section 7 experiments need, built once and reused."""

    config: SyntheticConfig
    topology: Topology
    projects: Dict[str, CollectorProject]
    roles: RoleAssignment
    propagator: CommunityPropagator
    paths_by_peer: Dict[ASN, Dict[ASN, ValleyFreePath]]

    # -- construction -----------------------------------------------------------------
    @classmethod
    def build(cls, config: Optional[SyntheticConfig] = None) -> "SyntheticInternet":
        """Generate the full synthetic Internet from a configuration."""
        config = config or SyntheticConfig.default()
        topology = InternetTopologyGenerator(config.topology).generate()
        projects = build_default_projects(
            topology, seed=config.projects_seed, peer_fraction=config.peer_fraction
        )
        all_peers = sorted({asn for project in projects.values() for asn in project.peer_asns()})
        engine = RoutingEngine(topology)
        paths_by_peer = engine.best_paths(all_peers)
        roles = assign_realistic_roles(topology, seed=config.roles_seed)
        propagator = CommunityPropagator(
            roles,
            relationships=topology.relationships,
            plan=TaggerCommunityPlan(seed=config.roles_seed),
        )
        return cls(
            config=config,
            topology=topology,
            projects=projects,
            roles=roles,
            propagator=propagator,
            paths_by_peer=paths_by_peer,
        )

    # -- accessors ----------------------------------------------------------------------
    def collector_peers(self, project_names: Optional[Sequence[str]] = None) -> List[ASN]:
        """The distinct collector peers of the given projects (default: all)."""
        names = project_names or list(self.projects)
        peers: Set[ASN] = set()
        for name in names:
            peers.update(self.projects[name].peer_asns())
        return sorted(peers)

    def project_names(self, include_pch: bool = True) -> List[str]:
        """Project names in the paper's reporting order."""
        names = [name for name in DEFAULT_PROJECT_NAMES if name in self.projects]
        if not include_pch:
            names = [name for name in names if name != "pch"]
        return names

    def cones(self) -> CustomerCones:
        """Customer cones over the topology (Figure 6)."""
        return CustomerCones(self.topology.relationships, self.topology.asns())

    # -- (path, comm) tuples -----------------------------------------------------------------
    def paths_for_peers(self, peers: Iterable[ASN]) -> List[ASPath]:
        """Every best path observed by the given peers."""
        paths: List[ASPath] = []
        for peer in peers:
            per_origin = self.paths_by_peer.get(peer, {})
            paths.extend(route.path for route in per_origin.values())
        return paths

    def tuples_for_project(self, name: str) -> List[PathCommTuple]:
        """Unique ``(path, comm)`` tuples of one collector project."""
        return self.tuples_for_peers(self.projects[name].peer_asns())

    def tuples_for_aggregate(self) -> List[PathCommTuple]:
        """Unique tuples of the aggregated RIPE+RouteViews+Isolario dataset."""
        return self.tuples_for_peers(self.collector_peers(list(AGGREGATE_PROJECTS)))

    def tuples_for_peers(self, peers: Iterable[ASN]) -> List[PathCommTuple]:
        """Unique tuples observed by an arbitrary peer set."""
        seen: Set[Tuple[ASPath, object]] = set()
        result: List[PathCommTuple] = []
        for peer in sorted(set(peers)):
            per_origin = self.paths_by_peer.get(peer, {})
            for route in per_origin.values():
                communities = self.propagator.output(route.path)
                key = (route.path, communities)
                if key in seen:
                    continue
                seen.add(key)
                result.append(PathCommTuple(route.path, communities))
        return result

    # -- per-day archives -----------------------------------------------------------------------
    def archive_for(self, project_name: str, *, config: Optional[ArchiveConfig] = None) -> CollectorArchive:
        """A :class:`CollectorArchive` generator for one project."""
        return CollectorArchive(
            self.topology,
            self.projects[project_name],
            self.paths_by_peer,
            self.propagator,
            config=config or self.config.archive,
        )

    def day_archives(self, project_names: Sequence[str], days: int = 1) -> Dict[str, List[DayArchive]]:
        """Per-project day archives for the first *days* days."""
        return {
            name: self.archive_for(name).generate_days(days) for name in project_names
        }

    def observations_for_day(self, project_names: Sequence[str], day: int = 0) -> List[RouteObservation]:
        """All observations of the given projects for one day."""
        observations: List[RouteObservation] = []
        for name in project_names:
            observations.extend(self.archive_for(name).generate_day(day).observations)
        return observations
