"""Evaluation harness.

Scores inference results against ground truth and computes every analysis
the paper's evaluation section reports:

* :mod:`repro.eval.metrics` -- precision/recall and confusion matrices with
  hidden/leaf rows (Tables 2, 5, 6),
* :mod:`repro.eval.roc` -- threshold sweeps and ROC curves (Figure 2),
* :mod:`repro.eval.stability` -- incremental-day stability and longitudinal
  class counts (Figures 3 and 4),
* :mod:`repro.eval.characterization` -- customer-cone CDFs per class and
  community-type counts at peer ASes (Figures 5 and 6),
* :mod:`repro.eval.peering` -- PEERING-testbed style active validation
  (Table 4).
"""

from repro.eval.metrics import (
    ConfusionMatrix,
    PrecisionRecall,
    ScenarioEvaluation,
    evaluate_scenario,
)
from repro.eval.roc import ROCPoint, threshold_sweep
from repro.eval.stability import IncrementalDayAnalysis, LongitudinalPoint
from repro.eval.characterization import (
    ConeDistribution,
    cone_cdf_by_class,
    peer_community_types,
)
from repro.eval.peering import PeeringExperiment, PeeringValidationResult
from repro.eval.report import ASReport, build_as_report, summarize_run

__all__ = [
    "ConfusionMatrix",
    "PrecisionRecall",
    "ScenarioEvaluation",
    "evaluate_scenario",
    "ROCPoint",
    "threshold_sweep",
    "IncrementalDayAnalysis",
    "LongitudinalPoint",
    "ConeDistribution",
    "cone_cdf_by_class",
    "peer_community_types",
    "PeeringExperiment",
    "PeeringValidationResult",
    "ASReport",
    "build_as_report",
    "summarize_run",
]
