"""AS characterisation (paper Sections 7.2 and 7.3, Figures 5 and 6).

* :func:`peer_community_types` counts, for every fully classified collector
  peer, how many peer / foreign / stray / private communities appear in its
  exported community sets -- the data behind Figure 5 and the paper's
  consistency check that e.g. silent peers show (almost) no peer communities.
* :func:`cone_cdf_by_class` produces the customer-cone-size CDFs per inferred
  tagging and forwarding class -- Figure 6, which shows that taggers,
  forwarders, and cleaners are predominantly large networks while silent and
  unclassified ASes sit at the edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.bgp.announcement import PathCommTuple
from repro.bgp.asn import ASN
from repro.core.classes import ForwardingClass, TaggingClass
from repro.core.results import ClassificationResult
from repro.sanitize.sources import CommunitySource, classify_community
from repro.topology.cone import CustomerCones


# ---------------------------------------------------------------------------
# Figure 5: community types at fully classified peer ASes
# ---------------------------------------------------------------------------

@dataclass
class PeerCommunityProfile:
    """Community-type counts of one collector peer."""

    peer: ASN
    classification: str
    counts: Dict[CommunitySource, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """Total communities observed for this peer."""
        return sum(self.counts.values())

    def count(self, source: CommunitySource) -> int:
        """Communities of one source group."""
        return self.counts.get(source, 0)


def peer_community_types(
    tuples: Iterable[PathCommTuple],
    result: ClassificationResult,
    *,
    registry=None,
) -> Dict[str, List[PeerCommunityProfile]]:
    """Count community types at fully classified collector peers.

    Returns one list of per-peer profiles per full classification code
    (``tf``, ``tc``, ``sf``, ``sc``), each ordered by total community count
    (the x-axis ordering of Figure 5).
    """
    fully = result.fully_classified_ases()
    profiles: Dict[ASN, PeerCommunityProfile] = {}
    for item in tuples:
        peer = item.peer
        classification = fully.get(peer)
        if classification is None:
            continue
        profile = profiles.get(peer)
        if profile is None:
            profile = PeerCommunityProfile(
                peer=peer,
                classification=classification.code,
                counts={source: 0 for source in CommunitySource},
            )
            profiles[peer] = profile
        for community in item.communities:
            source = classify_community(community, item.path, registry=registry)
            profile.counts[source] += 1

    grouped: Dict[str, List[PeerCommunityProfile]] = {"tf": [], "tc": [], "sf": [], "sc": []}
    for profile in profiles.values():
        grouped.setdefault(profile.classification, []).append(profile)
    for code in grouped:
        grouped[code].sort(key=lambda p: p.total)
    return grouped


# ---------------------------------------------------------------------------
# Figure 6: customer cone CDFs per inferred class
# ---------------------------------------------------------------------------

@dataclass
class ConeDistribution:
    """The customer-cone-size distribution of one inferred class."""

    label: str
    sizes: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.sizes)

    def cdf(self) -> List[Tuple[int, float]]:
        """``(size, P[X <= size])`` points of the empirical CDF."""
        if not self.sizes:
            return []
        ordered = sorted(self.sizes)
        total = len(ordered)
        points: List[Tuple[int, float]] = []
        for index, size in enumerate(ordered, start=1):
            if points and points[-1][0] == size:
                points[-1] = (size, index / total)
            else:
                points.append((size, index / total))
        return points

    def proportion_leq(self, size: int) -> float:
        """``P[cone size <= size]`` (e.g. share of leaf ASes at size 1)."""
        if not self.sizes:
            return 0.0
        return sum(1 for s in self.sizes if s <= size) / len(self.sizes)

    def proportion_greater(self, size: int) -> float:
        """``P[cone size > size]``."""
        return 1.0 - self.proportion_leq(size)

    def median(self) -> float:
        """Median cone size."""
        if not self.sizes:
            return 0.0
        ordered = sorted(self.sizes)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return float(ordered[mid])
        return (ordered[mid - 1] + ordered[mid]) / 2.0


def cone_cdf_by_class(
    result: ClassificationResult,
    cones: CustomerCones,
) -> Dict[str, Dict[str, ConeDistribution]]:
    """Customer-cone CDFs per inferred tagging and forwarding class.

    Returns ``{"tagging": {...}, "forwarding": {...}}`` where the inner
    dictionaries are keyed by class name (``tagger``, ``silent``,
    ``undecided``, ``none`` and ``forward``, ``cleaner``, ``undecided``,
    ``none``).
    """
    tagging: Dict[str, ConeDistribution] = {
        cls.name.lower(): ConeDistribution(cls.name.lower()) for cls in TaggingClass
    }
    forwarding: Dict[str, ConeDistribution] = {
        cls.name.lower(): ConeDistribution(cls.name.lower()) for cls in ForwardingClass
    }
    for asn in result.observed_ases:
        size = cones.cone_size(asn)
        classification = result.classification_of(asn)
        tagging[classification.tagging.name.lower()].sizes.append(size)
        forwarding[classification.forwarding.name.lower()].sizes.append(size)
    return {"tagging": tagging, "forwarding": forwarding}
