"""Scoring inference results against ground truth (Tables 2, 5, 6).

Two views are provided:

* :class:`ConfusionMatrix` -- assigned roles (split into consistent,
  selective, hidden, and leaf groups) versus inferred classes, exactly the
  shape of the appendix Tables 5 and 6;
* :class:`PrecisionRecall` -- the paper's summary metrics: precision over
  decided inferences (a selective tagger inferred as tagger counts as
  correct -- it *is* a tagger), and recall over the consistent, visible
  behaviours only ("not selective, hidden or missing"), with undecided and
  none counted as false negatives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.bgp.asn import ASN
from repro.core.classes import ForwardingClass, TaggingClass
from repro.core.results import ClassificationResult
from repro.usage.scenarios import GroundTruthDataset

#: Column order of the confusion matrices (classification result).
TAGGING_COLUMNS: Tuple[TaggingClass, ...] = (
    TaggingClass.TAGGER,
    TaggingClass.SILENT,
    TaggingClass.UNDECIDED,
    TaggingClass.NONE,
)
FORWARDING_COLUMNS: Tuple[ForwardingClass, ...] = (
    ForwardingClass.FORWARD,
    ForwardingClass.CLEANER,
    ForwardingClass.UNDECIDED,
    ForwardingClass.NONE,
)


@dataclass
class ConfusionMatrix:
    """Assigned-role rows versus inferred-class columns.

    ``rows`` maps a row label (e.g. ``"tagger"``, ``"silent (hidden)"``,
    ``"forward (leaf)"``) to a mapping of column label to count.
    """

    kind: str  # "tagging" or "forwarding"
    rows: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def add(self, row: str, column: str, count: int = 1) -> None:
        """Increment one cell."""
        self.rows.setdefault(row, {})[column] = self.rows.get(row, {}).get(column, 0) + count

    def cell(self, row: str, column: str) -> int:
        """Read one cell (0 when absent)."""
        return self.rows.get(row, {}).get(column, 0)

    def row_total(self, row: str) -> int:
        """Sum of one row."""
        return sum(self.rows.get(row, {}).values())

    def column_labels(self) -> List[str]:
        """The column labels in reporting order."""
        columns = TAGGING_COLUMNS if self.kind == "tagging" else FORWARDING_COLUMNS
        return [c.name.lower() for c in columns]

    def to_text(self) -> str:
        """Human-readable rendering of the matrix."""
        columns = self.column_labels()
        width = max([len(r) for r in self.rows] + [14])
        header = " " * (width + 2) + "  ".join(f"{c:>10}" for c in columns)
        lines = [header]
        for row, cells in self.rows.items():
            values = "  ".join(f"{cells.get(c, 0):>10}" for c in columns)
            lines.append(f"{row:<{width}}  {values}")
        return "\n".join(lines)


@dataclass(frozen=True)
class PrecisionRecall:
    """Precision and recall of one behaviour dimension."""

    precision: float
    recall: float
    true_positives: int
    false_positives: int
    false_negatives: int

    def as_dict(self) -> Dict[str, float]:
        """Flat dict for reporting."""
        return {
            "precision": self.precision,
            "recall": self.recall,
            "tp": self.true_positives,
            "fp": self.false_positives,
            "fn": self.false_negatives,
        }


@dataclass
class ScenarioEvaluation:
    """Full evaluation of one inference run against one ground-truth dataset."""

    scenario: str
    tagging: PrecisionRecall
    forwarding: PrecisionRecall
    tagging_matrix: ConfusionMatrix
    forwarding_matrix: ConfusionMatrix
    full_class_counts: Dict[str, int]
    partial_tagging_counts: Dict[str, int]
    none_undecided_counts: Dict[str, int]

    def table2_row(self) -> Dict[str, object]:
        """The scenario's row of Table 2 as a flat dictionary."""
        row: Dict[str, object] = {
            "scenario": self.scenario,
            "tagging_recall": round(self.tagging.recall, 2),
            "tagging_precision": round(self.tagging.precision, 2),
            "forwarding_recall": round(self.forwarding.recall, 2),
            "forwarding_precision": round(self.forwarding.precision, 2),
        }
        row.update({k: v for k, v in self.full_class_counts.items()})
        row.update(self.partial_tagging_counts)
        row.update(self.none_undecided_counts)
        return row


def _tagging_row_label(dataset: GroundTruthDataset, asn: ASN) -> str:
    """The Table 5 row an AS belongs to (role + hidden/selective annotation)."""
    role = dataset.roles.get(asn)
    if role is None:
        return "unknown"
    if role.is_selective_tagger:
        base = "selective"
    else:
        base = "tagger" if role.is_tagger else "silent"
    if asn not in dataset.visibility.tagging_visible:
        return f"{base} (hidden)"
    return base


def _forwarding_row_label(dataset: GroundTruthDataset, asn: ASN) -> str:
    """The Table 6 row an AS belongs to (role + hidden/leaf annotation)."""
    role = dataset.roles.get(asn)
    if role is None:
        return "unknown"
    base = "forward" if role.is_forward else "cleaner"
    if asn in dataset.visibility.leaf_ases:
        return f"{base} (leaf)"
    if asn not in dataset.visibility.forwarding_visible:
        return f"{base} (hidden)"
    return base


def evaluate_scenario(
    dataset: GroundTruthDataset, result: ClassificationResult
) -> ScenarioEvaluation:
    """Score *result* against the ground truth of *dataset*."""
    tagging_matrix = ConfusionMatrix(kind="tagging")
    forwarding_matrix = ConfusionMatrix(kind="forwarding")

    tag_tp = tag_fp = tag_fn = 0
    fwd_tp = fwd_fp = fwd_fn = 0

    for asn in sorted(dataset.all_ases):
        role = dataset.roles.get(asn)
        if role is None:
            continue
        classification = result.classification_of(asn)

        # -- confusion matrices (Tables 5 / 6) ---------------------------------
        tagging_matrix.add(_tagging_row_label(dataset, asn), classification.tagging.name.lower())
        forwarding_matrix.add(
            _forwarding_row_label(dataset, asn), classification.forwarding.name.lower()
        )

        # -- precision: decided inferences vs. true role ------------------------
        if classification.tagging is TaggingClass.TAGGER:
            if role.is_tagger:
                tag_tp += 1
            else:
                tag_fp += 1
        elif classification.tagging is TaggingClass.SILENT:
            if role.is_silent:
                tag_tp += 1
            else:
                tag_fp += 1

        if classification.forwarding is ForwardingClass.FORWARD:
            if role.is_forward:
                fwd_tp += 1
            else:
                fwd_fp += 1
        elif classification.forwarding is ForwardingClass.CLEANER:
            if role.is_cleaner:
                fwd_tp += 1
            else:
                fwd_fp += 1

        # -- recall: consistent, visible behaviours only -------------------------
        if not role.is_selective_tagger and asn in dataset.visibility.tagging_visible:
            expected = TaggingClass.from_role(role.tagging)
            if classification.tagging is not expected:
                tag_fn += 1
        if asn in dataset.visibility.forwarding_visible and not role.is_selective_tagger:
            expected_fwd = ForwardingClass.from_role(role.forwarding)
            if classification.forwarding is not expected_fwd:
                fwd_fn += 1

    # Recall numerators only count visible consistent ASes that received the
    # expected classification.
    tag_recall_tp = sum(
        1
        for asn in dataset.visibility.tagging_visible
        if (role := dataset.roles.get(asn)) is not None
        and not role.is_selective_tagger
        and result.classification_of(asn).tagging is TaggingClass.from_role(role.tagging)
    )
    fwd_recall_tp = sum(
        1
        for asn in dataset.visibility.forwarding_visible
        if (role := dataset.roles.get(asn)) is not None
        and not role.is_selective_tagger
        and result.classification_of(asn).forwarding is ForwardingClass.from_role(role.forwarding)
    )

    tagging_pr = PrecisionRecall(
        precision=tag_tp / (tag_tp + tag_fp) if (tag_tp + tag_fp) else 0.0,
        recall=tag_recall_tp / (tag_recall_tp + tag_fn) if (tag_recall_tp + tag_fn) else 0.0,
        true_positives=tag_tp,
        false_positives=tag_fp,
        false_negatives=tag_fn,
    )
    forwarding_pr = PrecisionRecall(
        precision=fwd_tp / (fwd_tp + fwd_fp) if (fwd_tp + fwd_fp) else 0.0,
        recall=fwd_recall_tp / (fwd_recall_tp + fwd_fn) if (fwd_recall_tp + fwd_fn) else 0.0,
        true_positives=fwd_tp,
        false_positives=fwd_fp,
        false_negatives=fwd_fn,
    )

    # -- Table 2 count columns ------------------------------------------------------
    full_counts = {f"full_{code}": 0 for code in ("tc", "sc", "tf", "sf")}
    partial = {"partial_tn": 0, "partial_sn": 0, "partial_nc": 0, "partial_nf": 0}
    none_undecided = {"nn": 0, "u*": 0, "*u": 0, "uu": 0}
    for asn in dataset.all_ases:
        classification = result.classification_of(asn)
        code = classification.code
        if classification.is_full:
            full_counts[f"full_{code}"] += 1
        elif code in ("tn", "sn", "nc", "nf"):
            partial[f"partial_{code}"] += 1
        if code == "nn":
            none_undecided["nn"] += 1
        elif classification.tagging is TaggingClass.UNDECIDED and classification.forwarding is ForwardingClass.UNDECIDED:
            none_undecided["uu"] += 1
        elif classification.tagging is TaggingClass.UNDECIDED:
            none_undecided["u*"] += 1
        elif classification.forwarding is ForwardingClass.UNDECIDED:
            none_undecided["*u"] += 1

    return ScenarioEvaluation(
        scenario=dataset.name,
        tagging=tagging_pr,
        forwarding=forwarding_pr,
        tagging_matrix=tagging_matrix,
        forwarding_matrix=forwarding_matrix,
        full_class_counts=full_counts,
        partial_tagging_counts=partial,
        none_undecided_counts=none_undecided,
    )
