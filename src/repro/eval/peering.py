"""PEERING-testbed style active validation (paper Section 7.4, Table 4).

The paper validates its inferences by announcing a /24 prefix from the
PEERING testbed (AS 47065) through 12 Points of Presence, attaching a unique
pair of communities per PoP, and then checking the collector data:

* when the announced communities are **absent** from an observed
  ``(path, comm)`` tuple there must be at least one inferred *cleaner* on the
  path (otherwise the inference is contradicted);
* when the communities are **present** the path must contain no inferred
  cleaner.

We reproduce the methodology inside the simulation: a testbed AS is attached
as a customer of several PoP provider ASes, announcements with per-PoP
community pairs propagate according to the *ground-truth* roles, and the
resulting observations are checked against the classification produced from
the regular (passive) dataset.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.bgp.asn import ASN
from repro.bgp.community import Community, CommunitySet
from repro.bgp.path import ASPath
from repro.core.classes import ForwardingClass
from repro.core.results import ClassificationResult
from repro.topology.generator import ASTier, Topology
from repro.topology.routing import ValleyFreePath
from repro.usage.roles import RoleAssignment

#: The PEERING testbed ASN used in the paper's experiments.
PEERING_ASN: ASN = 47065


@dataclass(frozen=True)
class PeeringObservation:
    """One observed ``(path, comm)`` tuple for the testbed prefix."""

    path: ASPath
    communities: CommunitySet
    pop_provider: ASN

    @property
    def has_testbed_communities(self) -> bool:
        """``True`` when the announcement still carries our communities."""
        return self.communities.has_upper(PEERING_ASN)


@dataclass
class PeeringValidationResult:
    """The Table 4 numbers of one experiment run."""

    experiment: str
    #: Tuples still carrying our communities.
    present_total: int = 0
    present_with_cleaner: int = 0          # contradictions
    present_with_undecided: int = 0
    #: Tuples in which our communities were removed.
    absent_total: int = 0
    absent_with_cleaner: int = 0           # supporting the inference
    absent_with_undecided_only: int = 0
    absent_contradictions: int = 0

    @property
    def present_cleaner_share(self) -> float:
        """Share of community-present paths that contain a cleaner (column a)."""
        return self.present_with_cleaner / self.present_total if self.present_total else 0.0

    @property
    def absent_cleaner_share(self) -> float:
        """Share of community-absent paths that contain a cleaner (column b)."""
        return self.absent_with_cleaner / self.absent_total if self.absent_total else 0.0

    def table4_row(self) -> Dict[str, object]:
        """The experiment's Table 4 row."""
        return {
            "experiment": self.experiment,
            "present_with_cleaner": f"{self.present_with_cleaner}/{self.present_total}",
            "present_share": round(self.present_cleaner_share, 2),
            "absent_with_cleaner": f"{self.absent_with_cleaner}/{self.absent_total}",
            "absent_share": round(self.absent_cleaner_share, 2),
        }


class PeeringExperiment:
    """Simulated PEERING announcement experiment."""

    def __init__(
        self,
        topology: Topology,
        roles: RoleAssignment,
        paths_by_peer: Mapping[ASN, Mapping[ASN, ValleyFreePath]],
        *,
        testbed_asn: ASN = PEERING_ASN,
        n_pops: int = 12,
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.roles = roles
        self.paths_by_peer = paths_by_peer
        self.testbed_asn = testbed_asn
        self.n_pops = n_pops
        self.seed = seed
        self.pop_providers = self._select_pops()

    # -- experiment setup -------------------------------------------------------------
    def _select_pops(self) -> List[ASN]:
        """Choose PoP provider ASes: transit networks of mixed size."""
        rng = random.Random(self.seed)
        candidates = [
            asn
            for asn in self.topology.transit_asns()
            if self.topology.ases[asn].tier
            in (ASTier.LARGE_TRANSIT, ASTier.MID_TRANSIT, ASTier.SMALL_TRANSIT)
        ]
        count = min(self.n_pops, len(candidates))
        return sorted(rng.sample(candidates, count)) if count else []

    def pop_communities(self, pop_index: int) -> CommunitySet:
        """The unique community pair attached at PoP number *pop_index*."""
        return CommunitySet(
            (
                Community(self.testbed_asn, 100 + pop_index),
                Community(self.testbed_asn, 200 + pop_index),
            )
        )

    # -- announcement propagation -------------------------------------------------------
    def _best_path_via_pops(self, peer: ASN) -> Optional[Tuple[ASPath, ASN, int]]:
        """The path from *peer* to the testbed AS, routed via the best PoP.

        The testbed AS is a customer of every PoP provider, so the peer's
        route to the testbed is its best route to any PoP provider extended
        by the testbed ASN (preferring the usual rank, then length).
        """
        per_origin = self.paths_by_peer.get(peer, {})
        best: Optional[Tuple[int, int, ASN, ASPath]] = None
        for index, pop in enumerate(self.pop_providers):
            route = per_origin.get(pop)
            if route is None:
                continue
            if self.testbed_asn in route.path:
                continue
            key = (route.preference_rank, len(route.path), pop)
            if best is None or key < best[:3]:
                best = (route.preference_rank, len(route.path), pop, route.path)
        if best is None:
            return None
        pop = best[2]
        extended = ASPath(best[3].asns + (self.testbed_asn,))
        return extended, pop, self.pop_providers.index(pop)

    def _communities_survive(self, path: ASPath) -> bool:
        """Do the origin's communities reach the collector (ground truth)?

        They do exactly when every AS between the collector and the origin is
        a forward AS according to its ground-truth role.
        """
        for asn in path.asns[:-1]:
            role = self.roles.get(asn)
            if role is None or not role.is_forward:
                return False
        return True

    def observations(self) -> List[PeeringObservation]:
        """The testbed-prefix observations across all collector peers."""
        result: List[PeeringObservation] = []
        for peer in self.paths_by_peer:
            routed = self._best_path_via_pops(peer)
            if routed is None:
                continue
            path, pop, pop_index = routed
            if self._communities_survive(path):
                communities = self.pop_communities(pop_index)
            else:
                communities = CommunitySet.empty()
            result.append(PeeringObservation(path=path, communities=communities, pop_provider=pop))
        return result

    # -- validation against inferences -----------------------------------------------------
    def validate(
        self, classification: ClassificationResult, *, experiment: str = "experiment-1"
    ) -> PeeringValidationResult:
        """Check the observed tuples against the passive classification."""
        result = PeeringValidationResult(experiment=experiment)
        seen: Set[Tuple[ASPath, CommunitySet]] = set()
        for observation in self.observations():
            key = (observation.path, observation.communities)
            if key in seen:
                continue
            seen.add(key)
            transit_asns = observation.path.asns[:-1]
            has_cleaner = any(
                classification.classification_of(asn).forwarding is ForwardingClass.CLEANER
                for asn in transit_asns
            )
            has_undecided = any(
                classification.classification_of(asn).forwarding is ForwardingClass.UNDECIDED
                for asn in transit_asns
            )
            if observation.has_testbed_communities:
                result.present_total += 1
                if has_cleaner:
                    result.present_with_cleaner += 1
                elif has_undecided:
                    result.present_with_undecided += 1
            else:
                result.absent_total += 1
                if has_cleaner:
                    result.absent_with_cleaner += 1
                elif has_undecided:
                    result.absent_with_undecided_only += 1
                else:
                    result.absent_contradictions += 1
        return result
