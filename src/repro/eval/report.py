"""Per-AS and whole-run reports.

Combines the outputs of the pipeline into the two views a downstream user of
the published dataset typically wants:

* :class:`ASReport` -- everything known about a single AS: inferred classes,
  raw evidence counters, customer cone size, and (optionally) the community
  values attributed to it;
* :func:`summarize_run` -- a compact markdown summary of a whole
  classification run, suitable for dropping into a measurement notebook or a
  paper appendix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.bgp.asn import ASN, is_32bit_only
from repro.bgp.community import AnyCommunity
from repro.core.attribution import CommunityAttribution
from repro.core.classes import ForwardingClass, TaggingClass, UsageClassification
from repro.core.counters import ASCounters
from repro.core.results import FULL_CLASS_CODES, ClassificationResult
from repro.topology.cone import CustomerCones


@dataclass(frozen=True)
class ASReport:
    """Everything the pipeline knows about one AS."""

    asn: ASN
    classification: UsageClassification
    counters: ASCounters
    cone_size: Optional[int] = None
    attributed_communities: Sequence[AnyCommunity] = ()

    @property
    def is_32bit(self) -> bool:
        """``True`` when the ASN requires four bytes."""
        return is_32bit_only(self.asn)

    def to_text(self) -> str:
        """A short human-readable description."""
        lines = [
            f"AS{self.asn} ({'32-bit' if self.is_32bit else '16-bit'} ASN)",
            f"  classification : {self.classification.code}"
            f" (tagging={self.classification.tagging.name.lower()},"
            f" forwarding={self.classification.forwarding.name.lower()})",
            f"  evidence       : t={self.counters.tagger} s={self.counters.silent}"
            f" f={self.counters.forward} c={self.counters.cleaner}",
        ]
        if self.cone_size is not None:
            lines.append(f"  customer cone  : {self.cone_size} ASes")
        if self.attributed_communities:
            values = ", ".join(str(c) for c in self.attributed_communities)
            lines.append(f"  communities    : {values}")
        return "\n".join(lines)


def build_as_report(
    asn: ASN,
    result: ClassificationResult,
    *,
    cones: Optional[CustomerCones] = None,
    attribution: Optional[CommunityAttribution] = None,
    max_communities: int = 5,
) -> ASReport:
    """Assemble the :class:`ASReport` of one AS from pipeline outputs."""
    return ASReport(
        asn=asn,
        classification=result.classification_of(asn),
        counters=result.counters_of(asn),
        cone_size=cones.cone_size(asn) if cones is not None else None,
        attributed_communities=tuple(
            attribution.top_values(asn, count=max_communities) if attribution is not None else ()
        ),
    )


def summarize_run(
    result: ClassificationResult,
    *,
    cones: Optional[CustomerCones] = None,
    title: str = "Community usage classification",
) -> str:
    """A markdown summary of one classification run.

    Contains the tagging/forwarding class counts, the full-classification
    counts, and (when cones are supplied) the median cone size per tagging
    class -- the headline characterisation of the paper's Section 7.
    """
    tagging = result.tagging_counts()
    forwarding = result.forwarding_counts()
    full = result.full_class_counts()

    lines = [f"# {title}", "", f"ASes observed: **{len(result.observed_ases)}**", ""]
    lines.append("| tagging | ASes | forwarding | ASes |")
    lines.append("|---|---|---|---|")
    for tag_class, fwd_class in zip(TaggingClass, ForwardingClass):
        lines.append(
            f"| {tag_class.name.lower()} | {tagging[tag_class]} "
            f"| {fwd_class.name.lower()} | {forwarding[fwd_class]} |"
        )
    lines.append("")
    lines.append("| full classification | ASes |")
    lines.append("|---|---|")
    for code in FULL_CLASS_CODES:
        lines.append(f"| {code} | {full[code]} |")

    if cones is not None:
        lines.append("")
        lines.append("| tagging class | median customer cone |")
        lines.append("|---|---|")
        for tag_class in (TaggingClass.TAGGER, TaggingClass.SILENT):
            members = result.ases_with_tagging(tag_class)
            if not members:
                continue
            sizes = sorted(cones.cone_size(asn) for asn in members)
            median = sizes[len(sizes) // 2]
            lines.append(f"| {tag_class.name.lower()} | {median} |")
    return "\n".join(lines)
