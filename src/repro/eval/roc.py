"""Threshold sensitivity and ROC curves (paper Section 6.3.1, Figure 2).

The classification thresholds (default 99%) trade sensitivity against
specificity.  The sweep re-runs the inference for a range of thresholds and
computes, separately for the tagging and the forwarding classifier,

* the **true-positive rate** -- share of ground-truth taggers (forward ASes)
  classified as tagger (forward), and
* the **false-positive rate** -- share of ground-truth silent (cleaner) ASes
  classified as tagger (forward),

restricted to ASes whose behaviour is visible at all (hidden ASes can never
be classified and would only dilute both rates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.classes import ForwardingClass, TaggingClass
from repro.core.column import ColumnInference
from repro.core.results import ClassificationResult
from repro.core.thresholds import Thresholds
from repro.usage.scenarios import GroundTruthDataset

#: The threshold grid of Figure 2 (50% to 100% in 10-point steps).
DEFAULT_THRESHOLD_GRID: Tuple[float, ...] = (0.51, 0.60, 0.70, 0.80, 0.90, 1.00)


@dataclass(frozen=True)
class ROCPoint:
    """One point of a ROC curve."""

    threshold: float
    true_positive_rate: float
    false_positive_rate: float
    true_positives: int
    false_positives: int
    positives: int
    negatives: int


def _tagging_rates(dataset: GroundTruthDataset, result: ClassificationResult, threshold: float) -> ROCPoint:
    """TPR/FPR of the tagging classifier (positive class: tagger)."""
    tp = fp = positives = negatives = 0
    for asn in dataset.visibility.tagging_visible:
        role = dataset.roles.get(asn)
        if role is None:
            continue
        classified_tagger = result.classification_of(asn).tagging is TaggingClass.TAGGER
        if role.is_tagger:
            positives += 1
            if classified_tagger:
                tp += 1
        else:
            negatives += 1
            if classified_tagger:
                fp += 1
    return ROCPoint(
        threshold=threshold,
        true_positive_rate=tp / positives if positives else 0.0,
        false_positive_rate=fp / negatives if negatives else 0.0,
        true_positives=tp,
        false_positives=fp,
        positives=positives,
        negatives=negatives,
    )


def _forwarding_rates(dataset: GroundTruthDataset, result: ClassificationResult, threshold: float) -> ROCPoint:
    """TPR/FPR of the forwarding classifier (positive class: forward)."""
    tp = fp = positives = negatives = 0
    for asn in dataset.visibility.forwarding_visible:
        role = dataset.roles.get(asn)
        if role is None:
            continue
        classified_forward = result.classification_of(asn).forwarding is ForwardingClass.FORWARD
        if role.is_forward:
            positives += 1
            if classified_forward:
                tp += 1
        else:
            negatives += 1
            if classified_forward:
                fp += 1
    return ROCPoint(
        threshold=threshold,
        true_positive_rate=tp / positives if positives else 0.0,
        false_positive_rate=fp / negatives if negatives else 0.0,
        true_positives=tp,
        false_positives=fp,
        positives=positives,
        negatives=negatives,
    )


def threshold_sweep(
    dataset: GroundTruthDataset,
    thresholds: Sequence[float] = DEFAULT_THRESHOLD_GRID,
) -> Dict[str, List[ROCPoint]]:
    """Run the inference for every threshold and return both ROC curves.

    Returns ``{"tagging": [...], "forwarding": [...]}`` with one
    :class:`ROCPoint` per threshold value, ordered as given.
    """
    curves: Dict[str, List[ROCPoint]] = {"tagging": [], "forwarding": []}
    for value in thresholds:
        inference = ColumnInference(Thresholds.uniform(value))
        result = inference.run(dataset.tuples)
        curves["tagging"].append(_tagging_rates(dataset, result, value))
        curves["forwarding"].append(_forwarding_rates(dataset, result, value))
    return curves


def roc_series(points: Iterable[ROCPoint]) -> List[Tuple[float, float]]:
    """The (FPR, TPR) series of a curve, e.g. for plotting or reporting."""
    return [(p.false_positive_rate, p.true_positive_rate) for p in points]
