"""Temporal stability of the inferences (paper Section 7.1.1).

Two analyses:

* **incremental days** (Figure 3) -- run the inference on one day of data,
  then on one+two days, and so on; for every full classification (tf, tc,
  sf, sc) count how many ASes are *new* (first time in that class), *stable*
  (in the class every day since day 1), and *recurring* (seen before, absent
  in between, back again);
* **longitudinal** (Figure 4) -- independent snapshots (the paper uses one
  day every three months over two years) and the number of fully classified
  ASes per class and snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Set, Tuple

from repro.bgp.asn import ASN
from repro.core.results import FULL_CLASS_CODES, ClassificationResult


@dataclass(frozen=True)
class DayClassCounts:
    """New / stable / recurring counts for one class on one day."""

    day: int
    code: str
    new: int
    stable: int
    recurring: int

    @property
    def total(self) -> int:
        """Total ASes in the class on this day."""
        return self.new + self.stable + self.recurring


@dataclass
class IncrementalDayAnalysis:
    """Figure 3: how classifications evolve as more days are added."""

    #: Per day (0-based), the set of ASes per full class code.
    memberships: List[Dict[str, Set[ASN]]] = field(default_factory=list)

    @classmethod
    def from_results(cls, results: Sequence[ClassificationResult]) -> "IncrementalDayAnalysis":
        """Build the analysis from per-cumulative-day inference results."""
        analysis = cls()
        for result in results:
            per_class: Dict[str, Set[ASN]] = {code: set() for code in FULL_CLASS_CODES}
            for asn, classification in result.fully_classified_ases().items():
                per_class[classification.code].add(asn)
            analysis.memberships.append(per_class)
        return analysis

    def counts_for(self, code: str) -> List[DayClassCounts]:
        """The Figure 3 bars (new / stable / recurring per day) for one class."""
        result: List[DayClassCounts] = []
        seen_before: Set[ASN] = set()
        for day, membership in enumerate(self.memberships):
            members = membership.get(code, set())
            if day == 0:
                result.append(
                    DayClassCounts(day=day, code=code, new=len(members), stable=0, recurring=0)
                )
                seen_before = set(members)
                continue
            stable = {
                asn
                for asn in members
                if all(asn in earlier.get(code, ()) for earlier in self.memberships[:day])
            }
            new = {asn for asn in members if asn not in seen_before}
            recurring = members - stable - new
            result.append(
                DayClassCounts(
                    day=day, code=code, new=len(new), stable=len(stable), recurring=len(recurring)
                )
            )
            seen_before |= members
        return result

    def all_counts(self) -> Dict[str, List[DayClassCounts]]:
        """The complete Figure 3 data, keyed by full class code."""
        return {code: self.counts_for(code) for code in FULL_CLASS_CODES}

    def stability_share(self, code: str) -> float:
        """Share of the final day's members that were stable since day 1.

        The paper reports 90-97% across the four classes.
        """
        counts = self.counts_for(code)
        if not counts:
            return 0.0
        last = counts[-1]
        return last.stable / last.total if last.total else 0.0


@dataclass(frozen=True)
class LongitudinalPoint:
    """Figure 4: fully-classified AS counts of one snapshot."""

    label: str
    counts: Mapping[str, int]

    def count(self, code: str) -> int:
        """Number of ASes fully classified as *code* in this snapshot."""
        return self.counts.get(code, 0)


def longitudinal_series(
    labelled_results: Sequence[Tuple[str, ClassificationResult]]
) -> List[LongitudinalPoint]:
    """Build the Figure 4 series from labelled snapshot results."""
    series: List[LongitudinalPoint] = []
    for label, result in labelled_results:
        series.append(LongitudinalPoint(label=label, counts=result.full_class_counts()))
    return series
