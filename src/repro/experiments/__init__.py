"""Experiment drivers.

One module per table / figure of the paper's evaluation.  Every module
exposes a ``run()`` function returning a structured result plus a
``format_text()`` helper that renders the same rows/series the paper reports.
:class:`repro.experiments.context.ExperimentContext` builds the shared
synthetic Internet once and caches intermediate products (classifications,
tuples) so the experiment suite and the benchmarks do not redo work.

| Experiment | Module |
|---|---|
| Table 1  (dataset overview)            | :mod:`repro.experiments.table1` |
| Table 2  (scenario performance)        | :mod:`repro.experiments.table2` |
| Tables 5/6 (confusion matrices)        | :mod:`repro.experiments.table5_6` |
| Figure 2 (ROC threshold sweep)         | :mod:`repro.experiments.figure2` |
| Table 3  (real-data classification)    | :mod:`repro.experiments.table3` |
| Figure 3 (incremental-day stability)   | :mod:`repro.experiments.figure3` |
| Figure 4 (longitudinal view)           | :mod:`repro.experiments.figure4` |
| Figure 5 (peer community types)        | :mod:`repro.experiments.figure5` |
| Figure 6 (customer cone CDFs)          | :mod:`repro.experiments.figure6` |
| Table 4  (PEERING validation)          | :mod:`repro.experiments.table4` |
"""

from repro.experiments.context import ExperimentContext, ExperimentScale

__all__ = ["ExperimentContext", "ExperimentScale"]
