"""``python -m repro.experiments`` runs the experiment suite."""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())
