"""Shared experiment context.

Building the synthetic Internet, computing routes, and classifying the
aggregate dataset are by far the most expensive steps; every experiment
driver therefore works against an :class:`ExperimentContext` that constructs
them lazily and exactly once.

With ``cache_dir`` set, the expensive aggregate artifacts are additionally
persisted on disk, keyed by ``(scale, seed, thresholds)``.  Writes are
atomic (temp file + ``os.replace``), so any number of concurrent processes —
the parallel experiment runner forks several — may share one cache
directory: the worst case under a race is duplicated work, never a torn
read.
"""

from __future__ import annotations

import enum
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import Callable, List, Optional, TypeVar, Union

from repro.bgp.announcement import PathCommTuple
from repro.bgp.path import ASPath
from repro.core.column import ColumnInference
from repro.core.results import ClassificationResult
from repro.core.thresholds import Thresholds
from repro.datasets.synthetic import AGGREGATE_PROJECTS, SyntheticConfig, SyntheticInternet
from repro.topology.cone import CustomerCones
from repro.usage.scenarios import ScenarioBuilder

T = TypeVar("T")


class ExperimentScale(enum.Enum):
    """Preset scales for the experiment suite.

    * ``TINY`` -- fastest; used by the test suite,
    * ``SMALL`` -- used by the benchmark harness by default,
    * ``DEFAULT`` -- the scale the numbers in EXPERIMENTS.md were produced at,
    * ``LARGE`` -- larger topology for scaling studies.
    """

    TINY = "tiny"
    SMALL = "small"
    DEFAULT = "default"
    LARGE = "large"

    def synthetic_config(self, *, seed: int = 1) -> SyntheticConfig:
        """The synthetic-Internet configuration of this scale."""
        if self is ExperimentScale.TINY:
            config = SyntheticConfig.small(seed=seed)
            config.peer_fraction = 0.10
            return config
        if self is ExperimentScale.SMALL:
            config = SyntheticConfig.small(seed=seed)
            config.peer_fraction = 0.12
            return config
        if self is ExperimentScale.LARGE:
            return SyntheticConfig.large(seed=seed)
        config = SyntheticConfig.default(seed=seed)
        config.peer_fraction = 0.05
        return config

    @property
    def scenario_iterations(self) -> int:
        """Number of random-scenario repetitions for Table 2 (paper: 10)."""
        return {"tiny": 1, "small": 2, "default": 3, "large": 10}[self.value]


@dataclass
class ExperimentContext:
    """Lazily built shared state for all experiment drivers."""

    scale: ExperimentScale = ExperimentScale.DEFAULT
    seed: int = 1
    thresholds: Thresholds = field(default_factory=Thresholds)
    #: Directory for the process-safe on-disk result cache (None = no cache).
    cache_dir: Optional[Union[str, Path]] = None

    # -- on-disk cache -----------------------------------------------------------------
    def _cache_path(self, name: str) -> Optional[Path]:
        """Cache file for artifact *name*, keyed by scale / seed / thresholds."""
        if self.cache_dir is None:
            return None
        t = self.thresholds
        key = (
            f"{self.scale.value}-seed{self.seed}"
            f"-t{t.tagger}-{t.silent}-{t.forward}-{t.cleaner}"
        )
        return Path(self.cache_dir) / f"{key}-{name}.pkl"

    def _cached(self, name: str, build: Callable[[], T]) -> T:
        """Load artifact *name* from the disk cache, or build and store it.

        Concurrent processes may race on the same artifact; the atomic
        ``os.replace`` ensures readers only ever see complete files.
        """
        path = self._cache_path(name)
        if path is None:
            return build()
        if path.exists():
            try:
                with path.open("rb") as handle:
                    return pickle.load(handle)
            except (pickle.UnpicklingError, EOFError, OSError):
                pass  # corrupt or unreadable: rebuild below
        value = build()
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return value

    # -- substrate ---------------------------------------------------------------------
    @cached_property
    def internet(self) -> SyntheticInternet:
        """The synthetic Internet of this context."""
        return SyntheticInternet.build(self.scale.synthetic_config(seed=self.seed))

    @cached_property
    def cones(self) -> CustomerCones:
        """Customer cones over the context's topology."""
        return self.internet.cones()

    @cached_property
    def aggregate_tuples(self) -> List[PathCommTuple]:
        """Unique ``(path, comm)`` tuples of the aggregated dataset."""
        # Lazy: referencing the bound method would build the (expensive)
        # internet substrate even when the disk cache already has the tuples.
        return self._cached("aggregate-tuples", lambda: self.internet.tuples_for_aggregate())

    @cached_property
    def aggregate_classification(self) -> ClassificationResult:
        """Classification of the aggregated dataset (used by many figures)."""
        return self._cached(
            "aggregate-classification",
            lambda: ColumnInference(self.thresholds).run(self.aggregate_tuples),
        )

    @cached_property
    def scenario_paths(self) -> List[ASPath]:
        """The AS-path substrate used by the Section 6 scenarios."""
        peers = self.internet.collector_peers(list(AGGREGATE_PROJECTS))
        return self.internet.paths_for_peers(peers)

    def scenario_builder(self, *, seed: Optional[int] = None) -> ScenarioBuilder:
        """A scenario builder over the context's path substrate."""
        return ScenarioBuilder(
            self.scenario_paths,
            relationships=self.internet.topology.relationships,
            seed=self.seed if seed is None else seed,
        )

    # -- per-project classifications ------------------------------------------------------
    def classification_for_project(self, name: str) -> ClassificationResult:
        """Classify a single collector project's tuples."""
        tuples = self.internet.tuples_for_project(name)
        return ColumnInference(self.thresholds).run(tuples)
