"""Figure 2: ROC curves under varying thresholds.

Re-runs the inference on the random-p and random-pp scenarios for thresholds
between 50% and 100% and reports the (FPR, TPR) series for the tagging and
the forwarding classifiers.  The paper's observation — the inferences are not
very sensitive to the threshold — shows up as short, steep curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.eval.roc import DEFAULT_THRESHOLD_GRID, ROCPoint, threshold_sweep
from repro.experiments.context import ExperimentContext, ExperimentScale
from repro.usage.scenarios import ScenarioName

#: The scenarios shown in Figure 2 (left: random-p, right: random-pp).
SCENARIOS: Sequence[ScenarioName] = (ScenarioName.RANDOM_P, ScenarioName.RANDOM_PP)


@dataclass
class Figure2Result:
    """ROC curves per scenario and classifier."""

    curves: Dict[str, Dict[str, List[ROCPoint]]]

    def curve(self, scenario: str, classifier: str) -> List[ROCPoint]:
        """One ROC curve, e.g. ``curve("random-p", "tagging")``."""
        return self.curves[scenario][classifier]

    def format_text(self) -> str:
        """Render the curves as threshold / FPR / TPR tables."""
        lines: List[str] = []
        for scenario, per_classifier in self.curves.items():
            lines.append(f"== Figure 2 ({scenario}) ==")
            for classifier, points in per_classifier.items():
                lines.append(f"  [{classifier}]")
                lines.append(f"    {'threshold':>10} {'FPR':>8} {'TPR':>8}")
                for point in points:
                    lines.append(
                        f"    {point.threshold:>10.2f} {point.false_positive_rate:>8.3f} "
                        f"{point.true_positive_rate:>8.3f}"
                    )
        return "\n".join(lines)


def run(
    context: Optional[ExperimentContext] = None,
    *,
    thresholds: Sequence[float] = DEFAULT_THRESHOLD_GRID,
    scenarios: Sequence[ScenarioName] = SCENARIOS,
) -> Figure2Result:
    """Run the threshold sweep for both selective scenarios."""
    context = context or ExperimentContext(scale=ExperimentScale.DEFAULT)
    curves: Dict[str, Dict[str, List[ROCPoint]]] = {}
    for scenario in scenarios:
        dataset = context.scenario_builder().build(scenario, seed=context.seed)
        curves[scenario.value] = threshold_sweep(dataset, thresholds)
    return Figure2Result(curves=curves)
