"""Figure 3: stability when incrementally adding days of data.

Runs the full pipeline on one day of RouteViews-like data, then on two
cumulative days, and so on (five days total, following the paper), and counts
new / stable / recurring ASes per full classification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bgp.announcement import RouteObservation
from repro.core.pipeline import InferencePipeline
from repro.core.results import ClassificationResult
from repro.eval.stability import DayClassCounts, IncrementalDayAnalysis
from repro.experiments.context import ExperimentContext, ExperimentScale


@dataclass
class Figure3Result:
    """New / stable / recurring counts per class and cumulative day."""

    analysis: IncrementalDayAnalysis
    counts: Dict[str, List[DayClassCounts]]

    def stability_share(self, code: str) -> float:
        """Share of stable ASes on the final day (paper: 90-97%)."""
        return self.analysis.stability_share(code)

    def format_text(self) -> str:
        """Render one bar-group per class."""
        lines: List[str] = []
        for code, per_day in self.counts.items():
            lines.append(f"== {code} ==")
            lines.append(f"  {'day':>5} {'new':>8} {'stable':>8} {'recurring':>10} {'total':>8}")
            for day_counts in per_day:
                lines.append(
                    f"  {day_counts.day + 1:>5} {day_counts.new:>8} {day_counts.stable:>8}"
                    f" {day_counts.recurring:>10} {day_counts.total:>8}"
                )
        return "\n".join(lines)


def run(
    context: Optional[ExperimentContext] = None,
    *,
    days: int = 5,
    project: str = "routeviews",
) -> Figure3Result:
    """Run the incremental-day stability analysis."""
    context = context or ExperimentContext(scale=ExperimentScale.DEFAULT)
    internet = context.internet
    archive = internet.archive_for(project)

    pipeline = InferencePipeline(
        thresholds=context.thresholds,
        asn_registry=internet.topology.asn_registry,
        prefix_allocation=internet.topology.prefix_allocation,
    )

    cumulative: List[RouteObservation] = []
    results: List[ClassificationResult] = []
    for day in range(days):
        cumulative.extend(archive.generate_day(day).observations)
        results.append(pipeline.run_from_observations(cumulative).result)

    analysis = IncrementalDayAnalysis.from_results(results)
    return Figure3Result(analysis=analysis, counts=analysis.all_counts())
