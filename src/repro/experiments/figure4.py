"""Figure 4: longitudinal view of community usage.

The paper re-runs the classification on one day of aggregated data every
three months over two years and finds no significant change in the number of
fully classified ASes.  We reproduce the setup with eight quarterly snapshots
of the synthetic collector data: operator behaviour (the role assignment) is
held fixed, while per-snapshot churn (route availability, update mix) varies,
so the series shows how robust the counts are to ordinary data variation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.pipeline import InferencePipeline
from repro.core.results import FULL_CLASS_CODES, ClassificationResult
from repro.datasets.synthetic import AGGREGATE_PROJECTS
from repro.eval.stability import LongitudinalPoint, longitudinal_series
from repro.experiments.context import ExperimentContext, ExperimentScale

#: Quarterly snapshot labels covering December 2019 to September 2021.
DEFAULT_SNAPSHOT_LABELS: Sequence[str] = (
    "Dec'19",
    "Mar'20",
    "Jun'20",
    "Sep'20",
    "Dec'20",
    "Mar'21",
    "Jun'21",
    "Sep'21",
)


@dataclass
class Figure4Result:
    """Fully-classified AS counts per snapshot."""

    series: List[LongitudinalPoint]

    def counts_for(self, code: str) -> List[int]:
        """The time series of one full class."""
        return [point.count(code) for point in self.series]

    def relative_spread(self, code: str) -> float:
        """``(max - min) / max`` of one class's series (0 = perfectly flat)."""
        values = self.counts_for(code)
        peak = max(values) if values else 0
        return (peak - min(values)) / peak if peak else 0.0

    def format_text(self) -> str:
        """Render the series."""
        header = f"{'snapshot':<10}" + "".join(f"{code:>8}" for code in FULL_CLASS_CODES)
        lines = [header, "-" * len(header)]
        for point in self.series:
            lines.append(
                f"{point.label:<10}" + "".join(f"{point.count(code):>8}" for code in FULL_CLASS_CODES)
            )
        return "\n".join(lines)


def run(
    context: Optional[ExperimentContext] = None,
    *,
    labels: Sequence[str] = DEFAULT_SNAPSHOT_LABELS,
) -> Figure4Result:
    """Run the classification on every quarterly snapshot."""
    context = context or ExperimentContext(scale=ExperimentScale.DEFAULT)
    internet = context.internet
    pipeline = InferencePipeline(
        thresholds=context.thresholds,
        asn_registry=internet.topology.asn_registry,
        prefix_allocation=internet.topology.prefix_allocation,
    )

    labelled: List[Tuple[str, ClassificationResult]] = []
    for index, label in enumerate(labels):
        # One synthetic "day" per quarter: the day index drives route
        # availability and update churn, behaviour stays fixed.
        observations = internet.observations_for_day(list(AGGREGATE_PROJECTS), day=index * 90)
        labelled.append((label, pipeline.run_from_observations(observations).result))
    return Figure4Result(series=longitudinal_series(labelled))
