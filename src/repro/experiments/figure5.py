"""Figure 5: community types at fully classified peer ASes.

For every collector peer with a full classification (tf, tc, sf, sc), counts
how many peer / foreign / stray / private communities appear in its exported
community sets.  The expected pattern (and the paper's consistency check):
peer communities only at taggers, foreign communities only at forward ASes,
stray and private communities everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.eval.characterization import PeerCommunityProfile, peer_community_types
from repro.experiments.context import ExperimentContext, ExperimentScale
from repro.sanitize.sources import CommunitySource


@dataclass
class Figure5Result:
    """Per-full-class lists of peer community profiles."""

    profiles: Dict[str, List[PeerCommunityProfile]]

    def total_of(self, code: str, source: CommunitySource) -> int:
        """Total communities of one source type across all peers of a class."""
        return sum(profile.count(source) for profile in self.profiles.get(code, []))

    def format_text(self) -> str:
        """Render aggregate counts per class and community type."""
        sources = list(CommunitySource)
        header = f"{'class':<8}{'peers':>8}" + "".join(f"{s.value:>12}" for s in sources)
        lines = [header, "-" * len(header)]
        for code, profiles in self.profiles.items():
            counts = "".join(f"{self.total_of(code, s):>12,}" for s in sources)
            lines.append(f"{code:<8}{len(profiles):>8}" + counts)
        return "\n".join(lines)


def run(context: Optional[ExperimentContext] = None) -> Figure5Result:
    """Count community types at the aggregate dataset's classified peers."""
    context = context or ExperimentContext(scale=ExperimentScale.DEFAULT)
    profiles = peer_community_types(
        context.aggregate_tuples,
        context.aggregate_classification,
        registry=context.internet.topology.asn_registry,
    )
    return Figure5Result(profiles=profiles)
