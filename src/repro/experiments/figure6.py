"""Figure 6: customer cone size distribution per inferred class.

Computes CDFs of customer cone sizes for every tagging and forwarding class.
The paper's headline characterisation: taggers, forward, and cleaner ASes are
predominantly large networks, silent and unclassified ASes are mostly at the
edge (cone size 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.eval.characterization import ConeDistribution, cone_cdf_by_class
from repro.experiments.context import ExperimentContext, ExperimentScale


@dataclass
class Figure6Result:
    """Cone distributions per tagging and forwarding class."""

    distributions: Dict[str, Dict[str, ConeDistribution]]

    def distribution(self, dimension: str, label: str) -> ConeDistribution:
        """One distribution, e.g. ``distribution("tagging", "tagger")``."""
        return self.distributions[dimension][label]

    def leaf_share(self, dimension: str, label: str) -> float:
        """Share of ASes with cone size 1 in one class."""
        return self.distribution(dimension, label).proportion_leq(1)

    def format_text(self) -> str:
        """Render summary statistics of every distribution."""
        lines = [
            f"{'dimension':<12}{'class':<12}{'ASes':>8}{'cone=1':>10}{'cone>10':>10}{'median':>10}"
        ]
        lines.append("-" * len(lines[0]))
        for dimension, per_class in self.distributions.items():
            for label, distribution in per_class.items():
                if not len(distribution):
                    continue
                lines.append(
                    f"{dimension:<12}{label:<12}{len(distribution):>8}"
                    f"{distribution.proportion_leq(1):>10.2f}"
                    f"{distribution.proportion_greater(10):>10.2f}"
                    f"{distribution.median():>10.1f}"
                )
        return "\n".join(lines)


def run(context: Optional[ExperimentContext] = None) -> Figure6Result:
    """Compute the cone CDFs for the aggregate classification."""
    context = context or ExperimentContext(scale=ExperimentScale.DEFAULT)
    distributions = cone_cdf_by_class(context.aggregate_classification, context.cones)
    return Figure6Result(distributions=distributions)
