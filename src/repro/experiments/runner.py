"""Run every experiment and print the paper's tables and figures.

Usage::

    python -m repro.experiments --scale small
    python -m repro.experiments --scale default --only table2 figure6
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments import (
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    table1,
    table2,
    table3,
    table4,
    table5_6,
)
from repro.experiments.context import ExperimentContext, ExperimentScale

#: Experiment name -> module with ``run(context)`` and a ``format_text`` result.
EXPERIMENTS: Dict[str, Callable] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5_6": table5_6.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
}


def run_all(
    scale: ExperimentScale = ExperimentScale.DEFAULT,
    *,
    only: Optional[Sequence[str]] = None,
    seed: int = 1,
    stream=None,
) -> Dict[str, object]:
    """Run the selected experiments and print their textual rendering."""
    stream = stream or sys.stdout
    context = ExperimentContext(scale=scale, seed=seed)
    selected = list(only) if only else list(EXPERIMENTS)
    results: Dict[str, object] = {}
    for name in selected:
        runner = EXPERIMENTS.get(name)
        if runner is None:
            raise KeyError(f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}")
        started = time.time()
        result = runner(context)
        results[name] = result
        elapsed = time.time() - started
        print(f"\n===== {name} ({elapsed:.1f}s) =====", file=stream)
        print(result.format_text(), file=stream)
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=[scale.value for scale in ExperimentScale],
        default=ExperimentScale.SMALL.value,
        help="experiment scale preset",
    )
    parser.add_argument("--seed", type=int, default=1, help="substrate random seed")
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help=f"subset of experiments to run ({', '.join(sorted(EXPERIMENTS))})",
    )
    args = parser.parse_args(argv)
    run_all(ExperimentScale(args.scale), only=args.only, seed=args.seed)
    return 0
