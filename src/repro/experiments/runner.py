"""Run every experiment and print the paper's tables and figures.

Both the :func:`run_all` API and the CLI default to the ``SMALL`` scale (a
quick, laptop-sized run); pass ``--scale default`` to reproduce the numbers
in EXPERIMENTS.md.  With ``--workers N`` independent experiments run in N
worker processes, sharing the substrate via fork and (optionally) an
on-disk result cache via ``--cache-dir``.

Usage::

    python -m repro.experiments                      # SMALL scale, serial
    python -m repro.experiments --scale default --only table2 figure6
    python -m repro.experiments --workers 4 --cache-dir .cache/experiments
    python -m repro.experiments --matrix --matrix-seeds 1 2 3 --matrix-scales tiny small
"""

from __future__ import annotations

import argparse
import multiprocessing
import statistics
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.column import ColumnInference
from repro.eval.metrics import evaluate_scenario
from repro.experiments import (
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    table1,
    table2,
    table3,
    table4,
    table5_6,
)
from repro.experiments.context import ExperimentContext, ExperimentScale
from repro.usage.scenarios import ScenarioName

#: The one documented default scale, shared by :func:`run_all` and the CLI.
DEFAULT_SCALE = ExperimentScale.SMALL

#: Experiment name -> module with ``run(context)`` and a ``format_text`` result.
EXPERIMENTS: Dict[str, Callable] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5_6": table5_6.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
}

#: Context shared with forked pool workers (set right before the fork).
_POOL_CONTEXT: Optional[ExperimentContext] = None


def _init_pool_context(context: ExperimentContext) -> None:
    global _POOL_CONTEXT
    _POOL_CONTEXT = context


def _run_one_experiment(name: str) -> Tuple[str, object, float]:
    """Pool task: run one experiment against the shared context."""
    started = time.time()
    result = EXPERIMENTS[name](_POOL_CONTEXT)
    return name, result, time.time() - started


def run_all(
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    only: Optional[Sequence[str]] = None,
    seed: int = 1,
    stream=None,
    workers: int = 1,
    cache_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Run the selected experiments and print their textual rendering.

    With ``workers > 1`` the experiments run concurrently on a process pool;
    the shared substrate is built once up front so forked workers inherit
    it, and results are printed in the selected order regardless of which
    worker finished first.
    """
    stream = stream or sys.stdout
    context = ExperimentContext(scale=scale, seed=seed, cache_dir=cache_dir)
    selected = list(only) if only else list(EXPERIMENTS)
    for name in selected:
        if name not in EXPERIMENTS:
            raise KeyError(f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}")

    if workers > 1 and len(selected) > 1:
        # Build the expensive shared state before the fork so every worker
        # inherits it instead of re-deriving it.
        context.internet
        context.aggregate_tuples
        context.aggregate_classification
        context.scenario_paths
        with multiprocessing.get_context().Pool(
            min(workers, len(selected)),
            initializer=_init_pool_context,
            initargs=(context,),
        ) as pool:
            outcomes = pool.map(_run_one_experiment, selected)
    else:
        _init_pool_context(context)
        outcomes = [_run_one_experiment(name) for name in selected]

    results: Dict[str, object] = {}
    for name, result, elapsed in outcomes:
        results[name] = result
        print(f"\n===== {name} ({elapsed:.1f}s) =====", file=stream)
        print(result.format_text(), file=stream)
    return results


# -- scenario stability matrix ---------------------------------------------------------


@dataclass
class MatrixCell:
    """Evaluation of one (scale, scenario seed) combination."""

    scale: str
    seed: int
    tagging_recall: float
    tagging_precision: float
    forwarding_recall: float
    forwarding_precision: float

    def as_row(self) -> Tuple:
        return (
            self.scale,
            self.seed,
            round(self.tagging_recall, 3),
            round(self.tagging_precision, 3),
            round(self.forwarding_recall, 3),
            round(self.forwarding_precision, 3),
        )


@dataclass
class MatrixResult:
    """All cells of one seeds x scales sweep plus per-scale stability."""

    scenario: str
    cells: List[MatrixCell] = field(default_factory=list)

    def stability(self) -> Dict[str, Dict[str, float]]:
        """Per-scale mean / stdev of precision and recall across seeds."""
        by_scale: Dict[str, List[MatrixCell]] = {}
        for cell in self.cells:
            by_scale.setdefault(cell.scale, []).append(cell)
        summary: Dict[str, Dict[str, float]] = {}
        for scale, cells in by_scale.items():
            metrics = {
                "rec_tagging": [c.tagging_recall for c in cells],
                "prec_tagging": [c.tagging_precision for c in cells],
                "rec_forwarding": [c.forwarding_recall for c in cells],
                "prec_forwarding": [c.forwarding_precision for c in cells],
            }
            entry: Dict[str, float] = {}
            for key, values in metrics.items():
                entry[f"{key}_mean"] = statistics.fmean(values)
                entry[f"{key}_stdev"] = (
                    statistics.stdev(values) if len(values) > 1 else 0.0
                )
            summary[scale] = entry
        return summary

    def format_text(self) -> str:
        """Render the matrix and the per-scale stability summary."""
        header = (
            f"{'scale':>10}{'seed':>6}{'rec_t':>8}{'prec_t':>8}"
            f"{'rec_f':>8}{'prec_f':>8}"
        )
        lines = [f"scenario stability matrix ({self.scenario})", header, "-" * len(header)]
        for cell in self.cells:
            scale, seed, rec_t, prec_t, rec_f, prec_f = cell.as_row()
            lines.append(
                f"{scale:>10}{seed:>6}{rec_t:>8}{prec_t:>8}{rec_f:>8}{prec_f:>8}"
            )
        lines.append("")
        for scale, entry in self.stability().items():
            lines.append(
                f"{scale}: prec_tagging {entry['prec_tagging_mean']:.3f}"
                f" +- {entry['prec_tagging_stdev']:.3f},"
                f" rec_tagging {entry['rec_tagging_mean']:.3f}"
                f" +- {entry['rec_tagging_stdev']:.3f}"
            )
        return "\n".join(lines)


#: Per-process context cache of the matrix pool (one substrate per scale).
_MATRIX_CONTEXTS: Dict[Tuple[str, int, Optional[str]], ExperimentContext] = {}

_MATRIX_CACHE_DIR: Optional[str] = None


def _init_matrix_pool(cache_dir: Optional[str]) -> None:
    global _MATRIX_CACHE_DIR
    _MATRIX_CACHE_DIR = cache_dir


def _run_matrix_cell(task: Tuple[str, int, int, str]) -> MatrixCell:
    """Pool task: evaluate one (scale, scenario seed) combination."""
    scale_value, base_seed, scenario_seed, scenario_value = task
    key = (scale_value, base_seed, _MATRIX_CACHE_DIR)
    context = _MATRIX_CONTEXTS.get(key)
    if context is None:
        context = ExperimentContext(
            scale=ExperimentScale(scale_value), seed=base_seed, cache_dir=_MATRIX_CACHE_DIR
        )
        _MATRIX_CONTEXTS[key] = context
    builder = context.scenario_builder(seed=scenario_seed)
    dataset = builder.build(ScenarioName(scenario_value), seed=scenario_seed)
    result = ColumnInference(context.thresholds).run(dataset.tuples)
    evaluation = evaluate_scenario(dataset, result)
    return MatrixCell(
        scale=scale_value,
        seed=scenario_seed,
        tagging_recall=evaluation.tagging.recall,
        tagging_precision=evaluation.tagging.precision,
        forwarding_recall=evaluation.forwarding.recall,
        forwarding_precision=evaluation.forwarding.precision,
    )


def run_matrix(
    scales: Sequence[ExperimentScale],
    seeds: Sequence[int],
    *,
    base_seed: int = 1,
    scenario: ScenarioName = ScenarioName.RANDOM,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    stream=None,
) -> MatrixResult:
    """Sweep ScenarioBuilder seeds x scales (Table 2-style stability study).

    Every cell re-assigns the scenario roles with a different seed over the
    scale's substrate and evaluates precision / recall of the column
    inference; cells are independent and run on a process pool.
    """
    stream = stream or sys.stdout
    tasks = [
        (scale.value, base_seed, seed, scenario.value) for scale in scales for seed in seeds
    ]
    if workers > 1 and len(tasks) > 1:
        with multiprocessing.get_context().Pool(
            min(workers, len(tasks)),
            initializer=_init_matrix_pool,
            initargs=(cache_dir,),
        ) as pool:
            cells = pool.map(_run_matrix_cell, tasks)
    else:
        _init_matrix_pool(cache_dir)
        cells = [_run_matrix_cell(task) for task in tasks]
    result = MatrixResult(scenario=scenario.value, cells=cells)
    print(result.format_text(), file=stream)
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=[scale.value for scale in ExperimentScale],
        default=DEFAULT_SCALE.value,
        help="experiment scale preset (default: %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=1, help="substrate random seed")
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help=f"subset of experiments to run ({', '.join(sorted(EXPERIMENTS))})",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for independent experiments / matrix cells",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the process-safe on-disk result cache",
    )
    parser.add_argument(
        "--matrix",
        action="store_true",
        help="run the scenario stability matrix instead of the experiments",
    )
    parser.add_argument(
        "--matrix-seeds",
        type=int,
        nargs="+",
        default=[1, 2, 3],
        help="scenario role-assignment seeds swept by --matrix",
    )
    parser.add_argument(
        "--matrix-scales",
        nargs="+",
        choices=[scale.value for scale in ExperimentScale],
        default=None,
        help="scales swept by --matrix (default: the --scale value)",
    )
    parser.add_argument(
        "--matrix-scenario",
        choices=[name.value for name in ScenarioName],
        default=ScenarioName.RANDOM.value,
        help="ground-truth scenario evaluated by --matrix",
    )
    args = parser.parse_args(argv)
    if args.matrix:
        scales = [
            ExperimentScale(value) for value in (args.matrix_scales or [args.scale])
        ]
        run_matrix(
            scales,
            args.matrix_seeds,
            base_seed=args.seed,
            scenario=ScenarioName(args.matrix_scenario),
            workers=args.workers,
            cache_dir=args.cache_dir,
        )
        return 0
    run_all(
        ExperimentScale(args.scale),
        only=args.only,
        seed=args.seed,
        workers=args.workers,
        cache_dir=args.cache_dir,
    )
    return 0
