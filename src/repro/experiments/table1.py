"""Table 1: dataset overview.

Generates one day of archives per collector project, aggregates RIPE,
RouteViews, and Isolario into the d_May21 analogue, and computes the same
statistics rows the paper reports (entries, unique tuples, AS counts,
communities, unique upper fields with and without private/stray).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.collectors.archive import DayArchive
from repro.datasets.stats import DatasetStatistics, compute_statistics, format_table
from repro.datasets.synthetic import AGGREGATE_NAME, AGGREGATE_PROJECTS
from repro.experiments.context import ExperimentContext, ExperimentScale
from repro.sanitize.filters import Sanitizer


@dataclass
class Table1Result:
    """All columns of Table 1."""

    columns: List[DatasetStatistics]

    def column(self, name: str) -> DatasetStatistics:
        """Look up one dataset column by name."""
        for column in self.columns:
            if column.name == name:
                return column
        raise KeyError(name)

    def format_text(self) -> str:
        """Render the table in the paper's layout."""
        return format_table(self.columns)


def run(context: Optional[ExperimentContext] = None, *, day: int = 0) -> Table1Result:
    """Compute Table 1 for the context's synthetic collector data."""
    context = context or ExperimentContext(scale=ExperimentScale.DEFAULT)
    internet = context.internet
    registry = internet.topology.asn_registry

    columns: List[DatasetStatistics] = []
    archives_by_project: Dict[str, List[DayArchive]] = {}
    for name in internet.project_names(include_pch=True):
        archive = internet.archive_for(name).generate_day(day)
        archives_by_project[name] = [archive]
        if name != "pch":
            columns.append(
                compute_statistics(
                    name, [archive], registry=registry, sanitizer=Sanitizer(asn_registry=registry)
                )
            )

    aggregate_archives = [
        archive
        for name in AGGREGATE_PROJECTS
        for archive in archives_by_project.get(name, [])
    ]
    columns.append(
        compute_statistics(
            AGGREGATE_NAME,
            aggregate_archives,
            registry=registry,
            sanitizer=Sanitizer(asn_registry=registry),
        )
    )
    if "pch" in archives_by_project:
        columns.append(
            compute_statistics(
                "pch",
                archives_by_project["pch"],
                registry=registry,
                sanitizer=Sanitizer(asn_registry=registry),
            )
        )
    return Table1Result(columns=columns)
