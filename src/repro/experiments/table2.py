"""Table 2: classification results and performance per scenario.

Runs the column-based inference on the six ground-truth scenarios (alltc,
alltf, random, random+noise, random-p, random-pp), averaging the random
scenarios over several role-assignment iterations, and reports precision,
recall, and the full / partial / none-undecided classification counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.column import ColumnInference
from repro.eval.metrics import ScenarioEvaluation, evaluate_scenario
from repro.experiments.context import ExperimentContext, ExperimentScale
from repro.usage.scenarios import ScenarioName

#: Scenario order of the paper's Table 2.
SCENARIO_ORDER: Sequence[ScenarioName] = (
    ScenarioName.ALLTC,
    ScenarioName.ALLTF,
    ScenarioName.RANDOM,
    ScenarioName.RANDOM_NOISE,
    ScenarioName.RANDOM_P,
    ScenarioName.RANDOM_PP,
)

#: Scenarios whose random role assignment is repeated and averaged.
RANDOMISED = {
    ScenarioName.RANDOM,
    ScenarioName.RANDOM_NOISE,
    ScenarioName.RANDOM_P,
    ScenarioName.RANDOM_PP,
}


@dataclass
class Table2Row:
    """One (averaged) scenario row."""

    scenario: str
    tagging_recall: float
    tagging_precision: float
    forwarding_recall: float
    forwarding_precision: float
    counts: Dict[str, float] = field(default_factory=dict)
    iterations: int = 1

    def as_dict(self) -> Dict[str, object]:
        """Flat dict in the paper's column order."""
        return {
            "scenario": self.scenario,
            "rec_tagging": round(self.tagging_recall, 2),
            "prec_tagging": round(self.tagging_precision, 2),
            "rec_forwarding": round(self.forwarding_recall, 2),
            "prec_forwarding": round(self.forwarding_precision, 2),
            **{k: round(v, 1) for k, v in self.counts.items()},
        }


@dataclass
class Table2Result:
    """All scenario rows plus the raw per-iteration evaluations."""

    rows: List[Table2Row]
    evaluations: Dict[str, List[ScenarioEvaluation]] = field(default_factory=dict)

    def row(self, scenario: str) -> Table2Row:
        """Look up a scenario row by name."""
        for row in self.rows:
            if row.scenario == scenario:
                return row
        raise KeyError(scenario)

    def format_text(self) -> str:
        """Render the table."""
        if not self.rows:
            return ""
        keys = list(self.rows[0].as_dict().keys())
        header = "".join(f"{k:>16}" for k in keys)
        lines = [header, "-" * len(header)]
        for row in self.rows:
            values = row.as_dict()
            lines.append("".join(f"{values[k]!s:>16}" for k in keys))
        return "\n".join(lines)


def _average(evaluations: Sequence[ScenarioEvaluation], iterations: int) -> Table2Row:
    """Average several evaluations of the same scenario into one row."""
    count = len(evaluations)
    counts: Dict[str, float] = {}
    for evaluation in evaluations:
        for mapping in (
            evaluation.full_class_counts,
            evaluation.partial_tagging_counts,
            evaluation.none_undecided_counts,
        ):
            for key, value in mapping.items():
                counts[key] = counts.get(key, 0.0) + value / count
    return Table2Row(
        scenario=evaluations[0].scenario,
        tagging_recall=sum(e.tagging.recall for e in evaluations) / count,
        tagging_precision=sum(e.tagging.precision for e in evaluations) / count,
        forwarding_recall=sum(e.forwarding.recall for e in evaluations) / count,
        forwarding_precision=sum(e.forwarding.precision for e in evaluations) / count,
        counts=counts,
        iterations=iterations,
    )


def run(
    context: Optional[ExperimentContext] = None,
    *,
    scenarios: Sequence[ScenarioName] = SCENARIO_ORDER,
    iterations: Optional[int] = None,
) -> Table2Result:
    """Run every scenario (with repetitions for the random ones)."""
    context = context or ExperimentContext(scale=ExperimentScale.DEFAULT)
    iterations = iterations if iterations is not None else context.scale.scenario_iterations

    rows: List[Table2Row] = []
    evaluations: Dict[str, List[ScenarioEvaluation]] = {}
    for scenario in scenarios:
        repeat = iterations if scenario in RANDOMISED else 1
        per_scenario: List[ScenarioEvaluation] = []
        for iteration in range(repeat):
            builder = context.scenario_builder(seed=context.seed + iteration)
            dataset = builder.build(scenario, seed=context.seed + iteration)
            result = ColumnInference(context.thresholds).run(dataset.tuples)
            per_scenario.append(evaluate_scenario(dataset, result))
        evaluations[scenario.value] = per_scenario
        rows.append(_average(per_scenario, repeat))
    return Table2Result(rows=rows, evaluations=evaluations)
