"""Table 3: classification results on (synthetic) real collector data.

Applies the inference to every collector project individually and to the
aggregate (RIPE + RouteViews + Isolario), reporting the number of ASes per
inferred tagging class, forwarding class, and full classification.  The PCH
column uses the PCH-like project, which provides no RIB data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.classes import ForwardingClass, TaggingClass
from repro.core.results import ClassificationResult
from repro.datasets.synthetic import AGGREGATE_NAME
from repro.experiments.context import ExperimentContext, ExperimentScale

#: Row labels in the paper's order.
ROW_ORDER: Sequence[str] = (
    "tagger",
    "silent",
    "tagging undecided",
    "tagging none",
    "forward",
    "cleaner",
    "forwarding undecided",
    "forwarding none",
    "tagger-forward",
    "tagger-cleaner",
    "silent-forward",
    "silent-cleaner",
)


@dataclass
class Table3Result:
    """Per-dataset classification counts."""

    columns: Dict[str, Dict[str, int]]
    classifications: Dict[str, ClassificationResult]

    def count(self, dataset: str, row: str) -> int:
        """One cell of the table."""
        return self.columns[dataset][row]

    def format_text(self) -> str:
        """Render the table in the paper's layout."""
        names = list(self.columns)
        header = f"{'Input data':<24}" + "".join(f"{name:>14}" for name in names)
        lines = [header, "-" * len(header)]
        for row in ROW_ORDER:
            values = "".join(f"{self.columns[name][row]:>14,}" for name in names)
            lines.append(f"{row:<24}" + values)
        return "\n".join(lines)


def _column_from(result: ClassificationResult) -> Dict[str, int]:
    """The Table 3 rows of one classification result."""
    tagging = result.tagging_counts()
    forwarding = result.forwarding_counts()
    full = result.full_class_counts()
    return {
        "tagger": tagging[TaggingClass.TAGGER],
        "silent": tagging[TaggingClass.SILENT],
        "tagging undecided": tagging[TaggingClass.UNDECIDED],
        "tagging none": tagging[TaggingClass.NONE],
        "forward": forwarding[ForwardingClass.FORWARD],
        "cleaner": forwarding[ForwardingClass.CLEANER],
        "forwarding undecided": forwarding[ForwardingClass.UNDECIDED],
        "forwarding none": forwarding[ForwardingClass.NONE],
        "tagger-forward": full["tf"],
        "tagger-cleaner": full["tc"],
        "silent-forward": full["sf"],
        "silent-cleaner": full["sc"],
    }


def run(context: Optional[ExperimentContext] = None) -> Table3Result:
    """Classify every project and the aggregate."""
    context = context or ExperimentContext(scale=ExperimentScale.DEFAULT)
    internet = context.internet

    columns: Dict[str, Dict[str, int]] = {}
    classifications: Dict[str, ClassificationResult] = {}
    for name in internet.project_names(include_pch=False):
        result = context.classification_for_project(name)
        classifications[name] = result
        columns[name] = _column_from(result)

    aggregate = context.aggregate_classification
    classifications[AGGREGATE_NAME] = aggregate
    columns[AGGREGATE_NAME] = _column_from(aggregate)

    if "pch" in internet.projects:
        pch = context.classification_for_project("pch")
        classifications["pch"] = pch
        columns["pch"] = _column_from(pch)
    return Table3Result(columns=columns, classifications=classifications)
