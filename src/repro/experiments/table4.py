"""Table 4: PEERING-testbed style validation.

Performs three temporally/structurally independent announcement experiments
(different PoP selections) of a controlled origin with per-PoP community
pairs, and reports how often an inferred cleaner appears on paths where the
communities survived (should be rare) versus paths where they were removed
(should be common).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.eval.peering import PeeringExperiment, PeeringValidationResult
from repro.experiments.context import ExperimentContext, ExperimentScale

#: The paper runs three experiments on different dates.
DEFAULT_EXPERIMENT_LABELS: Sequence[str] = ("2021-05-19", "2021-07-15", "2021-08-15")


@dataclass
class Table4Result:
    """The validation outcome of every experiment."""

    experiments: List[PeeringValidationResult]

    def format_text(self) -> str:
        """Render the table."""
        header = (
            f"{'experiment':<14}{'communities present':>26}{'communities not present':>28}"
        )
        lines = [header, "-" * len(header)]
        for experiment in self.experiments:
            present = (
                f"{experiment.present_with_cleaner}/{experiment.present_total}"
                f" ({experiment.present_cleaner_share:.0%})"
            )
            absent = (
                f"{experiment.absent_with_cleaner}/{experiment.absent_total}"
                f" ({experiment.absent_cleaner_share:.0%})"
            )
            lines.append(f"{experiment.experiment:<14}{present:>26}{absent:>28}")
        return "\n".join(lines)


def run(
    context: Optional[ExperimentContext] = None,
    *,
    labels: Sequence[str] = DEFAULT_EXPERIMENT_LABELS,
    n_pops: int = 12,
) -> Table4Result:
    """Run the PEERING-style validation experiments."""
    context = context or ExperimentContext(scale=ExperimentScale.DEFAULT)
    internet = context.internet
    classification = context.aggregate_classification

    results: List[PeeringValidationResult] = []
    for index, label in enumerate(labels):
        experiment = PeeringExperiment(
            internet.topology,
            internet.roles,
            internet.paths_by_peer,
            n_pops=n_pops,
            seed=context.seed + index * 17,
        )
        results.append(experiment.validate(classification, experiment=label))
    return Table4Result(experiments=results)
