"""Tables 5 and 6 (appendix): confusion matrices per scenario.

For every scenario, contrast the assigned ground-truth roles (split into
consistent, selective, hidden, and leaf groups) with the inferred classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.column import ColumnInference
from repro.eval.metrics import ConfusionMatrix, evaluate_scenario
from repro.experiments.context import ExperimentContext, ExperimentScale
from repro.usage.scenarios import ScenarioName

#: Scenario order of the appendix tables.
SCENARIO_ORDER: Sequence[ScenarioName] = (
    ScenarioName.ALLTF,
    ScenarioName.ALLTC,
    ScenarioName.RANDOM,
    ScenarioName.RANDOM_NOISE,
    ScenarioName.RANDOM_P,
    ScenarioName.RANDOM_PP,
)


@dataclass
class ConfusionMatricesResult:
    """Per-scenario tagging (Table 5) and forwarding (Table 6) matrices."""

    tagging: Dict[str, ConfusionMatrix]
    forwarding: Dict[str, ConfusionMatrix]

    def format_text(self) -> str:
        """Render both tables, scenario by scenario."""
        lines: List[str] = ["== Table 5: tagging confusion matrices =="]
        for name, matrix in self.tagging.items():
            lines.append(f"\n[{name}]")
            lines.append(matrix.to_text())
        lines.append("\n== Table 6: forwarding confusion matrices ==")
        for name, matrix in self.forwarding.items():
            lines.append(f"\n[{name}]")
            lines.append(matrix.to_text())
        return "\n".join(lines)


def run(
    context: Optional[ExperimentContext] = None,
    *,
    scenarios: Sequence[ScenarioName] = SCENARIO_ORDER,
) -> ConfusionMatricesResult:
    """Build the confusion matrices for every scenario."""
    context = context or ExperimentContext(scale=ExperimentScale.DEFAULT)
    tagging: Dict[str, ConfusionMatrix] = {}
    forwarding: Dict[str, ConfusionMatrix] = {}
    for scenario in scenarios:
        builder = context.scenario_builder()
        dataset = builder.build(scenario, seed=context.seed)
        result = ColumnInference(context.thresholds).run(dataset.tuples)
        evaluation = evaluate_scenario(dataset, result)
        tagging[scenario.value] = evaluation.tagging_matrix
        forwarding[scenario.value] = evaluation.forwarding_matrix
    return ConfusionMatricesResult(tagging=tagging, forwarding=forwarding)
