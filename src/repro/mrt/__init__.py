"""MRT (Multi-Threaded Routing Toolkit, RFC 6396) wire format.

The paper downloads RIBs and updates "encoded in the Multi-Threaded Routing
Toolkit (MRT) format" (Section 4.1).  This package implements a binary
encoder and decoder for the two record families the analysis needs:

* ``TABLE_DUMP_V2`` — RIB snapshots (``PEER_INDEX_TABLE`` +
  ``RIB_IPV4_UNICAST`` / ``RIB_IPV6_UNICAST`` entries), and
* ``BGP4MP`` / ``BGP4MP_ET`` — archived BGP UPDATE messages
  (``BGP4MP_MESSAGE`` and ``BGP4MP_MESSAGE_AS4`` subtypes).

Path attributes ORIGIN, AS_PATH (2- and 4-byte ASNs), NEXT_HOP, COMMUNITIES,
and LARGE_COMMUNITIES are supported, which is exactly the attribute set the
classification pipeline consumes.
"""

from repro.mrt.constants import (
    MRTType,
    TableDumpV2Subtype,
    BGP4MPSubtype,
    PathAttributeType,
    BGPMessageType,
)
from repro.mrt.records import (
    MRTRecord,
    PeerIndexTable,
    PeerEntry,
    RIBEntryRecord,
    RIBAfiEntry,
    BGP4MPMessage,
)
from repro.mrt.encoder import MRTEncoder, encode_records
from repro.mrt.decoder import MRTDecoder, MRTDecodeError, decode_records

__all__ = [
    "MRTType",
    "TableDumpV2Subtype",
    "BGP4MPSubtype",
    "PathAttributeType",
    "BGPMessageType",
    "MRTRecord",
    "PeerIndexTable",
    "PeerEntry",
    "RIBEntryRecord",
    "RIBAfiEntry",
    "BGP4MPMessage",
    "MRTEncoder",
    "MRTDecoder",
    "MRTDecodeError",
    "encode_records",
    "decode_records",
]
