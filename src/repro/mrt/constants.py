"""MRT and BGP wire-format constants (RFC 6396, RFC 4271, RFC 8092)."""

from __future__ import annotations

import enum


class MRTType(enum.IntEnum):
    """MRT record types (RFC 6396 Section 4)."""

    OSPFV2 = 11
    TABLE_DUMP = 12
    TABLE_DUMP_V2 = 13
    BGP4MP = 16
    BGP4MP_ET = 17
    ISIS = 32
    OSPFV3 = 48


class TableDumpV2Subtype(enum.IntEnum):
    """TABLE_DUMP_V2 subtypes (RFC 6396 Section 4.3)."""

    PEER_INDEX_TABLE = 1
    RIB_IPV4_UNICAST = 2
    RIB_IPV4_MULTICAST = 3
    RIB_IPV6_UNICAST = 4
    RIB_IPV6_MULTICAST = 5
    RIB_GENERIC = 6


class BGP4MPSubtype(enum.IntEnum):
    """BGP4MP subtypes (RFC 6396 Section 4.4)."""

    BGP4MP_STATE_CHANGE = 0
    BGP4MP_MESSAGE = 1
    BGP4MP_MESSAGE_AS4 = 4
    BGP4MP_STATE_CHANGE_AS4 = 5
    BGP4MP_MESSAGE_LOCAL = 6
    BGP4MP_MESSAGE_AS4_LOCAL = 7


class BGPMessageType(enum.IntEnum):
    """BGP message types (RFC 4271 Section 4.1)."""

    OPEN = 1
    UPDATE = 2
    NOTIFICATION = 3
    KEEPALIVE = 4


class PathAttributeType(enum.IntEnum):
    """BGP path attribute type codes."""

    ORIGIN = 1
    AS_PATH = 2
    NEXT_HOP = 3
    MULTI_EXIT_DISC = 4
    LOCAL_PREF = 5
    ATOMIC_AGGREGATE = 6
    AGGREGATOR = 7
    COMMUNITIES = 8
    MP_REACH_NLRI = 14
    MP_UNREACH_NLRI = 15
    LARGE_COMMUNITIES = 32


#: Path attribute flag bits.
ATTR_FLAG_OPTIONAL = 0x80
ATTR_FLAG_TRANSITIVE = 0x40
ATTR_FLAG_PARTIAL = 0x20
ATTR_FLAG_EXTENDED_LENGTH = 0x10

#: Address family identifiers.
AFI_IPV4 = 1
AFI_IPV6 = 2

#: The fixed 16-byte marker preceding every BGP message (RFC 4271).
BGP_MARKER = b"\xff" * 16

#: Size of the common MRT header in bytes.
MRT_COMMON_HEADER_SIZE = 12
