"""Binary MRT decoder.

Parses the byte streams produced by :mod:`repro.mrt.encoder` (and any other
standards-conforming writer of the supported record types) back into the
record dataclasses of :mod:`repro.mrt.records`.  This is the entry point of
the measurement pipeline: collector archives are decoded here before
sanitation and inference.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional

from repro.bgp.asn import ASN
from repro.bgp.community import Community, CommunitySet, LargeCommunity
from repro.bgp.messages import BGPUpdate, Origin, PathAttributes
from repro.bgp.path import ASPath, PathSegment, SegmentType
from repro.bgp.prefix import Prefix
from repro.mrt.constants import (
    AFI_IPV4,
    AFI_IPV6,
    ATTR_FLAG_EXTENDED_LENGTH,
    BGP_MARKER,
    BGP4MPSubtype,
    BGPMessageType,
    MRT_COMMON_HEADER_SIZE,
    MRTType,
    PathAttributeType,
    TableDumpV2Subtype,
)
from repro.mrt.records import (
    BGP4MPMessage,
    MRTRecord,
    PeerEntry,
    PeerIndexTable,
    RIBAfiEntry,
    RIBEntryRecord,
)


class MRTDecodeError(ValueError):
    """Raised when the byte stream violates the MRT / BGP wire format."""


class _Cursor:
    """A tiny bounds-checked reader over a bytes-like object.

    Accepts ``bytes`` or ``memoryview``; with a memoryview every
    :meth:`read` is a zero-copy slice into the underlying archive blob,
    which is what makes the decoder's ``zero_copy`` mode copy-free from
    record framing down to individual attribute values.
    """

    __slots__ = ("data", "pos")

    def __init__(self, data, pos: int = 0) -> None:
        self.data = data
        self.pos = pos

    def remaining(self) -> int:
        return len(self.data) - self.pos

    def read(self, count: int):
        if count < 0 or self.remaining() < count:
            raise MRTDecodeError(
                f"truncated record: wanted {count} bytes, {self.remaining()} available"
            )
        chunk = self.data[self.pos : self.pos + count]
        self.pos += count
        return chunk

    def read_uint(self, size: int) -> int:
        return int.from_bytes(self.read(size), "big")


def _decode_prefix_nlri(cursor: _Cursor, afi: int = AFI_IPV4) -> Prefix:
    """Decode one NLRI-encoded prefix (length byte + minimal network bytes)."""
    length = cursor.read_uint(1)
    total_bytes = 4 if afi == AFI_IPV4 else 16
    max_length = total_bytes * 8
    if length > max_length:
        raise MRTDecodeError(f"prefix length {length} exceeds maximum {max_length}")
    n_bytes = (length + 7) // 8
    # Shift instead of concatenating zero padding: works on memoryview
    # chunks (bytes-like concatenation does not) and skips a copy.
    network = int.from_bytes(cursor.read(n_bytes), "big") << (8 * (total_bytes - n_bytes))
    return Prefix(network, length, afi)


def _decode_as_path(value, asn_size: int) -> ASPath:
    """Decode the AS_PATH attribute value."""
    cursor = _Cursor(value)
    segments: List[PathSegment] = []
    while cursor.remaining():
        segment_type = cursor.read_uint(1)
        count = cursor.read_uint(1)
        asns = tuple(cursor.read_uint(asn_size) for _ in range(count))
        try:
            segments.append(PathSegment(SegmentType(segment_type), asns))
        except ValueError as exc:
            raise MRTDecodeError(f"unknown AS path segment type {segment_type}") from exc
    return ASPath.from_segments(segments)


def decode_path_attributes(value, *, asn_size: int = 4) -> PathAttributes:
    """Decode a BGP path attribute blob into :class:`PathAttributes`.

    *value* may be ``bytes`` or a ``memoryview`` slice; every consumer below
    (``struct.unpack``, ``int.from_bytes``, indexing) reads either without
    copying.
    """
    cursor = _Cursor(value)
    as_path: Optional[ASPath] = None
    origin = Origin.INCOMPLETE
    next_hop = 0
    med: Optional[int] = None
    local_pref: Optional[int] = None
    communities: List = []

    while cursor.remaining():
        flags = cursor.read_uint(1)
        type_code = cursor.read_uint(1)
        length = cursor.read_uint(2 if flags & ATTR_FLAG_EXTENDED_LENGTH else 1)
        body = cursor.read(length)

        if type_code == PathAttributeType.ORIGIN and body:
            origin = Origin(body[0]) if body[0] in (0, 1, 2) else Origin.INCOMPLETE
        elif type_code == PathAttributeType.AS_PATH:
            as_path = _decode_as_path(body, asn_size)
        elif type_code == PathAttributeType.NEXT_HOP and len(body) >= 4:
            next_hop = int.from_bytes(body[:4], "big")
        elif type_code == PathAttributeType.MULTI_EXIT_DISC and len(body) >= 4:
            med = int.from_bytes(body[:4], "big")
        elif type_code == PathAttributeType.LOCAL_PREF and len(body) >= 4:
            local_pref = int.from_bytes(body[:4], "big")
        elif type_code == PathAttributeType.COMMUNITIES:
            if length % 4:
                raise MRTDecodeError("COMMUNITIES attribute length not a multiple of 4")
            for offset in range(0, length, 4):
                communities.append(Community.from_value(int.from_bytes(body[offset : offset + 4], "big")))
        elif type_code == PathAttributeType.LARGE_COMMUNITIES:
            if length % 12:
                raise MRTDecodeError("LARGE_COMMUNITIES attribute length not a multiple of 12")
            for offset in range(0, length, 12):
                upper, data1, data2 = struct.unpack("!III", body[offset : offset + 12])
                communities.append(LargeCommunity(upper, data1, data2))
        # Unknown attributes are skipped, as a tolerant MRT consumer must.

    if as_path is None:
        raise MRTDecodeError("path attributes lack a mandatory AS_PATH")
    return PathAttributes(
        as_path=as_path,
        communities=CommunitySet(communities),
        origin=origin,
        next_hop=next_hop,
        med=med,
        local_pref=local_pref,
    )


class MRTDecoder:
    """Iterator over the MRT records contained in a byte blob.

    With ``zero_copy`` (the default) the decoder reads through one
    ``memoryview`` over *data*: record bodies, attribute blobs, and NLRI
    chunks are views into the original blob and nothing is copied until a
    value (an int, an ASN, a prefix) is materialised.  Decoded records
    never retain the views, so the blob's lifetime is not extended.  Pass
    ``zero_copy=False`` to decode over plain byte slices; the output is
    identical (the equivalence tests pin this down).
    """

    def __init__(self, data: bytes, *, zero_copy: bool = True) -> None:
        self._cursor = _Cursor(memoryview(data) if zero_copy else data)
        self._peer_table: Optional[PeerIndexTable] = None

    @property
    def peer_table(self) -> Optional[PeerIndexTable]:
        """The most recently decoded PEER_INDEX_TABLE, if any."""
        return self._peer_table

    def __iter__(self) -> Iterator[MRTRecord]:
        return self

    def iter_blocks(self, size: int) -> Iterator[List[MRTRecord]]:
        """Decode records into blocks of up to *size*.

        Yields the same records in the same order as plain iteration, just
        grouped, so downstream block consumers (sanitation, the streaming
        engine) can amortize per-record dispatch.  The final block may be
        short.
        """
        if size < 1:
            raise ValueError(f"block size must be >= 1, got {size}")
        block: List[MRTRecord] = []
        append = block.append
        for record in self:
            append(record)
            if len(block) >= size:
                yield block
                block = []
                append = block.append
        if block:
            yield block

    def __next__(self) -> MRTRecord:
        if self._cursor.remaining() == 0:
            raise StopIteration
        if self._cursor.remaining() < MRT_COMMON_HEADER_SIZE:
            raise MRTDecodeError("trailing bytes shorter than an MRT header")
        timestamp = self._cursor.read_uint(4)
        mrt_type = self._cursor.read_uint(2)
        subtype = self._cursor.read_uint(2)
        length = self._cursor.read_uint(4)
        body = self._cursor.read(length)

        try:
            mrt_type_enum = MRTType(mrt_type)
        except ValueError as exc:
            raise MRTDecodeError(f"unsupported MRT type {mrt_type}") from exc

        if mrt_type_enum == MRTType.TABLE_DUMP_V2:
            record = self._decode_table_dump_v2(timestamp, subtype, body)
        elif mrt_type_enum in (MRTType.BGP4MP, MRTType.BGP4MP_ET):
            record = self._decode_bgp4mp(timestamp, mrt_type_enum, subtype, body)
        else:
            raise MRTDecodeError(f"MRT type {mrt_type_enum.name} not supported by this decoder")
        return record

    # -- TABLE_DUMP_V2 -------------------------------------------------------
    def _decode_table_dump_v2(self, timestamp: int, subtype: int, body: bytes) -> MRTRecord:
        subtype_enum = TableDumpV2Subtype(subtype)
        cursor = _Cursor(body)
        if subtype_enum == TableDumpV2Subtype.PEER_INDEX_TABLE:
            collector_id = cursor.read_uint(4)
            view_len = cursor.read_uint(2)
            view_name = bytes(cursor.read(view_len)).decode(errors="replace")
            peer_count = cursor.read_uint(2)
            peers: List[PeerEntry] = []
            for _ in range(peer_count):
                peer_type = cursor.read_uint(1)
                ipv6 = bool(peer_type & 0x01)
                as4 = bool(peer_type & 0x02)
                bgp_id = cursor.read_uint(4)
                peer_ip = cursor.read_uint(16 if ipv6 else 4)
                peer_asn = cursor.read_uint(4 if as4 else 2)
                peers.append(PeerEntry(peer_asn=peer_asn, peer_ip=peer_ip, peer_bgp_id=bgp_id, ipv6=ipv6))
            table = PeerIndexTable(
                timestamp=timestamp,
                mrt_type=MRTType.TABLE_DUMP_V2,
                subtype=subtype_enum,
                collector_bgp_id=collector_id,
                view_name=view_name,
                peers=tuple(peers),
            )
            self._peer_table = table
            return table

        if subtype_enum in (TableDumpV2Subtype.RIB_IPV4_UNICAST, TableDumpV2Subtype.RIB_IPV6_UNICAST):
            afi = AFI_IPV4 if subtype_enum == TableDumpV2Subtype.RIB_IPV4_UNICAST else AFI_IPV6
            sequence = cursor.read_uint(4)
            prefix = _decode_prefix_nlri(cursor, afi)
            entry_count = cursor.read_uint(2)
            entries: List[RIBAfiEntry] = []
            for _ in range(entry_count):
                peer_index = cursor.read_uint(2)
                originated = cursor.read_uint(4)
                attr_len = cursor.read_uint(2)
                attributes = decode_path_attributes(cursor.read(attr_len), asn_size=4)
                entries.append(RIBAfiEntry(peer_index=peer_index, originated_time=originated, attributes=attributes))
            return RIBEntryRecord(
                timestamp=timestamp,
                mrt_type=MRTType.TABLE_DUMP_V2,
                subtype=subtype_enum,
                sequence=sequence,
                prefix=prefix,
                entries=tuple(entries),
            )

        raise MRTDecodeError(f"TABLE_DUMP_V2 subtype {subtype_enum.name} not supported")

    # -- BGP4MP ---------------------------------------------------------------
    def _decode_bgp4mp(self, timestamp: int, mrt_type: MRTType, subtype: int, body: bytes) -> BGP4MPMessage:
        subtype_enum = BGP4MPSubtype(subtype)
        if subtype_enum not in (BGP4MPSubtype.BGP4MP_MESSAGE, BGP4MPSubtype.BGP4MP_MESSAGE_AS4):
            raise MRTDecodeError(f"BGP4MP subtype {subtype_enum.name} not supported")
        as4 = subtype_enum == BGP4MPSubtype.BGP4MP_MESSAGE_AS4
        asn_size = 4 if as4 else 2

        cursor = _Cursor(body)
        if mrt_type == MRTType.BGP4MP_ET:
            cursor.read_uint(4)  # microsecond timestamp, ignored
        peer_asn = cursor.read_uint(asn_size)
        local_asn = cursor.read_uint(asn_size)
        interface_index = cursor.read_uint(2)
        afi = cursor.read_uint(2)
        addr_size = 4 if afi == AFI_IPV4 else 16
        peer_ip = cursor.read_uint(addr_size)
        local_ip = cursor.read_uint(addr_size)

        marker = cursor.read(16)
        if marker != BGP_MARKER:
            raise MRTDecodeError("BGP message marker mismatch")
        message_length = cursor.read_uint(2)
        message_type = cursor.read_uint(1)
        if message_type != BGPMessageType.UPDATE:
            # Non-UPDATE messages (keepalives, opens) carry no routing data.
            cursor.read(message_length - 19)
            update = None
        else:
            update = self._decode_bgp_update(cursor, message_length - 19, peer_asn, timestamp, asn_size, afi)

        return BGP4MPMessage(
            timestamp=timestamp,
            mrt_type=mrt_type,
            subtype=subtype_enum,
            peer_asn=peer_asn,
            local_asn=local_asn,
            interface_index=interface_index,
            afi=afi,
            peer_ip=peer_ip,
            local_ip=local_ip,
            update=update,
        )

    @staticmethod
    def _decode_bgp_update(
        cursor: _Cursor, body_length: int, peer_asn: ASN, timestamp: int, asn_size: int, afi: int
    ) -> BGPUpdate:
        body = _Cursor(cursor.read(body_length))
        withdrawn_len = body.read_uint(2)
        withdrawn_cursor = _Cursor(body.read(withdrawn_len))
        withdrawn: List[Prefix] = []
        while withdrawn_cursor.remaining():
            withdrawn.append(_decode_prefix_nlri(withdrawn_cursor, afi))
        attr_len = body.read_uint(2)
        attr_bytes = body.read(attr_len)
        attributes = decode_path_attributes(attr_bytes, asn_size=asn_size) if attr_bytes else None
        announced: List[Prefix] = []
        while body.remaining():
            announced.append(_decode_prefix_nlri(body, afi))
        return BGPUpdate(
            peer_asn=peer_asn,
            timestamp=timestamp,
            announced=tuple(announced),
            withdrawn=tuple(withdrawn),
            attributes=attributes,
        )


def decode_records(data: bytes, *, zero_copy: bool = True) -> List[MRTRecord]:
    """Decode every record in *data* into a list."""
    return list(MRTDecoder(data, zero_copy=zero_copy))


def decode_record_blocks(
    data: bytes, size: int, *, zero_copy: bool = True
) -> Iterator[List[MRTRecord]]:
    """Decode *data* lazily into record blocks of up to *size*."""
    return MRTDecoder(data, zero_copy=zero_copy).iter_blocks(size)
