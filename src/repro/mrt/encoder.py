"""Binary MRT encoder.

Produces byte streams that a standard MRT consumer (or
:mod:`repro.mrt.decoder`) can parse.  The encoder is used by the collector
simulation to archive RIB snapshots and update streams in the same wire
format the paper's pipeline downloads from RIPE RIS / RouteViews / Isolario.
"""

from __future__ import annotations

import struct
from io import BytesIO
from typing import BinaryIO, List, Optional, Sequence, Tuple

from repro.bgp.asn import ASN
from repro.bgp.community import CommunitySet, LargeCommunity
from repro.bgp.messages import BGPUpdate, PathAttributes
from repro.bgp.path import ASPath
from repro.bgp.prefix import Prefix
from repro.mrt.constants import (
    AFI_IPV4,
    ATTR_FLAG_EXTENDED_LENGTH,
    ATTR_FLAG_OPTIONAL,
    ATTR_FLAG_TRANSITIVE,
    BGP_MARKER,
    BGP4MPSubtype,
    BGPMessageType,
    MRTType,
    PathAttributeType,
    TableDumpV2Subtype,
)


def _encode_prefix_nlri(prefix: Prefix) -> bytes:
    """Encode a prefix in NLRI form: length byte + minimal network bytes."""
    n_bytes = (prefix.length + 7) // 8
    total_bytes = 4 if prefix.is_ipv4 else 16
    network_bytes = prefix.network.to_bytes(total_bytes, "big")[:n_bytes]
    return bytes([prefix.length]) + network_bytes


def _encode_attribute(type_code: int, value: bytes, *, optional: bool = False) -> bytes:
    """Encode one BGP path attribute with appropriate flags."""
    flags = ATTR_FLAG_TRANSITIVE
    if optional:
        flags |= ATTR_FLAG_OPTIONAL
    if len(value) > 255:
        flags |= ATTR_FLAG_EXTENDED_LENGTH
        header = struct.pack("!BBH", flags, type_code, len(value))
    else:
        header = struct.pack("!BBB", flags, type_code, len(value))
    return header + value


def _encode_as_path(path: ASPath, asn_size: int) -> bytes:
    """Encode the AS_PATH attribute value using *asn_size*-byte ASNs."""
    out = bytearray()
    fmt = "!H" if asn_size == 2 else "!I"
    for segment in path.segments:
        out += struct.pack("!BB", int(segment.segment_type), len(segment.asns))
        for asn in segment.asns:
            out += struct.pack(fmt, asn)
    return bytes(out)


def _encode_communities(communities: CommunitySet) -> Tuple[bytes, bytes]:
    """Encode (COMMUNITIES, LARGE_COMMUNITIES) attribute values."""
    regular = bytearray()
    large = bytearray()
    for community in communities.sorted():
        if isinstance(community, LargeCommunity):
            large += struct.pack("!III", community.upper, community.data1, community.data2)
        else:
            regular += struct.pack("!I", community.value)
    return bytes(regular), bytes(large)


def encode_path_attributes(attributes: PathAttributes, *, asn_size: int = 4) -> bytes:
    """Encode the path attributes of one route.

    Emits ORIGIN, AS_PATH, NEXT_HOP, optionally MED/LOCAL_PREF, and the
    COMMUNITIES / LARGE_COMMUNITIES attributes when present.
    """
    out = bytearray()
    out += _encode_attribute(PathAttributeType.ORIGIN, bytes([int(attributes.origin)]))
    out += _encode_attribute(PathAttributeType.AS_PATH, _encode_as_path(attributes.as_path, asn_size))
    out += _encode_attribute(PathAttributeType.NEXT_HOP, struct.pack("!I", attributes.next_hop & 0xFFFFFFFF))
    if attributes.med is not None:
        out += _encode_attribute(
            PathAttributeType.MULTI_EXIT_DISC, struct.pack("!I", attributes.med), optional=True
        )
    if attributes.local_pref is not None:
        out += _encode_attribute(PathAttributeType.LOCAL_PREF, struct.pack("!I", attributes.local_pref))
    regular, large = _encode_communities(attributes.communities)
    if regular:
        out += _encode_attribute(PathAttributeType.COMMUNITIES, regular, optional=True)
    if large:
        out += _encode_attribute(PathAttributeType.LARGE_COMMUNITIES, large, optional=True)
    return bytes(out)


class MRTEncoder:
    """Streaming encoder that appends MRT records to an in-memory buffer.

    Typical use::

        encoder = MRTEncoder()
        encoder.write_peer_index_table(peers, timestamp=ts)
        for prefix, entries in rib.items():
            encoder.write_rib_entry(prefix, entries, timestamp=ts)
        blob = encoder.getvalue()
    """

    def __init__(self, stream: Optional[BinaryIO] = None) -> None:
        self._stream: BinaryIO = stream if stream is not None else BytesIO()
        self._peer_order: List[ASN] = []

    # -- low level ----------------------------------------------------------
    def _write_record(self, timestamp: int, mrt_type: MRTType, subtype: int, body: bytes) -> None:
        header = struct.pack("!IHHI", timestamp & 0xFFFFFFFF, int(mrt_type), int(subtype), len(body))
        self._stream.write(header)
        self._stream.write(body)

    def getvalue(self) -> bytes:
        """Return the encoded byte stream (only for in-memory encoders)."""
        if isinstance(self._stream, BytesIO):
            return self._stream.getvalue()
        raise TypeError("encoder was constructed around an external stream")

    # -- TABLE_DUMP_V2 -------------------------------------------------------
    def write_peer_index_table(
        self,
        peer_asns: Sequence[ASN],
        *,
        timestamp: int = 0,
        collector_bgp_id: int = 0,
        view_name: str = "",
    ) -> None:
        """Write the PEER_INDEX_TABLE that subsequent RIB records reference."""
        self._peer_order = list(peer_asns)
        view = view_name.encode()
        body = bytearray()
        body += struct.pack("!I", collector_bgp_id)
        body += struct.pack("!H", len(view)) + view
        body += struct.pack("!H", len(peer_asns))
        for index, asn in enumerate(peer_asns):
            # Peer type: bit 1 set -> 4-byte ASN; bit 0 clear -> IPv4 peer IP.
            body += struct.pack("!B", 0x02)
            body += struct.pack("!I", index + 1)  # peer BGP ID (synthetic)
            body += struct.pack("!I", (10 << 24) | index)  # peer IP (synthetic)
            body += struct.pack("!I", asn)
        self._write_record(timestamp, MRTType.TABLE_DUMP_V2, TableDumpV2Subtype.PEER_INDEX_TABLE, bytes(body))

    def peer_index(self, peer_asn: ASN) -> int:
        """Resolve a peer ASN to its index in the last written peer table."""
        return self._peer_order.index(peer_asn)

    def write_rib_entry(
        self,
        prefix: Prefix,
        entries: Sequence[Tuple[ASN, int, PathAttributes]],
        *,
        sequence: int = 0,
        timestamp: int = 0,
    ) -> None:
        """Write one RIB_IPV4_UNICAST / RIB_IPV6_UNICAST record.

        *entries* is a sequence of ``(peer_asn, originated_time, attributes)``
        tuples; peer ASNs must have been registered via
        :meth:`write_peer_index_table`.
        """
        subtype = (
            TableDumpV2Subtype.RIB_IPV4_UNICAST if prefix.is_ipv4 else TableDumpV2Subtype.RIB_IPV6_UNICAST
        )
        body = bytearray()
        body += struct.pack("!I", sequence)
        body += _encode_prefix_nlri(prefix)
        body += struct.pack("!H", len(entries))
        for peer_asn, originated, attributes in entries:
            attr_bytes = encode_path_attributes(attributes, asn_size=4)
            body += struct.pack("!HIH", self.peer_index(peer_asn), originated & 0xFFFFFFFF, len(attr_bytes))
            body += attr_bytes
        self._write_record(timestamp, MRTType.TABLE_DUMP_V2, subtype, bytes(body))

    # -- BGP4MP ---------------------------------------------------------------
    def write_update(
        self,
        update: BGPUpdate,
        *,
        local_asn: ASN = 0,
        as4: bool = True,
    ) -> None:
        """Write one BGP4MP_MESSAGE(_AS4) record wrapping a BGP UPDATE."""
        asn_size = 4 if as4 else 2
        subtype = BGP4MPSubtype.BGP4MP_MESSAGE_AS4 if as4 else BGP4MPSubtype.BGP4MP_MESSAGE
        fmt = "!I" if as4 else "!H"

        withdrawn = b"".join(_encode_prefix_nlri(p) for p in update.withdrawn)
        nlri = b"".join(_encode_prefix_nlri(p) for p in update.announced)
        attrs = (
            encode_path_attributes(update.attributes, asn_size=asn_size)
            if update.attributes is not None
            else b""
        )
        bgp_body = (
            struct.pack("!H", len(withdrawn))
            + withdrawn
            + struct.pack("!H", len(attrs))
            + attrs
            + nlri
        )
        bgp_message = (
            BGP_MARKER + struct.pack("!HB", 16 + 2 + 1 + len(bgp_body), int(BGPMessageType.UPDATE)) + bgp_body
        )

        body = bytearray()
        body += struct.pack(fmt, update.peer_asn)
        body += struct.pack(fmt, local_asn)
        body += struct.pack("!H", 0)  # interface index
        body += struct.pack("!H", AFI_IPV4)
        body += struct.pack("!I", 0)  # peer IP (synthetic)
        body += struct.pack("!I", 0)  # local IP (synthetic)
        body += bgp_message
        self._write_record(update.timestamp, MRTType.BGP4MP, subtype, bytes(body))


def encode_records(
    peer_asns: Sequence[ASN],
    rib: Sequence[Tuple[Prefix, Sequence[Tuple[ASN, int, PathAttributes]]]] = (),
    updates: Sequence[BGPUpdate] = (),
    *,
    timestamp: int = 0,
) -> bytes:
    """Convenience helper: encode a peer table, RIB entries, and updates."""
    encoder = MRTEncoder()
    encoder.write_peer_index_table(peer_asns, timestamp=timestamp)
    for sequence, (prefix, entries) in enumerate(rib):
        encoder.write_rib_entry(prefix, entries, sequence=sequence, timestamp=timestamp)
    for update in updates:
        encoder.write_update(update)
    return encoder.getvalue()
