"""Dataclasses describing decoded MRT records."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bgp.asn import ASN
from repro.bgp.messages import BGPUpdate, PathAttributes, RIBEntry
from repro.bgp.prefix import Prefix
from repro.mrt.constants import BGP4MPSubtype, MRTType


@dataclass(frozen=True)
class MRTRecord:
    """Base class for decoded MRT records; carries the common header."""

    timestamp: int
    mrt_type: MRTType
    subtype: int


@dataclass(frozen=True)
class PeerEntry:
    """One peer in a TABLE_DUMP_V2 PEER_INDEX_TABLE."""

    peer_asn: ASN
    peer_ip: int = 0
    peer_bgp_id: int = 0
    ipv6: bool = False


@dataclass(frozen=True)
class PeerIndexTable(MRTRecord):
    """TABLE_DUMP_V2 PEER_INDEX_TABLE record."""

    collector_bgp_id: int = 0
    view_name: str = ""
    peers: Tuple[PeerEntry, ...] = ()


@dataclass(frozen=True)
class RIBAfiEntry:
    """One per-peer route inside a RIB_IPV4/6_UNICAST record."""

    peer_index: int
    originated_time: int
    attributes: PathAttributes


@dataclass(frozen=True)
class RIBEntryRecord(MRTRecord):
    """TABLE_DUMP_V2 RIB_IPV4_UNICAST / RIB_IPV6_UNICAST record."""

    sequence: int = 0
    prefix: Prefix = Prefix.ipv4(0, 0)
    entries: Tuple[RIBAfiEntry, ...] = ()

    def to_rib_entries(self, peer_table: PeerIndexTable) -> List[RIBEntry]:
        """Materialise :class:`repro.bgp.messages.RIBEntry` objects.

        Needs the *peer_table* of the same dump to resolve peer indexes to
        peer ASNs, exactly as an MRT consumer must.
        """
        result: List[RIBEntry] = []
        for entry in self.entries:
            peer = peer_table.peers[entry.peer_index]
            result.append(
                RIBEntry(
                    peer_asn=peer.peer_asn,
                    prefix=self.prefix,
                    attributes=entry.attributes,
                    timestamp=entry.originated_time or self.timestamp,
                )
            )
        return result


@dataclass(frozen=True)
class BGP4MPMessage(MRTRecord):
    """BGP4MP_MESSAGE / BGP4MP_MESSAGE_AS4 record wrapping one BGP UPDATE."""

    peer_asn: ASN = 0
    local_asn: ASN = 0
    interface_index: int = 0
    afi: int = 1
    peer_ip: int = 0
    local_ip: int = 0
    update: Optional[BGPUpdate] = None

    @property
    def is_as4(self) -> bool:
        """``True`` when encoded with 4-byte ASNs."""
        return self.subtype in (
            BGP4MPSubtype.BGP4MP_MESSAGE_AS4,
            BGP4MPSubtype.BGP4MP_MESSAGE_AS4_LOCAL,
        )
