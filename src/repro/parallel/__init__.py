"""Multi-core parallel execution layer.

Map-reduce style execution of the batch pipeline and the streaming engine
over OS processes:

* :mod:`repro.parallel.pool` -- shard-affine sanitation worker processes
  (the per-peer-AS partitioning of :mod:`repro.stream.sharding`);
* :mod:`repro.parallel.batch` -- parallel sanitize + dedup for the batch
  pipeline, byte-identical to the serial pass;
* :mod:`repro.parallel.inference` -- chunk-parallel column / row counting
  with per-phase shard-merge barriers, byte-identical to the serial
  algorithms;
* :mod:`repro.parallel.stream` -- the streaming engine with its shard
  workers in other processes.

Entry points most callers want: ``InferencePipeline(workers=N)`` (batch) and
``ParallelStreamEngine`` (streaming), or simply ``--workers N`` on the
``classify`` / ``stream`` CLI commands.
"""

from repro.parallel.batch import parallel_unique_tuples
from repro.parallel.inference import (
    MIN_PARALLEL_TUPLES,
    ParallelColumnInference,
    ParallelRowInference,
    split_chunks,
)
from repro.parallel.pool import ShardProcessPool, iter_chunks
from repro.parallel.stream import DEFAULT_STREAM_BATCH, ParallelStreamEngine

__all__ = [
    "DEFAULT_STREAM_BATCH",
    "MIN_PARALLEL_TUPLES",
    "ParallelColumnInference",
    "ParallelRowInference",
    "ParallelStreamEngine",
    "ShardProcessPool",
    "iter_chunks",
    "parallel_unique_tuples",
    "split_chunks",
]
