"""Parallel batch sanitation + deduplication.

Splits an observation stream across the :class:`ShardProcessPool` by
collector-peer AS (the :func:`~repro.stream.sharding.shard_of` partitioning)
and merges the per-shard outcomes back into the exact unique-tuple list a
serial :meth:`Sanitizer.to_unique_tuples` pass would produce:

* every shard owns a disjoint slice of the ``(path, comm)`` tuple space, so
  per-shard dedup equals global dedup;
* outcomes carry their global sequence number, so sorting the merged output
  restores the serial first-appearance order tuple-for-tuple.

The objects crossing the process boundary pickle compactly:
:class:`~repro.bgp.path.ASPath` and community values define ``__reduce__``
codecs that serialise to positional integer tuples, and the columnar
inference layer (``representation="columnar"``) ships pure-integer counting
groups instead of object tuples — see :mod:`repro.parallel.inference`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.bgp.announcement import PathCommTuple, RouteObservation
from repro.bgp.asn import ASNRegistry
from repro.bgp.prefix import PrefixAllocation
from repro.sanitize.filters import SanitationConfig, SanitationStats
from repro.parallel.pool import ShardProcessPool, iter_chunks

#: Observations shipped to the worker fleet per scatter/gather round-trip.
DEFAULT_BATCH_SIZE = 4096


def parallel_unique_tuples(
    observations: Iterable[RouteObservation],
    workers: int,
    *,
    asn_registry: Optional[ASNRegistry] = None,
    prefix_allocation: Optional[PrefixAllocation] = None,
    sanitation: Optional[SanitationConfig] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Tuple[List[PathCommTuple], SanitationStats]:
    """Sanitize + deduplicate *observations* on *workers* processes.

    Returns ``(unique tuples, merged sanitation stats)`` identical to a
    serial :meth:`Sanitizer.to_unique_tuples` run over the same iterable.
    The input may be lazy; it is consumed in batches of *batch_size*.
    """
    indexed: List[Tuple[int, PathCommTuple]] = []
    with ShardProcessPool(
        shards=workers,
        workers=workers,
        asn_registry=asn_registry,
        prefix_allocation=prefix_allocation,
        sanitation=sanitation,
    ) as pool:
        for batch in iter_chunks(enumerate(observations), batch_size):
            for seq, _shard, outcome in pool.process_batch(batch):
                if outcome is not None and outcome[1] is not None:
                    indexed.append((seq, outcome[1]))
        stats = pool.sanitation_stats()
    indexed.sort(key=lambda item: item[0])
    return [item[1] for item in indexed], stats
