"""Multi-process counting for the column and row inference algorithms.

Both algorithms spend essentially all their time in counting phases that are
pure functions of ``(tuple chunk, decisions)`` and produce commutative
per-AS sums (see :mod:`repro.core.column`).  That makes them map-reducible:
split the prepared tuples into one chunk per worker, count every phase on
all chunks concurrently, and merge the per-chunk deltas at the phase barrier
before the decision view for the next phase is taken.

Because the merged deltas are exactly the deltas a single process would have
produced over the concatenated chunk list, the resulting counter stores,
decision views, stall behaviour, and hence the final
:class:`~repro.core.results.ClassificationResult` are **identical** to the
serial :class:`~repro.core.column.ColumnInference` /
:class:`~repro.core.row.RowInference` — a property the test suite pins down
tuple-for-tuple.

The chunks are shipped to the pool workers once, through the pool
initializer (a no-copy fork inheritance on platforms with the ``fork`` start
method); per-phase messages then carry only ``(chunk index, column,
decision view)``.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bgp.announcement import PathCommTuple
from repro.bgp.asn import ASN
from repro.core.column import (
    REPRESENTATIONS,
    ColumnInferenceReport,
    PhaseDelta,
    PreparedTuple,
    count_forwarding_phase,
    count_forwarding_phase_packed,
    count_tagging_phase,
    count_tagging_phase_packed,
    merge_phase_deltas,
    prepare_tuple,
)
from repro.core.counters import CounterStore, DecisionView, PackedCounterStore
from repro.core.matrix import GroupList
from repro.core.results import ClassificationResult
from repro.core.row import RowDelta, count_row_phase, count_row_phase_packed
from repro.core.thresholds import Thresholds
from repro.core.tuples import ColumnarBatch, TupleTable

#: Below this many tuples the pool start-up cost dwarfs the counting work.
MIN_PARALLEL_TUPLES = 256

#: The tuple chunks of the current pool's workers (set by the initializer).
#: Either prepared object tuples or columnar counting groups — the per-phase
#: task messages pick the matching kernel.
_WORKER_CHUNKS: Optional[List[List]] = None


def _init_chunks(chunks: Optional[List[List]]) -> None:
    """Pool initializer: pin the prepared tuple chunks in the worker."""
    global _WORKER_CHUNKS
    _WORKER_CHUNKS = chunks


def _count_column_chunk(
    task: Tuple[int, str, int, DecisionView]
) -> Tuple[PhaseDelta, int]:
    """Count one phase of one column over one worker-resident chunk."""
    chunk_index, phase, column, decisions = task
    chunk = _WORKER_CHUNKS[chunk_index]
    count = count_tagging_phase if phase == "tagging" else count_forwarding_phase
    return count(chunk, column, decisions)


def _count_packed_chunk(
    task: Tuple[int, str, int, bytes, bytes]
) -> Tuple[Dict[int, List[int]], int]:
    """Columnar twin of :func:`_count_column_chunk`.

    The chunks are counting groups of plain integers and the per-phase
    message carries the decision state as two flag byte-strings — both
    dramatically cheaper to pickle than object tuples / frozenset views.
    """
    chunk_index, phase, column, tagger_flags, forward_flags = task
    chunk = _WORKER_CHUNKS[chunk_index]
    count = count_tagging_phase_packed if phase == "tagging" else count_forwarding_phase_packed
    return count(chunk, column, tagger_flags, forward_flags)


def _count_row_chunk(chunk_index: int) -> RowDelta:
    """Count the row deltas of one worker-resident chunk."""
    return count_row_phase(_WORKER_CHUNKS[chunk_index])


def _count_row_chunk_packed(chunk_index: int) -> Dict[int, List[int]]:
    """Count the packed row deltas of one worker-resident group chunk."""
    return count_row_phase_packed(_WORKER_CHUNKS[chunk_index])


def split_chunks(prepared: Sequence, parts: int) -> List[List]:
    """Split a work-unit sequence into at most *parts* contiguous, balanced chunks.

    A :class:`~repro.core.matrix.GroupList` input yields GroupList chunks,
    so each pinned worker chunk keeps its own lazily-built matrix cache.
    """
    kind = GroupList if isinstance(prepared, GroupList) else list
    parts = max(1, min(parts, len(prepared)))
    size, remainder = divmod(len(prepared), parts)
    chunks: List[List] = []
    start = 0
    for index in range(parts):
        end = start + size + (1 if index < remainder else 0)
        chunks.append(kind(prepared[start:end]))
        start = end
    return chunks


class ParallelColumnInference:
    """Byte-identical drop-in for :class:`ColumnInference` on N processes."""

    def __init__(
        self,
        thresholds: Optional[Thresholds] = None,
        *,
        workers: int = 2,
        max_columns: Optional[int] = None,
        stop_when_stalled: bool = True,
        context: Optional[str] = None,
        representation: str = "object",
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if representation not in REPRESENTATIONS:
            raise ValueError(f"unknown representation {representation!r}")
        self.thresholds = thresholds or Thresholds()
        self.workers = workers
        self.max_columns = max_columns
        self.stop_when_stalled = stop_when_stalled
        self.representation = representation
        self.report = ColumnInferenceReport()
        self._context = context

    def run(self, tuples: Sequence[PathCommTuple]) -> ClassificationResult:
        """Infer the community usage classification for every observed AS."""
        if self.representation == "columnar":
            return self._run_packed(tuples)
        prepared: List[PreparedTuple] = []
        observed: Set[ASN] = set()
        max_length = 0
        for item in tuples:
            entry = prepare_tuple(item)
            observed.update(entry[0])
            prepared.append(entry)
            if len(entry[0]) > max_length:
                max_length = len(entry[0])

        store = CounterStore(self.thresholds)
        self.report = ColumnInferenceReport()
        if not prepared:
            return ClassificationResult(store=store, observed_ases=observed, algorithm="column")

        limit = max_length if self.max_columns is None else min(max_length, self.max_columns)
        try:
            if self.workers == 1 or len(prepared) < MIN_PARALLEL_TUPLES:
                _init_chunks([prepared])  # the serial fall-back reads the global too
                self._run_columns(store, [prepared], limit, map)
            else:
                chunks = split_chunks(prepared, self.workers)
                ctx = multiprocessing.get_context(self._context)
                with ctx.Pool(
                    len(chunks), initializer=_init_chunks, initargs=(chunks,)
                ) as pool:
                    self._run_columns(store, chunks, limit, pool.map)
        finally:
            _init_chunks(None)  # don't pin the dataset in the parent process
        return ClassificationResult(store=store, observed_ases=observed, algorithm="column")

    def _run_packed(self, tuples: Sequence[PathCommTuple]) -> ClassificationResult:
        """Columnar run: intern once, ship integer counting groups."""
        table = TupleTable()
        batch = ColumnarBatch(table)
        for item in tuples:
            batch.add_tuple(item)
        observed = batch.observed_ases()
        self.report = ColumnInferenceReport()
        if not len(batch):
            return ClassificationResult(
                store=CounterStore(self.thresholds), observed_ases=observed, algorithm="column"
            )

        groups = batch.counting_groups()
        limit = (
            table.max_path_length
            if self.max_columns is None
            else min(table.max_path_length, self.max_columns)
        )
        packed = PackedCounterStore(self.thresholds, slots=table.as_count)
        try:
            if self.workers == 1 or len(groups) < MIN_PARALLEL_TUPLES:
                _init_chunks([groups])
                self._run_columns_packed(packed, [groups], table.as_count, limit, map)
            else:
                chunks = split_chunks(groups, self.workers)
                ctx = multiprocessing.get_context(self._context)
                with ctx.Pool(
                    len(chunks), initializer=_init_chunks, initargs=(chunks,)
                ) as pool:
                    self._run_columns_packed(packed, chunks, table.as_count, limit, pool.map)
        finally:
            _init_chunks(None)
        return ClassificationResult(
            store=packed.to_store(table.as_values()), observed_ases=observed, algorithm="column"
        )

    def _run_columns_packed(self, packed, chunks, slots, limit, map_tasks) -> None:
        """The column loop over packed chunks (fresh flags before each phase)."""
        for column in range(1, limit + 1):
            tagging_delta, tagging_increments = self._count_phase_packed(
                map_tasks, chunks, "tagging", column, packed.decision_flags(slots)
            )
            packed.apply_tagging_delta(tagging_delta)
            forwarding_delta, forwarding_increments = self._count_phase_packed(
                map_tasks, chunks, "forwarding", column, packed.decision_flags(slots)
            )
            packed.apply_forwarding_delta(forwarding_delta)
            self.report.columns_processed = column
            self.report.tagging_counts_per_column.append(tagging_increments)
            self.report.forwarding_counts_per_column.append(forwarding_increments)
            if (
                self.stop_when_stalled
                and column > 1
                and tagging_increments == 0
                and forwarding_increments == 0
            ):
                break

    @staticmethod
    def _count_phase_packed(
        map_tasks, chunks, phase, column, flags
    ) -> Tuple[Dict[int, List[int]], int]:
        """One packed phase over all chunks, merged at the barrier."""
        tagger_flags, forward_flags = (bytes(flags[0]), bytes(flags[1]))
        outcomes = list(
            map_tasks(
                _count_packed_chunk,
                [
                    (index, phase, column, tagger_flags, forward_flags)
                    for index in range(len(chunks))
                ],
            )
        )
        delta = merge_phase_deltas(delta for delta, _ in outcomes)
        increments = sum(increments for _, increments in outcomes)
        return delta, increments

    def _run_columns(self, store, chunks, limit, map_tasks) -> None:
        """The column loop; counting is dispatched through *map_tasks*."""
        for column in range(1, limit + 1):
            tagging_delta, tagging_increments = self._count_phase(
                map_tasks, chunks, "tagging", column, store.decision_view()
            )
            store.apply_tagging_delta(tagging_delta)
            forwarding_delta, forwarding_increments = self._count_phase(
                map_tasks, chunks, "forwarding", column, store.decision_view()
            )
            store.apply_forwarding_delta(forwarding_delta)
            self.report.columns_processed = column
            self.report.tagging_counts_per_column.append(tagging_increments)
            self.report.forwarding_counts_per_column.append(forwarding_increments)
            if (
                self.stop_when_stalled
                and column > 1
                and tagging_increments == 0
                and forwarding_increments == 0
            ):
                break

    @staticmethod
    def _count_phase(map_tasks, chunks, phase, column, decisions) -> Tuple[PhaseDelta, int]:
        """One phase over all chunks, merged at the barrier."""
        outcomes = map_tasks(
            _count_column_chunk,
            [(index, phase, column, decisions) for index in range(len(chunks))],
        )
        outcomes = list(outcomes)
        delta = merge_phase_deltas(delta for delta, _ in outcomes)
        increments = sum(increments for _, increments in outcomes)
        return delta, increments


class ParallelRowInference:
    """Byte-identical drop-in for :class:`RowInference` on N processes."""

    def __init__(
        self,
        thresholds: Optional[Thresholds] = None,
        *,
        workers: int = 2,
        context: Optional[str] = None,
        representation: str = "object",
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if representation not in REPRESENTATIONS:
            raise ValueError(f"unknown representation {representation!r}")
        self.thresholds = thresholds or Thresholds()
        self.workers = workers
        self.representation = representation
        self._context = context

    def run(self, tuples: Sequence[PathCommTuple]) -> ClassificationResult:
        """Infer classifications with the row-based counting rules."""
        if self.representation == "columnar":
            return self._run_packed(tuples)
        prepared: List[PreparedTuple] = []
        observed: Set[ASN] = set()
        for item in tuples:
            entry = prepare_tuple(item)
            observed.update(entry[0])
            prepared.append(entry)

        store = CounterStore(self.thresholds)
        if not prepared:
            return ClassificationResult(store=store, observed_ases=observed, algorithm="row")

        if self.workers == 1 or len(prepared) < MIN_PARALLEL_TUPLES:
            deltas = [count_row_phase(prepared)]
        else:
            chunks = split_chunks(prepared, self.workers)
            ctx = multiprocessing.get_context(self._context)
            with ctx.Pool(
                len(chunks), initializer=_init_chunks, initargs=(chunks,)
            ) as pool:
                deltas = pool.map(_count_row_chunk, range(len(chunks)))
        for delta in deltas:
            store.apply_delta(delta)
        return ClassificationResult(store=store, observed_ases=observed, algorithm="row")

    def _run_packed(self, tuples: Sequence[PathCommTuple]) -> ClassificationResult:
        """Columnar run: intern once, ship integer counting groups."""
        table = TupleTable()
        batch = ColumnarBatch(table)
        for item in tuples:
            batch.add_tuple(item)
        observed = batch.observed_ases()
        if not len(batch):
            return ClassificationResult(
                store=CounterStore(self.thresholds), observed_ases=observed, algorithm="row"
            )
        groups = batch.counting_groups()
        packed = PackedCounterStore(self.thresholds, slots=table.as_count)
        if self.workers == 1 or len(groups) < MIN_PARALLEL_TUPLES:
            deltas = [count_row_phase_packed(groups)]
        else:
            chunks = split_chunks(groups, self.workers)
            ctx = multiprocessing.get_context(self._context)
            with ctx.Pool(
                len(chunks), initializer=_init_chunks, initargs=(chunks,)
            ) as pool:
                deltas = pool.map(_count_row_chunk_packed, range(len(chunks)))
        for delta in deltas:
            packed.apply_delta(delta)
        return ClassificationResult(
            store=packed.to_store(table.as_values()), observed_ases=observed, algorithm="row"
        )
