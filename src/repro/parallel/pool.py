"""Shard-affine sanitation worker processes.

The sanitation + deduplication stage is stateful per shard (every shard owns
the dedup set of its slice of the tuple space), so it cannot run on an
anonymous task pool: the same shard must always be served by the same
process.  :class:`ShardProcessPool` therefore starts a fixed set of worker
processes, assigns every shard to exactly one of them (``shard_id % workers``),
and speaks a small scatter/gather protocol over pipes:

* ``process`` -- sanitize + dedup a batch of ``(seq, observation)`` items and
  return the per-item outcomes plus refreshed shard gauges;
* ``evict`` -- forget expired tuple keys (sliding windows);
* ``state`` / ``load_state`` -- full per-shard checkpoint state, so the
  in-process :class:`~repro.stream.sharding.ShardRouter` and the process pool
  can hand their state to each other;
* ``stats`` -- per-shard sanitation statistics.

Routing uses the same :func:`~repro.stream.sharding.shard_of` hash as the
synchronous engine, so any ``(shards, workers)`` combination yields exactly
the partitioning — and hence exactly the classification — of a serial run.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.bgp.announcement import PathCommTuple, RouteObservation
from repro.bgp.asn import ASNRegistry
from repro.bgp.prefix import PrefixAllocation
from repro.sanitize.filters import SanitationConfig, SanitationStats
from repro.stream.sharding import ShardWorker, shard_of

#: One scatter item: global sequence number, owning shard, observation.
WorkItem = Tuple[int, int, RouteObservation]

#: One gather item: sequence number, owning shard, and the shard worker's
#: outcome (``None`` = dropped, else ``(key, new_tuple_or_None)``).
WorkResult = Tuple[int, int, Optional[Tuple[Tuple, Optional[PathCommTuple]]]]


def _worker_loop(conn, shard_ids, asn_registry, prefix_allocation, sanitation) -> None:
    """Entry point of one worker process (owns one or more shards)."""
    workers: Dict[int, ShardWorker] = {
        shard_id: ShardWorker(
            shard_id,
            asn_registry=asn_registry,
            prefix_allocation=prefix_allocation,
            sanitation=sanitation,
        )
        for shard_id in shard_ids
    }
    try:
        while True:
            message = conn.recv()
            command = message[0]
            if command == "process":
                # One block pass per owned shard instead of one call per
                # event: the shard workers' block path is where the memo and
                # dedup dispatch is amortised.  Outcomes are identical to
                # per-event calls; the parent re-sorts by seq anyway.
                by_shard: Dict[int, Tuple[List[int], List[RouteObservation]]] = {}
                for seq, shard_id, observation in message[1]:
                    group = by_shard.get(shard_id)
                    if group is None:
                        group = by_shard[shard_id] = ([], [])
                    group[0].append(seq)
                    group[1].append(observation)
                results: List[WorkResult] = []
                for shard_id, (seqs, observations) in by_shard.items():
                    results.extend(
                        zip(seqs, [shard_id] * len(seqs),
                            workers[shard_id].process_block(observations))
                    )
                gauges = {
                    shard_id: (worker.unique_tuples, worker.events_processed)
                    for shard_id, worker in workers.items()
                }
                conn.send(("results", results, gauges))
            elif command == "evict":
                removed = 0
                for shard_id, keys in message[1].items():
                    removed += workers[shard_id].evict(keys)
                gauges = {
                    shard_id: (worker.unique_tuples, worker.events_processed)
                    for shard_id, worker in workers.items()
                }
                conn.send(("evicted", removed, gauges))
            elif command == "state":
                conn.send(
                    ("state", {shard_id: w.state_dict() for shard_id, w in workers.items()})
                )
            elif command == "load_state":
                for shard_id, state in message[1].items():
                    workers[shard_id].load_state_dict(state)
                conn.send(("ok",))
            elif command == "stats":
                conn.send(
                    ("stats", {shard_id: w.sanitizer.stats for shard_id, w in workers.items()})
                )
            elif command == "close":
                conn.send(("closed",))
                return
            else:  # pragma: no cover - protocol misuse
                conn.send(("error", f"unknown command {command!r}"))
    except EOFError:  # pragma: no cover - parent died; exit quietly
        return
    except Exception as exc:  # surface worker failures to the parent
        conn.send(("error", f"{type(exc).__name__}: {exc}"))


class ShardProcessPool:
    """A fixed fleet of processes hosting the per-shard sanitation state."""

    def __init__(
        self,
        shards: int,
        workers: int,
        *,
        asn_registry: Optional[ASNRegistry] = None,
        prefix_allocation: Optional[PrefixAllocation] = None,
        sanitation: Optional[SanitationConfig] = None,
        context: Optional[str] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if (
            shards > 1
            and sanitation is not None
            and not sanitation.prepend_peer_asn
        ):
            # Same invariant as the synchronous ShardRouter deployment: tuple
            # identity must be owned by a single shard, which requires the
            # peer AS to be part of every sanitized path.
            raise ValueError(
                "sharding requires SanitationConfig.prepend_peer_asn "
                "(tuple identity must be owned by a single shard)"
            )
        self.shards = shards
        self.workers = min(workers, shards)
        ctx = multiprocessing.get_context(context)
        self._conns = []
        self._procs = []
        for worker_id in range(self.workers):
            shard_ids = list(range(worker_id, shards, self.workers))
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_loop,
                args=(child_conn, shard_ids, asn_registry, prefix_allocation, sanitation),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        #: Latest known ``(unique_tuples, events_processed)`` per shard.
        self.gauges: Dict[int, Tuple[int, int]] = {
            shard_id: (0, 0) for shard_id in range(shards)
        }

    # -- routing ------------------------------------------------------------------------
    def shard_for(self, observation: RouteObservation) -> int:
        """The shard owning *observation*'s partition."""
        if self.shards == 1:
            return 0
        return shard_of(observation.peer_asn, self.shards)

    def _worker_of(self, shard_id: int) -> int:
        return shard_id % self.workers

    def _recv(self, worker_id: int):
        reply = self._conns[worker_id].recv()
        if reply[0] == "error":
            raise RuntimeError(f"shard worker {worker_id} failed: {reply[1]}")
        return reply

    def _broadcast(self, message: Tuple) -> List:
        for conn in self._conns:
            conn.send(message)
        return [self._recv(worker_id) for worker_id in range(self.workers)]

    # -- scatter / gather -----------------------------------------------------------------
    def process_batch(self, batch: Sequence[Tuple[int, RouteObservation]]) -> List[WorkResult]:
        """Sanitize one batch on the worker fleet; results in sequence order.

        *batch* holds ``(seq, observation)`` items; the returned list is
        sorted by ``seq``, so concatenating batches reproduces the exact
        outcome order of a serial run over the same observations.
        """
        by_worker: Dict[int, List[WorkItem]] = {}
        for seq, observation in batch:
            shard_id = self.shard_for(observation)
            by_worker.setdefault(self._worker_of(shard_id), []).append(
                (seq, shard_id, observation)
            )
        for worker_id, items in by_worker.items():
            self._conns[worker_id].send(("process", items))
        results: List[WorkResult] = []
        for worker_id in by_worker:
            reply = self._recv(worker_id)
            results.extend(reply[1])
            self.gauges.update(reply[2])
        results.sort(key=lambda item: item[0])
        return results

    def evict(self, keys_by_shard: Dict[int, List[Tuple]]) -> int:
        """Evict expired tuple keys, pre-grouped by shard index."""
        by_worker: Dict[int, Dict[int, List[Tuple]]] = {}
        for shard_id, keys in keys_by_shard.items():
            by_worker.setdefault(self._worker_of(shard_id), {})[shard_id] = keys
        for worker_id, shard_keys in by_worker.items():
            self._conns[worker_id].send(("evict", shard_keys))
        removed = 0
        for worker_id in by_worker:
            reply = self._recv(worker_id)
            removed += reply[1]
            self.gauges.update(reply[2])
        return removed

    # -- aggregate views ------------------------------------------------------------------
    @property
    def unique_tuples(self) -> int:
        """Unique tuples across all shards, as of the last gather."""
        return sum(unique for unique, _ in self.gauges.values())

    @property
    def events_processed(self) -> int:
        """Events processed across all shards, as of the last gather."""
        return sum(events for _, events in self.gauges.values())

    def sanitation_stats(self) -> SanitationStats:
        """Merged sanitation statistics across all shards (synchronous)."""
        merged = SanitationStats()
        for reply in self._broadcast(("stats",)):
            for stats in reply[1].values():
                for key, value in stats.as_dict().items():
                    setattr(merged, key, getattr(merged, key) + value)
        return merged

    # -- state hand-off -------------------------------------------------------------------
    def state_dicts(self) -> List[Dict[str, object]]:
        """Per-shard worker states in shard order (for checkpointing)."""
        states: Dict[int, Dict[str, object]] = {}
        for reply in self._broadcast(("state",)):
            states.update(reply[1])
        return [states[shard_id] for shard_id in range(self.shards)]

    def load_state_dicts(self, states: Sequence[Dict[str, object]]) -> None:
        """Push per-shard worker states (shard order) into the processes."""
        if len(states) != self.shards:
            raise ValueError(f"got {len(states)} shard states for {self.shards} shards")
        by_worker: Dict[int, Dict[int, Dict[str, object]]] = {}
        for shard_id, state in enumerate(states):
            by_worker.setdefault(self._worker_of(shard_id), {})[shard_id] = state
        for worker_id, shard_states in by_worker.items():
            self._conns[worker_id].send(("load_state", shard_states))
        for worker_id in by_worker:
            self._recv(worker_id)
        for shard_id, state in enumerate(states):
            self.gauges[shard_id] = (len(state["seen"]), state["events_processed"])

    # -- lifecycle ------------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker fleet down (idempotent)."""
        for conn, proc in zip(self._conns, self._procs):
            if proc.is_alive():
                try:
                    conn.send(("close",))
                    conn.recv()
                except (BrokenPipeError, EOFError, OSError):  # pragma: no cover
                    pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()

    def __enter__(self) -> "ShardProcessPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def iter_chunks(items: Iterable, size: int) -> Iterator[List]:
    """Yield consecutive chunks of *items* with at most *size* elements."""
    chunk: List = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk
