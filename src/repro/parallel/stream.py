"""Multi-process execution of the streaming engine.

:class:`ParallelStreamEngine` keeps the windowing, classification, and
checkpoint logic of :class:`~repro.stream.engine.StreamEngine` in the main
process and moves only the per-shard sanitation + dedup state into a
:class:`~repro.parallel.pool.ShardProcessPool`.  Events are read in blocks
(one scatter/gather round-trip per block, one block pass per shard inside
each worker process); when an event's timestamp crosses a window boundary
the block is split and everything before the crossing event is drained
*before* the window flushes, so every window snapshot — and the fully
drained final classification — is identical to the synchronous engine's,
event for event.

The one intentional divergence: ``checkpoint_every`` auto-checkpoints are
deferred to the next batch boundary, where the pool state and the classifier
state are mutually consistent.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bgp.announcement import RouteObservation
from repro.core.results import ClassificationResult
from repro.sanitize.filters import SanitationStats
from repro.stream.engine import StreamConfig, StreamEngine, TupleKey
from repro.stream.sources import iter_event_blocks
from repro.parallel.pool import ShardProcessPool

#: Events shipped to the worker fleet per scatter/gather round-trip.
DEFAULT_STREAM_BATCH = 1024


class ParallelStreamEngine(StreamEngine):
    """A :class:`StreamEngine` whose shard workers live in other processes."""

    def __init__(
        self,
        config: Optional[StreamConfig] = None,
        *,
        workers: int = 2,
        batch_size: int = DEFAULT_STREAM_BATCH,
        **kwargs,
    ) -> None:
        super().__init__(config, **kwargs)
        if self._table is not None:
            # The pool's worker processes sanitize against their own address
            # spaces; a shared intern table would need cross-process id
            # coordination.  Columnar streaming is the synchronous engine's
            # fast path; the parallel engine ships object tuples.
            raise ValueError(
                "ParallelStreamEngine supports representation='object' only; "
                "use StreamEngine for the columnar hot path"
            )
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if batch_size < 1:
            raise ValueError(f"batch size must be positive, got {batch_size}")
        self.workers = workers
        self.batch_size = batch_size
        self._pool: Optional[ShardProcessPool] = None
        self._checkpoint_pending = False

    # -- driving ------------------------------------------------------------------------
    def ingest(self, observation: RouteObservation) -> None:
        """Single-event ingestion is owned by the worker fleet; use :meth:`run`."""
        raise NotImplementedError(
            "ParallelStreamEngine processes events in batches; drive it with run()"
        )

    def run(
        self, source, *, finish: bool = True
    ) -> ClassificationResult:
        """Drain *source* through the worker fleet; returns the final result."""
        pool = ShardProcessPool(
            self.config.shards,
            self.workers,
            asn_registry=self._asn_registry,
            prefix_allocation=self._prefix_allocation,
            sanitation=self.config.sanitation,
        )
        self._pool = pool
        try:
            # Hand any restored shard state to the processes.
            pool.load_state_dicts([worker.state_dict() for worker in self.router.workers])
            # One scatter/gather round-trip per event block.  The clock
            # advances block-at-a-time exactly like the synchronous engine;
            # a window cut splits the block so everything before the
            # crossing event is drained (and flushed) first.
            for block in iter_event_blocks(source, self.batch_size):
                self._note_block(len(block))
                closes = self.clock.advance_block(
                    [event.timestamp for event in block]
                )
                start = 0
                for position, closed in closes:
                    if position > start:
                        self._drain(block[start:position])
                    self._flush(closed)
                    start = position
                self._drain(block[start:] if start else block)
            self._sync_router_state()
            if finish:
                return self.finish()
            return self.result()
        finally:
            self._pool = None
            pool.close()

    def _drain(self, batch: List[RouteObservation]) -> None:
        """Scatter one batch to the fleet and absorb the gathered outcomes."""
        if not batch:
            return
        results = self._pool.process_batch(list(enumerate(batch)))
        for seq, shard_id, outcome in results:
            self._absorb(batch[seq].timestamp, shard_id, outcome)
        if self._checkpoint_pending:
            self._checkpoint_pending = False
            self.checkpoint()

    # -- state plumbing -----------------------------------------------------------------
    def _sync_router_state(self) -> None:
        """Mirror the fleet's shard state into the in-process router."""
        for worker, state in zip(self.router.workers, self._pool.state_dicts()):
            worker.load_state_dict(state)

    def _router_evict(self, by_shard: Dict[int, List[TupleKey]]) -> None:
        if self._pool is not None:
            self._pool.evict(by_shard)
        else:
            super()._router_evict(by_shard)

    def _auto_checkpoint(self) -> None:
        # Mid-batch the pool has already sanitized events the classifier has
        # not absorbed yet; defer to the batch boundary where both agree.
        self._checkpoint_pending = True

    def checkpoint(self):
        """Persist the engine state (pulls shard state off the fleet first)."""
        if self._pool is not None:
            self._sync_router_state()
        return super().checkpoint()

    # -- views --------------------------------------------------------------------------
    @property
    def unique_tuples(self) -> int:
        """Unique ``(path, comm)`` tuples currently folded in."""
        if self._pool is not None:
            return self._pool.unique_tuples
        return super().unique_tuples

    def sanitation_stats(self) -> SanitationStats:
        """Merged sanitation statistics across all shards."""
        if self._pool is not None:
            return self._pool.sanitation_stats()
        return super().sanitation_stats()
