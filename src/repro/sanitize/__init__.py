"""Data sanitation pipeline (paper Section 4.1).

Before inference the raw collector data is filtered and transformed "so as
not to impart unintentional bias":

1. routing information with unallocated prefixes or ASNs is removed,
2. AS paths containing AS_SETs are removed,
3. the MRT Peer AS Number is prepended to the AS path when ``A_1`` differs
   from it (IXP route servers),
4. path prepending is collapsed, and
5. observations are deduplicated into unique ``(path, comm)`` tuples.

In addition, :mod:`repro.sanitize.sources` classifies each community of an
observation into the paper's source groups *peer*, *foreign*, *stray*, and
*private* (Section 3.2).
"""

from repro.sanitize.filters import SanitationConfig, SanitationStats, Sanitizer
from repro.sanitize.sources import CommunitySource, classify_community, classify_community_set

__all__ = [
    "SanitationConfig",
    "SanitationStats",
    "Sanitizer",
    "CommunitySource",
    "classify_community",
    "classify_community_set",
]
