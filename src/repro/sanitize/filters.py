"""The sanitation pipeline itself.

:class:`Sanitizer` turns raw decoded collector data (RIB entries and update
messages) into the deduplicated list of ``(path, comm)`` tuples that the
inference algorithm consumes, applying the filtering and transformation steps
of Section 4.1 and recording statistics about what was dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.bgp.announcement import PathCommTuple, RouteObservation
from repro.bgp.asn import ASN, ASNRegistry, is_public_asn
from repro.bgp.community import CommunitySet
from repro.bgp.messages import BGPUpdate, RIBEntry
from repro.bgp.path import ASPath
from repro.bgp.prefix import PrefixAllocation


@dataclass
class SanitationConfig:
    """Switches for the individual sanitation steps.

    All steps default to the paper's behaviour; tests and ablations can turn
    individual steps off to measure their effect.
    """

    drop_unallocated_prefixes: bool = True
    drop_unallocated_asns: bool = True
    drop_as_sets: bool = True
    drop_loops: bool = True
    prepend_peer_asn: bool = True
    collapse_prepending: bool = True
    max_path_length: Optional[int] = None


#: Path-level counters replayed when a block memo hit skips :meth:`sanitize_path`.
_PATH_STAT_FIELDS: Tuple[str, ...] = (
    "dropped_as_set",
    "dropped_empty_path",
    "peer_prepended",
    "prepending_collapsed",
    "dropped_loop",
    "dropped_unallocated_asn",
    "dropped_too_long",
)


@dataclass
class SanitationStats:
    """Counters describing what the sanitizer did."""

    observations_in: int = 0
    observations_out: int = 0
    dropped_unallocated_prefix: int = 0
    dropped_unallocated_asn: int = 0
    dropped_as_set: int = 0
    dropped_loop: int = 0
    dropped_too_long: int = 0
    dropped_empty_path: int = 0
    peer_prepended: int = 0
    prepending_collapsed: int = 0

    @property
    def dropped_total(self) -> int:
        """Number of observations removed by any filter."""
        return self.observations_in - self.observations_out

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for reporting."""
        return {
            "observations_in": self.observations_in,
            "observations_out": self.observations_out,
            "dropped_unallocated_prefix": self.dropped_unallocated_prefix,
            "dropped_unallocated_asn": self.dropped_unallocated_asn,
            "dropped_as_set": self.dropped_as_set,
            "dropped_loop": self.dropped_loop,
            "dropped_too_long": self.dropped_too_long,
            "dropped_empty_path": self.dropped_empty_path,
            "peer_prepended": self.peer_prepended,
            "prepending_collapsed": self.prepending_collapsed,
        }


class Sanitizer:
    """Applies the Section 4.1 sanitation steps to route observations."""

    def __init__(
        self,
        *,
        asn_registry: Optional[ASNRegistry] = None,
        prefix_allocation: Optional[PrefixAllocation] = None,
        config: Optional[SanitationConfig] = None,
    ) -> None:
        self.asn_registry = asn_registry
        self.prefix_allocation = prefix_allocation
        self.config = config or SanitationConfig()
        self.stats = SanitationStats()
        # Memo for the pure is_public_asn predicate; paths repeat heavily in
        # update streams, and registry allocation (which can change) is
        # deliberately NOT cached.
        self._public_asn_cache: Dict[ASN, bool] = {}

    # -- single-observation path --------------------------------------------
    def sanitize_path(self, path: ASPath, peer_asn: Optional[ASN] = None) -> Optional[ASPath]:
        """Sanitize one AS path; return ``None`` if it must be dropped."""
        config = self.config
        if config.drop_as_sets and path.has_as_set:
            self.stats.dropped_as_set += 1
            return None
        if len(path) == 0:
            self.stats.dropped_empty_path += 1
            return None

        if config.prepend_peer_asn and peer_asn is not None and path.peer != peer_asn:
            path = path.prepend_peer(peer_asn)
            self.stats.peer_prepended += 1

        if config.collapse_prepending and path.has_prepending:
            path = path.collapse_prepending()
            self.stats.prepending_collapsed += 1

        if config.drop_loops and path.has_loop:
            self.stats.dropped_loop += 1
            return None

        if config.drop_unallocated_asns:
            cache = self._public_asn_cache
            registry = self.asn_registry
            for asn in path:
                public = cache.get(asn)
                if public is None:
                    public = cache[asn] = is_public_asn(asn)
                if not public or (registry is not None and not registry.is_allocated(asn)):
                    self.stats.dropped_unallocated_asn += 1
                    return None

        if config.max_path_length is not None and len(path) > config.max_path_length:
            self.stats.dropped_too_long += 1
            return None
        return path

    def sanitize_observation(self, observation: RouteObservation) -> Optional[RouteObservation]:
        """Sanitize one observation; return ``None`` if it must be dropped."""
        self.stats.observations_in += 1
        if (
            self.config.drop_unallocated_prefixes
            and self.prefix_allocation is not None
            and not self.prefix_allocation.is_allocated(observation.prefix)
        ):
            self.stats.dropped_unallocated_prefix += 1
            return None

        path = self.sanitize_path(observation.path, observation.peer_asn)
        if path is None:
            return None

        self.stats.observations_out += 1
        if path is observation.path:
            return observation
        return RouteObservation(
            collector=observation.collector,
            peer_asn=observation.peer_asn,
            prefix=observation.prefix,
            path=path,
            communities=observation.communities,
            timestamp=observation.timestamp,
            from_rib=observation.from_rib,
        )

    # -- block path -----------------------------------------------------------
    def sanitize_block(
        self, observations: Sequence[RouteObservation]
    ) -> List[Optional[RouteObservation]]:
        """Sanitize one decoded block; return a mask-aligned result list.

        The returned list has one entry per input observation — the sanitized
        observation, or ``None`` where a filter dropped it — so callers can
        keep block positions (timestamps, shard assignments) aligned.  Within
        the block, path sanitation is memoized per ``(path, peer_asn)`` with
        the recorded stat increments replayed on each hit, so the counters
        stay event-for-event identical to the per-observation path.  The memo
        lives only for this call: registries and allocations cannot mutate
        mid-call, so hits are always consistent, and nothing goes stale
        across calls.
        """
        stats = self.stats
        allocation = self.prefix_allocation
        check_prefix = self.config.drop_unallocated_prefixes
        fields = _PATH_STAT_FIELDS
        memo: Dict[
            Tuple[ASPath, Optional[ASN]], Tuple[Optional[ASPath], Tuple[int, ...]]
        ] = {}
        out: List[Optional[RouteObservation]] = []
        append = out.append
        for observation in observations:
            stats.observations_in += 1
            if (
                check_prefix
                and allocation is not None
                and not allocation.is_allocated(observation.prefix)
            ):
                stats.dropped_unallocated_prefix += 1
                append(None)
                continue
            key = (observation.path, observation.peer_asn)
            hit = memo.get(key)
            if hit is None:
                before = [getattr(stats, name) for name in fields]
                path = self.sanitize_path(observation.path, observation.peer_asn)
                memo[key] = (
                    path,
                    tuple(
                        getattr(stats, name) - prior
                        for name, prior in zip(fields, before)
                    ),
                )
            else:
                path, deltas = hit
                for name, delta in zip(fields, deltas):
                    if delta:
                        setattr(stats, name, getattr(stats, name) + delta)
            if path is None:
                append(None)
                continue
            stats.observations_out += 1
            if path is observation.path:
                append(observation)
            else:
                append(
                    RouteObservation(
                        collector=observation.collector,
                        peer_asn=observation.peer_asn,
                        prefix=observation.prefix,
                        path=path,
                        communities=observation.communities,
                        timestamp=observation.timestamp,
                        from_rib=observation.from_rib,
                    )
                )
        return out

    def iter_unique_tuples_blocked(
        self,
        observations: Iterable[RouteObservation],
        block_size: int,
        deduper: Optional["TupleDeduper"] = None,
    ) -> Iterator[PathCommTuple]:
        """Blocked variant of :meth:`iter_unique_tuples`.

        Buffers *observations* into blocks of *block_size* and runs
        :meth:`sanitize_block` over each, amortizing per-event dispatch while
        yielding exactly the same unique tuples in the same order.
        """
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        deduper = deduper if deduper is not None else TupleDeduper()
        block: List[RouteObservation] = []
        append = block.append
        for observation in observations:
            append(observation)
            if len(block) >= block_size:
                yield from self._unique_from_block(block, deduper)
                block = []
                append = block.append
        if block:
            yield from self._unique_from_block(block, deduper)

    def _unique_from_block(
        self, block: Sequence[RouteObservation], deduper: "TupleDeduper"
    ) -> Iterator[PathCommTuple]:
        for sanitized in self.sanitize_block(block):
            if sanitized is not None:
                unique = deduper.add(sanitized)
                if unique is not None:
                    yield unique

    # -- bulk paths -----------------------------------------------------------
    def sanitize_observations(
        self, observations: Iterable[RouteObservation]
    ) -> Iterator[RouteObservation]:
        """Yield the sanitized subset of *observations*."""
        for observation in observations:
            sanitized = self.sanitize_observation(observation)
            if sanitized is not None:
                yield sanitized

    def iter_unique_tuples(
        self,
        observations: Iterable[RouteObservation],
        deduper: Optional["TupleDeduper"] = None,
    ) -> Iterator[PathCommTuple]:
        """Lazily sanitize and deduplicate into unique ``(path, comm)`` tuples.

        This is the streaming fast path: observations are pulled one at a
        time, so arbitrarily large inputs flow through in constant memory
        (modulo the dedup set).  Passing a shared :class:`TupleDeduper` lets
        several calls (e.g. successive stream batches) share dedup state.
        """
        deduper = deduper if deduper is not None else TupleDeduper()
        for observation in self.sanitize_observations(observations):
            unique = deduper.add(observation)
            if unique is not None:
                yield unique

    def to_unique_tuples(self, observations: Iterable[RouteObservation]) -> List[PathCommTuple]:
        """Sanitize and deduplicate into unique ``(path, comm)`` tuples."""
        return list(self.iter_unique_tuples(observations))


class TupleDeduper:
    """Stateful first-appearance deduplication of ``(path, comm)`` pairs.

    The streaming engine keeps one deduper per shard so that replaying an
    archive yields exactly the unique tuples the batch pipeline would see.
    Keys are ``(path, comm)`` object pairs by default; the columnar engine
    dedupes on interned ``(path_id, comm_id)`` id pairs through
    :meth:`add_key` instead — any hashable key works.
    """

    __slots__ = ("_seen",)

    def __init__(self, seen: Optional[Set[Tuple]] = None) -> None:
        self._seen: Set[Tuple] = set(seen) if seen is not None else set()

    def __len__(self) -> int:
        return len(self._seen)

    def __contains__(self, key: object) -> bool:
        return key in self._seen

    def add(self, observation: RouteObservation) -> Optional[PathCommTuple]:
        """Return the observation's tuple if unseen so far, else ``None``."""
        key = (observation.path, observation.communities)
        if key in self._seen:
            return None
        self._seen.add(key)
        return PathCommTuple(observation.path, observation.communities)

    def add_key(self, key: Tuple) -> bool:
        """Record an arbitrary hashable key; ``True`` when it was new."""
        if key in self._seen:
            return False
        self._seen.add(key)
        return True

    def discard(self, keys: Iterable[Tuple]) -> int:
        """Forget *keys* (window eviction); returns how many were present."""
        removed = 0
        for key in keys:
            if key in self._seen:
                self._seen.remove(key)
                removed += 1
        return removed

    def state_dict(self) -> Set[Tuple]:
        """A **copy** of the seen-set (checkpointing).

        A copy on both sides of the (de)serialisation boundary keeps a
        snapshot taken mid-stream frozen while the engine keeps deduping —
        returning the live set here once let further ``add()`` calls leak
        into already-written checkpoints.
        """
        return set(self._seen)

    @classmethod
    def from_state(cls, state: Set[Tuple]) -> "TupleDeduper":
        """Rebuild a deduper from :meth:`state_dict` output (copies)."""
        return cls(seen=state)


def observations_from_rib_entries(
    collector: str, entries: Iterable[RIBEntry]
) -> Iterator[RouteObservation]:
    """Convert decoded RIB entries into route observations."""
    for entry in entries:
        yield RouteObservation(
            collector=collector,
            peer_asn=entry.peer_asn,
            prefix=entry.prefix,
            path=entry.as_path,
            communities=entry.communities,
            timestamp=entry.timestamp,
            from_rib=True,
        )


def observations_from_updates(
    collector: str, updates: Iterable[BGPUpdate]
) -> Iterator[RouteObservation]:
    """Convert decoded update messages into route observations.

    Withdrawal-only updates carry no path and yield nothing, matching how the
    paper's pipeline uses announcements only.
    """
    for update in updates:
        if not update.is_announcement or update.attributes is None:
            continue
        for prefix in update.announced:
            yield RouteObservation(
                collector=collector,
                peer_asn=update.peer_asn,
                prefix=prefix,
                path=update.attributes.as_path,
                communities=update.attributes.communities,
                timestamp=update.timestamp,
                from_rib=False,
            )
