"""Community source groups (paper Section 3.2).

Because any AS along the path may add, modify, or delete communities, the
upper field of a community does not necessarily identify the tagging AS.  The
paper therefore groups each community, *relative to the AS path it was
observed with*, into one of four source groups:

* **peer** — the upper field equals the collector peer ASN (``A_1``),
* **foreign** — the upper field equals some other ASN on the path,
* **stray** — the upper field is a public ASN that does not appear on the
  path, and
* **private** — the upper field is a non-public (private / reserved) ASN.

The inference algorithm ignores stray and private communities; peer and
foreign communities are assumed to have been set by the AS named in the upper
field.
"""

from __future__ import annotations

import enum
from collections import Counter
from typing import Dict

from repro.bgp.asn import is_public_asn
from repro.bgp.community import AnyCommunity, CommunitySet
from repro.bgp.path import ASPath


class CommunitySource(enum.Enum):
    """The four community source groups of Section 3.2."""

    PEER = "peer"
    FOREIGN = "foreign"
    STRAY = "stray"
    PRIVATE = "private"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def classify_community(
    community: AnyCommunity,
    path: ASPath,
    *,
    registry=None,
) -> CommunitySource:
    """Classify one community relative to the AS path it appeared on.

    An optional :class:`repro.bgp.asn.ASNRegistry` tightens the ``private``
    group: public-but-unallocated upper fields are then also treated as
    private ("not assigned or allocated", Section 3.2).
    """
    upper = community.upper
    if not is_public_asn(upper):
        return CommunitySource.PRIVATE
    if registry is not None and not registry.is_allocated(upper):
        return CommunitySource.PRIVATE
    if upper == path.peer:
        return CommunitySource.PEER
    if upper in path:
        return CommunitySource.FOREIGN
    return CommunitySource.STRAY


def classify_community_set(
    communities: CommunitySet,
    path: ASPath,
    *,
    registry=None,
) -> Dict[CommunitySource, int]:
    """Count the communities of a set per source group.

    Returns a dict with all four groups present (zero when absent), which is
    the shape Figure 5 consumes.
    """
    counts: Dict[CommunitySource, int] = {source: 0 for source in CommunitySource}
    for community in communities:
        counts[classify_community(community, path, registry=registry)] += 1
    return counts


def usable_for_inference(
    community: AnyCommunity,
    path: ASPath,
    *,
    registry=None,
) -> bool:
    """``True`` if the community may feed the inference (peer or foreign)."""
    source = classify_community(community, path, registry=registry)
    return source in (CommunitySource.PEER, CommunitySource.FOREIGN)


def filter_usable(
    communities: CommunitySet,
    path: ASPath,
    *,
    registry=None,
) -> CommunitySet:
    """Return only the peer/foreign communities of *communities*."""
    return CommunitySet(
        c for c in communities if usable_for_inference(c, path, registry=registry)
    )


class CommunitySourceTally:
    """Accumulates per-source community counts across many observations.

    Used for the Table 1 "w/o private" / "w/o stray" rows and for the per-peer
    breakdown behind Figure 5.
    """

    def __init__(self) -> None:
        self.total: Counter = Counter()
        self.unique_upper: Dict[CommunitySource, set] = {s: set() for s in CommunitySource}

    def add(self, communities: CommunitySet, path: ASPath, *, registry=None) -> None:
        """Account for one observation's community set."""
        for community in communities:
            source = classify_community(community, path, registry=registry)
            self.total[source] += 1
            self.unique_upper[source].add(community.upper)

    def count(self, source: CommunitySource) -> int:
        """Total communities observed in *source*."""
        return self.total[source]

    def unique_upper_fields(self, *sources: CommunitySource) -> int:
        """Number of distinct upper fields across the given source groups."""
        fields: set = set()
        for source in sources or tuple(CommunitySource):
            fields |= self.unique_upper[source]
        return len(fields)
