"""Persistence and serving of classification results.

The streaming engine (PR 1) and the parallel execution layer (PR 2) built
the *producer* side of a live community-usage classification: results exist
as in-memory :class:`~repro.stream.engine.WindowSnapshot` objects capped at
``StreamConfig.max_snapshots``, or as one-shot batch exports.  This package
builds the *consumer* side:

* :mod:`repro.service.backends` -- pluggable storage behind one
  :class:`SnapshotBackend` contract: the SQLite-WAL :class:`SnapshotStore`
  (schema versioning, atomic writes, retention / compaction, indexed
  per-AS history), the in-process :class:`MemoryBackend` (tests/demos and
  the conformance-suite reference), and the :class:`TieredBackend` whose
  retention *archives* pruned snapshots into checksummed segment files
  (:class:`SnapshotArchive`) instead of deleting them, with reads falling
  through hot to cold; :func:`open_store` dispatches ``sqlite:`` /
  ``memory:`` store URLs (plain paths stay SQLite);
* :mod:`repro.service.server` -- a stdlib-only JSON HTTP API over a store
  (``/v1/as/{asn}``, ``/v1/snapshot/latest``, ``/v1/snapshot/{window}``,
  ``/v1/diff``, ``/v1/stats``, ``/healthz``) with an LRU read cache keyed
  on the store generation, so hot ASes are served without touching disk;
* :mod:`repro.service.publish` -- publisher hooks that wire a running
  :class:`~repro.stream.engine.StreamEngine` (or the batch pipeline) into a
  store, so ``repro stream --store`` / ``repro classify --store``
  materialise results as they run;
* :mod:`repro.service.client` -- a small stdlib HTTP client for the API;
* :mod:`repro.service.workers` -- horizontal fan-out: N supervised
  ``SO_REUSEPORT`` worker processes (accept-loop threads where that is
  unavailable) serving one store on one port, respawned on crash, with
  fleet-aggregated ``/v1/stats``;
* :mod:`repro.service.replication` -- cross-host fan-out: any served store
  is a replication leader (``/v1/replication/changes`` changelog pages),
  and a :class:`ReplicaSyncer` converges a follower store on it with
  exactly-once resume, byte-identical served payloads, and explicit
  errors when the leader's retention outran the follower;
* :mod:`repro.service.auth` -- bearer-token authentication enforced as
  route-table middleware on every ``/v1/*`` endpoint (``/healthz`` and
  ``/metrics`` stay open), constant-time comparison, token from
  ``--auth-token`` or ``REPRO_AUTH_TOKEN``;
* :mod:`repro.service.metrics` -- a Prometheus-text ``/metrics`` endpoint:
  per-endpoint request/latency histograms, cache hit/miss counters, store
  gauges, per-follower replication lag, and per-AS classification churn,
  aggregated fleet-wide through the shared worker board;
* :mod:`repro.service.failover` -- leader failover with a durable fencing
  epoch: ``repro replicate --promote`` turns a follower into the new
  leader, and appends from the deposed epoch raise
  :class:`FencedWriterError` instead of forking history.

Entry points most callers want: ``repro serve --store db.sqlite``
(``--http-workers N`` to fan out, ``--auth-token`` to lock the API),
``repro replicate --from URL --store replica.db --serve`` (cross-host read
replicas; ``--promote`` for failover), and ``repro query http://host:port
latest`` on the CLI, or :func:`attach_store` +
:class:`ClassificationServer` / :class:`MultiWorkerServer` /
:class:`ReplicaSyncer` / :func:`promote` in code.
"""

from repro.service.backends import (
    FencedWriterError,
    MemoryBackend,
    SnapshotArchive,
    SnapshotBackend,
    TieredBackend,
    open_store,
    parse_store_url,
)
from repro.service.client import (
    AuthError,
    BadRequestError,
    NotFoundError,
    ServiceClient,
    ServiceError,
)
from repro.service.failover import PromotionReport, promote
from repro.service.metrics import (
    METRICS_CONTENT_TYPE,
    MetricsRecorder,
    render_metrics,
)
from repro.service.publish import (
    SnapshotPublisher,
    attach_store,
    ensure_snapshot,
    publish_result,
)
from repro.service.replication import (
    ReplicaSyncer,
    ReplicationError,
    SyncReport,
    snapshot_from_payload,
)
from repro.service.server import (
    ClassificationServer,
    ClassificationService,
    LRUCache,
    ServiceStats,
)
from repro.service.store import (
    SCHEMA_VERSION,
    ASHistoryEntry,
    SnapshotStore,
    StoreError,
    StoredSnapshot,
    snapshot_payload,
)
from repro.service.workers import (
    MultiWorkerServer,
    WorkerStatsBoard,
    reuseport_supported,
)

__all__ = [
    "METRICS_CONTENT_TYPE",
    "SCHEMA_VERSION",
    "ASHistoryEntry",
    "AuthError",
    "BadRequestError",
    "ClassificationServer",
    "ClassificationService",
    "FencedWriterError",
    "LRUCache",
    "MemoryBackend",
    "MetricsRecorder",
    "MultiWorkerServer",
    "NotFoundError",
    "PromotionReport",
    "ReplicaSyncer",
    "ReplicationError",
    "ServiceClient",
    "ServiceError",
    "ServiceStats",
    "SnapshotArchive",
    "SnapshotBackend",
    "SnapshotPublisher",
    "SnapshotStore",
    "StoreError",
    "StoredSnapshot",
    "SyncReport",
    "TieredBackend",
    "WorkerStatsBoard",
    "attach_store",
    "ensure_snapshot",
    "open_store",
    "parse_store_url",
    "promote",
    "publish_result",
    "render_metrics",
    "reuseport_supported",
    "snapshot_from_payload",
    "snapshot_payload",
]
