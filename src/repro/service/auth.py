"""Bearer-token authentication for the classification HTTP API.

One shared secret guards every ``/v1/*`` endpoint; ``/healthz`` and
``/metrics`` stay open so load balancers and Prometheus scrapers need no
credentials.  The check is **route-table middleware**: the server resolves
the request's :class:`~repro.service.server.Route` first and consults its
``auth_required`` flag, so a newly added endpoint is protected by
construction instead of by remembering to call a helper in its handler.

Design points:

* **constant-time comparison** -- :func:`check_token` compares through
  :func:`hmac.compare_digest`, so a probing client learns nothing about the
  token from response timing;
* **one wire shape** -- clients send ``Authorization: Bearer <token>``;
  :class:`~repro.service.client.ServiceClient` adds the header on every
  request (replication pulls included) when built with ``token=``;
* **explicit failures** -- a missing header is ``401 unauthorized``, a
  malformed or wrong one ``403 forbidden``; both surface as the structured
  JSON error envelope, which the client raises as
  :class:`~repro.service.client.AuthError`.

The token itself comes from ``--auth-token`` or the ``REPRO_AUTH_TOKEN``
environment variable (:func:`resolve_token`); with neither set the service
runs open, exactly as before this module existed.
"""

from __future__ import annotations

import hmac
import os
from dataclasses import dataclass
from typing import Mapping, Optional

#: Environment variable ``--auth-token`` falls back to on the CLI.
AUTH_TOKEN_ENV = "REPRO_AUTH_TOKEN"

_BEARER_PREFIX = "Bearer "


@dataclass(frozen=True)
class AuthFailure:
    """Why a request was rejected (maps 1:1 onto the error envelope)."""

    status: int
    code: str
    message: str


#: No credentials at all: the client should send the header.
MISSING_TOKEN = AuthFailure(401, "unauthorized", "missing bearer token")
#: Credentials present but wrong (or not a bearer scheme).
BAD_TOKEN = AuthFailure(403, "forbidden", "invalid bearer token")


def resolve_token(flag_value: Optional[str]) -> Optional[str]:
    """The effective token: the CLI flag, else ``REPRO_AUTH_TOKEN``, else none."""
    if flag_value:
        return flag_value
    return os.environ.get(AUTH_TOKEN_ENV) or None


def bearer_token(headers: Optional[Mapping[str, str]]) -> Optional[str]:
    """Extract the bearer token from request headers (``None`` if absent).

    Accepts any mapping with a ``get`` -- a plain dict in tests, the
    ``email.message.Message`` of ``BaseHTTPRequestHandler`` in production
    (whose ``get`` is already case-insensitive on header names).
    """
    if headers is None:
        return None
    value = headers.get("Authorization") or headers.get("authorization")
    if value is None:
        return None
    if not value.startswith(_BEARER_PREFIX):
        # A present-but-unusable header is a credential, just a wrong one.
        return ""
    return value[len(_BEARER_PREFIX):]


def check_token(
    headers: Optional[Mapping[str, str]], expected: str
) -> Optional[AuthFailure]:
    """Validate a request against the configured token.

    Returns ``None`` when the request is authorized, otherwise the
    :class:`AuthFailure` the server must answer with.  The comparison is
    constant-time regardless of where the provided token diverges.
    """
    provided = bearer_token(headers)
    if provided is None:
        return MISSING_TOKEN
    if not hmac.compare_digest(provided.encode("utf-8"), expected.encode("utf-8")):
        return BAD_TOKEN
    return None


__all__ = [
    "AUTH_TOKEN_ENV",
    "AuthFailure",
    "BAD_TOKEN",
    "MISSING_TOKEN",
    "bearer_token",
    "check_token",
    "resolve_token",
]
