"""Pluggable snapshot storage backends.

The serving stack -- HTTP server, worker fan-out, publishers, replication,
CLI -- is written against the :class:`SnapshotBackend` contract
(:mod:`repro.service.backends.base`); this package holds the contract and
its implementations, and :func:`open_store` dispatches a store URL to the
right one:

==================  ==============================================================
``path/to/db``      SQLite (the default; any plain path, plus ``:memory:``)
``sqlite:path``     SQLite, explicitly
``memory:``         in-process :class:`MemoryBackend` (tests, demos)
==================  ==============================================================

Passing ``archive_dir=`` wraps the hot backend in a
:class:`~repro.service.backends.archive.TieredBackend`: the retention cap
moves onto the wrapper and pruned snapshots are *archived* into checksummed
segment files under that directory instead of deleted, so reads fall
through hot to cold beyond the cap (see :mod:`repro.service.backends.archive`).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from repro.service.backends.archive import (
    SEGMENT_RECORDS,
    SnapshotArchive,
    TieredBackend,
)
from repro.service.backends.base import (
    SNAPSHOT_KINDS,
    STORE_SCHEMES,
    ASHistoryEntry,
    FencedWriterError,
    SnapshotBackend,
    StoredSnapshot,
    StoreError,
    parse_store_url,
    snapshot_from_payload,
    snapshot_payload,
)
from repro.service.backends.memory import MemoryBackend
from repro.service.backends.sqlite import SCHEMA_VERSION, SnapshotStore, SQLiteBackend


def open_store(
    url: Union[str, os.PathLike],
    *,
    retention: Optional[int] = None,
    archive_dir: Optional[Union[str, os.PathLike]] = None,
) -> SnapshotBackend:
    """Open (creating if needed) the backend a store URL names.

    Plain paths stay SQLite-backed with their parent directory ensured, so
    every pre-URL call site keeps working unchanged.  With *archive_dir*
    the hot backend is built uncapped and wrapped in a
    :class:`TieredBackend` carrying *retention*: the cap then demotes
    snapshots into the archive instead of deleting them.
    """
    scheme, target = parse_store_url(url)
    hot_retention = None if archive_dir is not None else retention
    backend: SnapshotBackend
    if scheme == "memory":
        backend = MemoryBackend(retention=hot_retention)
    else:
        path = Path(target)
        if str(path) != ":memory:" and str(path.parent) not in ("", "."):
            path.parent.mkdir(parents=True, exist_ok=True)
        backend = SnapshotStore(path, retention=hot_retention)
    if archive_dir is not None:
        return TieredBackend(backend, archive_dir, retention=retention)
    return backend


__all__ = [
    "ASHistoryEntry",
    "FencedWriterError",
    "MemoryBackend",
    "SCHEMA_VERSION",
    "SEGMENT_RECORDS",
    "SNAPSHOT_KINDS",
    "SQLiteBackend",
    "STORE_SCHEMES",
    "SnapshotArchive",
    "SnapshotBackend",
    "SnapshotStore",
    "StoreError",
    "StoredSnapshot",
    "TieredBackend",
    "open_store",
    "parse_store_url",
    "snapshot_from_payload",
    "snapshot_payload",
]
