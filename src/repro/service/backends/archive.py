"""Cold-tier archival: append-only snapshot segments + the tiered backend.

Retention on a plain backend *deletes* history, but the paper's analyses
are longitudinal -- per-AS churn and stability only mean something across
many windows.  This module turns retention into **archival**:

* :class:`SnapshotArchive` manages a directory of immutable, log-structured
  JSON-lines segment files (``segment-000001.jsonl`` ...).  Each line holds
  one archived snapshot as ``{"record": {...}, "sha256": "..."}`` where the
  checksum covers the canonical JSON encoding of the record, so corruption
  (a flipped bit, a truncated rewrite) is detected on read and by
  ``repro archive verify`` instead of silently serving wrong history.
  Appends are idempotent by snapshot id, fsynced, and only ever touch the
  newest segment.  A crash mid-append leaves at most one unterminated
  trailing line; scans tolerate it (the append never completed, so the hot
  copy was never dropped and will be re-archived), and later appends open
  a fresh segment rather than writing after the torn bytes.
* :class:`TieredBackend` wraps any *hot* :class:`SnapshotBackend` and owns
  the retention cap itself: when the hot tier exceeds the cap, the oldest
  snapshots are serialised with the canonical wire codec
  (:func:`~repro.service.backends.base.snapshot_payload`), appended to the
  archive, and only then dropped from the hot tier
  (:meth:`~repro.service.backends.base.SnapshotBackend.drop_snapshot`).
  Reads fall through hot to cold, so ``/v1/as/{asn}?history=N`` and
  ``/v1/snapshot/{window}`` answer beyond the cap -- byte-identically to
  what the hot tier served before pruning, because the archived payload is
  the exact wire payload and the codec round-trips.

Many processes may read one archive while one producer appends (every
serving worker opens the same tiered view): demoting a snapshot bumps the
hot tier's generation, and the tiered backend re-scans the archive's tail
whenever the generation moved since its last cold read, so readers pick up
freshly demoted snapshots without re-opening anything.

The replication changelog (``snapshots_since`` / ``pruned_through``) stays
a hot-tier concern: followers replicate the live window, and the horizon
still rises when snapshots demote, so a follower that fell behind the
archive boundary gets an explicit error, exactly as with delete-based
retention.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.bgp.asn import ASN
from repro.core.counters import ASCounters
from repro.core.thresholds import Thresholds
from repro.service.backends.base import (
    ASHistoryEntry,
    SnapshotBackend,
    StoredSnapshot,
    StoreError,
    require_valid_retention,
    snapshot_from_payload,
    snapshot_payload,
)
from repro.stream.engine import WindowSnapshot

#: Records per segment file before a new segment is started.
SEGMENT_RECORDS = 256

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".jsonl"


def _canonical(record: Dict[str, Any]) -> str:
    """The canonical JSON encoding the checksum is computed over."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _checksum(record: Dict[str, Any]) -> str:
    return hashlib.sha256(_canonical(record).encode("utf-8")).hexdigest()


def _encode_line(record: Dict[str, Any]) -> bytes:
    return (
        json.dumps(
            {"record": record, "sha256": _checksum(record)},
            sort_keys=True,
            separators=(",", ":"),
        )
        + "\n"
    ).encode("utf-8")


def _segment_name(index: int) -> str:
    return f"{_SEGMENT_PREFIX}{index:06d}{_SEGMENT_SUFFIX}"


def _meta_of_record(record: Dict[str, Any]) -> StoredSnapshot:
    payload = record["payload"]
    thresholds = record["thresholds"]
    return StoredSnapshot(
        snapshot_id=int(record["snapshot_id"]),
        kind=str(record["kind"]),
        window_start=int(payload["window_start"]),
        window_end=int(payload["window_end"]),
        skipped_windows=int(payload["skipped_windows"]),
        events_total=int(payload["events_total"]),
        unique_tuples=int(payload["unique_tuples"]),
        algorithm=str(payload["algorithm"]),
        thresholds=Thresholds(
            tagger=thresholds[0],
            silent=thresholds[1],
            forward=thresholds[2],
            cleaner=thresholds[3],
        ),
        generation=int(record["generation"]),
    )


class SnapshotArchive:
    """A directory of immutable, checksummed snapshot segment files.

    The whole metadata index (segment + byte offset per snapshot id) is
    built by scanning the segments at open time and kept in memory; record
    payloads stay on disk and are read (and checksum-verified) on demand.
    :meth:`refresh` re-scans incrementally -- only bytes past what was
    already indexed -- so long-running readers track a live producer
    cheaply.  One lock serialises all index access.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        #: snapshot_id -> (segment name, byte offset of its line).
        self._locations: Dict[int, Tuple[str, int]] = {}
        self._metas: Dict[int, StoredSnapshot] = {}
        self._order: List[int] = []  # ascending snapshot ids
        #: Per segment: how many bytes have been cleanly indexed.  A torn
        #: trailing line (crash mid-append) keeps this *before* the tear,
        #: so a refresh after the writer completes the line picks it up.
        self._scanned: Dict[str, int] = {}
        #: Segments whose tail was torn at last scan: never appended to
        #: again (writing after the junk would corrupt the next line).
        self._dirty: Set[str] = set()
        with self._lock:
            self._refresh_locked()

    # -- scanning -----------------------------------------------------------------------
    def _segment_names(self) -> List[str]:
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.name.startswith(_SEGMENT_PREFIX)
            and entry.name.endswith(_SEGMENT_SUFFIX)
        )

    def _refresh_locked(self) -> None:
        for name in self._segment_names():
            offset = self._scanned.get(name, 0)
            path = self.root / name
            if path.stat().st_size <= offset:
                continue
            self._dirty.discard(name)
            with open(path, "rb") as handle:
                handle.seek(offset)
                while True:
                    line = handle.readline()
                    if not line:
                        break
                    if not line.endswith(b"\n"):
                        # Unterminated tail: either a crashed append (the
                        # snapshot's hot copy survives and re-archives) or a
                        # concurrent writer mid-line (the next refresh sees
                        # it complete).  Do not advance past it.
                        self._dirty.add(name)
                        break
                    try:
                        entry = json.loads(line)
                        record = entry["record"]
                        snapshot_id = int(record["snapshot_id"])
                        meta = _meta_of_record(record)
                    except (ValueError, KeyError, TypeError, IndexError):
                        raise StoreError(
                            f"corrupt archive line in {name} at byte {offset}"
                            " (see `repro archive verify`)"
                        ) from None
                    if snapshot_id not in self._locations:
                        self._order.append(snapshot_id)
                    self._locations[snapshot_id] = (name, offset)
                    self._metas[snapshot_id] = meta
                    offset += len(line)
                    self._scanned[name] = offset
        self._order.sort()

    def refresh(self) -> None:
        """Index whatever another process appended since the last scan."""
        with self._lock:
            self._refresh_locked()

    # -- appends ------------------------------------------------------------------------
    def _record_count(self, name: str) -> int:
        return sum(1 for location in self._locations.values() if location[0] == name)

    def append(self, meta: StoredSnapshot, payload: Dict[str, Any]) -> bool:
        """Append one snapshot record; idempotent by snapshot id.

        Returns whether a record was written.  The line is flushed and
        fsynced before the index is updated, so a snapshot is never
        considered archived until it is durable -- the tiered backend drops
        the hot copy only after this returns.
        """
        with self._lock:
            if meta.snapshot_id in self._locations:
                return False
            names = self._segment_names()
            if (
                names
                and names[-1] not in self._dirty
                and self._record_count(names[-1]) < SEGMENT_RECORDS
            ):
                name = names[-1]
            else:
                name = _segment_name(len(names) + 1)
            record = {
                "snapshot_id": meta.snapshot_id,
                "kind": meta.kind,
                "generation": meta.generation,
                "thresholds": [
                    meta.thresholds.tagger,
                    meta.thresholds.silent,
                    meta.thresholds.forward,
                    meta.thresholds.cleaner,
                ],
                "payload": payload,
            }
            line = _encode_line(record)
            with open(self.root / name, "ab") as handle:
                offset = handle.tell()
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
            self._locations[meta.snapshot_id] = (name, offset)
            self._metas[meta.snapshot_id] = meta
            self._order.append(meta.snapshot_id)
            self._order.sort()
            self._scanned[name] = offset + len(line)
        return True

    # -- reads --------------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._order)

    def __contains__(self, snapshot_id: int) -> bool:
        with self._lock:
            return snapshot_id in self._locations

    def ids(self) -> List[int]:
        """Archived snapshot ids, ascending."""
        with self._lock:
            return list(self._order)

    def metas(self) -> List[StoredSnapshot]:
        """Metadata of every archived snapshot, ascending snapshot id."""
        with self._lock:
            return [self._metas[snapshot_id] for snapshot_id in self._order]

    def get(self, snapshot_id: int) -> Optional[StoredSnapshot]:
        with self._lock:
            return self._metas.get(snapshot_id)

    def _read_record(self, name: str, offset: int) -> Dict[str, Any]:
        with open(self.root / name, "rb") as handle:
            handle.seek(offset)
            line = handle.readline()
        try:
            entry = json.loads(line)
            record = entry["record"]
            expected = str(entry["sha256"])
        except (ValueError, KeyError, TypeError):
            raise StoreError(f"corrupt archive line in {name} at byte {offset}") from None
        if _checksum(record) != expected:
            raise StoreError(
                f"archive checksum mismatch in {name} at byte {offset}"
                f" (snapshot {record.get('snapshot_id')})"
            )
        return dict(record)

    def load(self, snapshot_id: int) -> Tuple[StoredSnapshot, Dict[str, Any]]:
        """The metadata and canonical wire payload of one archived snapshot.

        The record's checksum is verified on every read: serving corrupted
        history would be silently wrong in exactly the longitudinal queries
        the archive exists for.
        """
        with self._lock:
            location = self._locations.get(snapshot_id)
        if location is None:
            raise StoreError(f"no snapshot {snapshot_id} in archive {self.root}")
        record = self._read_record(*location)
        return _meta_of_record(record), dict(record["payload"])

    # -- maintenance --------------------------------------------------------------------
    def segments(self) -> List[Dict[str, object]]:
        """Per-segment inventory (name, records, bytes, id range)."""
        with self._lock:
            inventory: List[Dict[str, object]] = []
            for name in self._segment_names():
                ids = sorted(
                    snapshot_id
                    for snapshot_id, location in self._locations.items()
                    if location[0] == name
                )
                inventory.append(
                    {
                        "segment": name,
                        "records": len(ids),
                        "bytes": (self.root / name).stat().st_size,
                        "min_snapshot_id": ids[0] if ids else None,
                        "max_snapshot_id": ids[-1] if ids else None,
                        "torn_tail": name in self._dirty,
                    }
                )
            return inventory

    def verify(self) -> List[str]:
        """Re-read and checksum every record; returns problem descriptions.

        An empty list means every line parses, every checksum matches, and
        every indexed snapshot loads.  Problems are collected (not raised)
        so one bad segment does not hide the state of the others.
        """
        problems: List[str] = []
        with self._lock:
            locations = dict(self._locations)
        for snapshot_id, (name, offset) in sorted(locations.items()):
            try:
                record = self._read_record(name, offset)
            except StoreError as error:
                problems.append(str(error))
                continue
            if int(record["snapshot_id"]) != snapshot_id:
                problems.append(
                    f"index mismatch in {name} at byte {offset}:"
                    f" expected snapshot {snapshot_id}, found {record['snapshot_id']}"
                )
        return problems

    def compact(self) -> int:
        """Rewrite the archive into densely packed segments.

        Drops tolerated junk (torn trailing lines) and coalesces the
        undersized segments that many small archival batches leave behind.
        Records keep ascending snapshot-id order.  New segments are written
        to temporary files, fsynced, and atomically swapped in; returns the
        number of segment files removed by the rewrite.  Only for offline
        maintenance (``repro archive compact``): concurrent readers of the
        old segment files would race the swap.
        """
        with self._lock:
            old_names = self._segment_names()
            records = [
                self._read_record(*self._locations[snapshot_id])
                for snapshot_id in self._order
            ]
            new_locations: Dict[int, Tuple[str, int]] = {}
            new_scanned: Dict[str, int] = {}
            new_count = 0
            for start in range(0, len(records), SEGMENT_RECORDS):
                new_count += 1
                name = _segment_name(new_count)
                temp = self.root / (name + ".tmp")
                offset = 0
                with open(temp, "wb") as handle:
                    for record in records[start:start + SEGMENT_RECORDS]:
                        line = _encode_line(record)
                        handle.write(line)
                        new_locations[int(record["snapshot_id"])] = (name, offset)
                        offset += len(line)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temp, self.root / name)
                new_scanned[name] = offset
            kept = {_segment_name(index + 1) for index in range(new_count)}
            for name in old_names:
                if name not in kept:
                    os.unlink(self.root / name)
            self._locations = new_locations
            self._scanned = new_scanned
            self._dirty = set()
            return len(old_names) - new_count

    def stats(self) -> Dict[str, object]:
        """Archive-level statistics (tier totals for ``/v1/stats``)."""
        with self._lock:
            names = self._segment_names()
            return {
                "path": str(self.root),
                "segments": len(names),
                "snapshots": len(self._order),
                "size_bytes": sum((self.root / name).stat().st_size for name in names),
            }


class TieredBackend(SnapshotBackend):
    """Hot backend + cold archive: retention archives instead of deleting.

    The retention cap lives on this wrapper, not on the hot backend (a hot
    tier with its own cap would delete snapshots before they could be
    archived -- the constructor rejects that).  Every overflow snapshot is
    archived *before* :meth:`~SnapshotBackend.drop_snapshot` removes it
    from the hot tier, so the hot tier's generation bump and rising
    ``pruned_through`` horizon keep read caches and replication exactly as
    honest as delete-based retention did.
    """

    def __init__(
        self,
        hot: SnapshotBackend,
        archive: Union[SnapshotArchive, str, os.PathLike],
        *,
        retention: Optional[int] = None,
    ) -> None:
        require_valid_retention(retention)
        if hot.retention is not None:
            raise ValueError(
                "the hot backend of a tiered store must not have its own"
                " retention cap (it would delete snapshots before archival);"
                " put the cap on the TieredBackend"
            )
        self.hot = hot
        self.archive = (
            archive if isinstance(archive, SnapshotArchive) else SnapshotArchive(archive)
        )
        self.retention = retention
        #: Hot generation the archive index was last synced at.  Demotions
        #: bump the hot generation, so "generation moved" is a sufficient
        #: (and cheap) signal that another process may have archived.
        self._cold_synced = -1

    @property
    def url(self) -> str:
        """The hot tier's URL plus the archive directory."""
        return f"{self.hot.url}+archive:{self.archive.root}"

    def close(self) -> None:
        self.hot.close()

    def _cold(self) -> SnapshotArchive:
        """The archive, tail-synced if the hot tier moved since last look."""
        generation = self.hot.generation()
        if generation != self._cold_synced:
            self.archive.refresh()
            self._cold_synced = generation
        return self.archive

    # -- writes -------------------------------------------------------------------------
    def append_snapshot(
        self,
        snapshot: WindowSnapshot,
        *,
        kind: str = "window",
        if_absent: bool = False,
        snapshot_id: Optional[int] = None,
        epoch: Optional[int] = None,
    ) -> int:
        new_id = self.hot.append_snapshot(
            snapshot, kind=kind, if_absent=if_absent, snapshot_id=snapshot_id,
            epoch=epoch,
        )
        if self.retention is not None:
            self._archive_overflow()
        return new_id

    def _demote(self, meta: StoredSnapshot) -> None:
        """Archive one hot snapshot, then drop it from the hot tier."""
        payload = snapshot_payload(self.hot.load_snapshot(meta.snapshot_id))
        self.archive.append(meta, payload)
        self.hot.drop_snapshot(meta.snapshot_id)

    def _archive_overflow(self) -> int:
        assert self.retention is not None
        metas = self.hot.snapshots()
        overflow = metas[: max(0, len(metas) - self.retention)]
        for meta in overflow:
            self._demote(meta)
        return len(overflow)

    def drop_snapshot(self, snapshot_id: int) -> bool:
        """Demote one hot snapshot to the archive (never loses history).

        Returns ``True`` only when a hot snapshot was demoted; an id that
        is already cold (or unknown) returns ``False`` -- the archive is
        immutable, so there is nothing further to drop.
        """
        meta = self.hot.get(snapshot_id)
        if meta is None:
            return False
        self._demote(meta)
        return True

    def compact(self) -> int:
        """Demote everything beyond the cap, then compact the hot tier.

        Returns the number of snapshots demoted (nothing is deleted).
        """
        demoted = self._archive_overflow() if self.retention is not None else 0
        self.hot.compact()
        return demoted

    # -- generation bookkeeping (hot-tier concerns) -------------------------------------
    def generation(self) -> int:
        return self.hot.generation()

    def pruned_through(self) -> int:
        return self.hot.pruned_through()

    def applied_generation(self) -> int:
        return self.hot.applied_generation()

    def set_applied_generation(self, generation: int) -> None:
        self.hot.set_applied_generation(generation)

    def leader_epoch(self) -> int:
        return self.hot.leader_epoch()

    def bump_leader_epoch(self) -> int:
        return self.hot.bump_leader_epoch()

    def snapshots_since(
        self, generation: int, *, limit: Optional[int] = None
    ) -> List[StoredSnapshot]:
        """The replication feed is the hot tier: followers mirror the live
        window (and archive independently if they want their own cold
        tier); the rising horizon tells a follower that fell behind the
        archive boundary, exactly as with delete-based retention.
        """
        return self.hot.snapshots_since(generation, limit=limit)

    # -- metadata reads (hot falls through to cold) -------------------------------------
    def __len__(self) -> int:
        return len(self.hot) + len(self._cold())

    def latest(self) -> Optional[StoredSnapshot]:
        newest = self.hot.latest()
        if newest is not None:
            return newest
        metas = self._cold().metas()
        return metas[-1] if metas else None

    def get(self, snapshot_id: int) -> Optional[StoredSnapshot]:
        meta = self.hot.get(snapshot_id)
        return meta if meta is not None else self._cold().get(snapshot_id)

    def by_window_end(self, window_end: int) -> Optional[StoredSnapshot]:
        meta = self.hot.by_window_end(window_end)
        if meta is not None:
            return meta
        for cold in reversed(self._cold().metas()):
            if cold.window_end == window_end:
                return cold
        return None

    def find_window(
        self, kind: str, window_start: int, window_end: int
    ) -> Optional[StoredSnapshot]:
        meta = self.hot.find_window(kind, window_start, window_end)
        if meta is not None:
            return meta
        for cold in reversed(self._cold().metas()):
            if (cold.kind, cold.window_start, cold.window_end) == (
                kind,
                window_start,
                window_end,
            ):
                return cold
        return None

    def latest_window_end(self, kind: str = "window") -> Optional[int]:
        hot_end = self.hot.latest_window_end(kind)
        cold_ends = [
            meta.window_end for meta in self._cold().metas() if meta.kind == kind
        ]
        candidates = [hot_end, max(cold_ends) if cold_ends else None]
        known = [end for end in candidates if end is not None]
        return max(known) if known else None

    def snapshots(self) -> List[StoredSnapshot]:
        return sorted(
            self._cold().metas() + self.hot.snapshots(),
            key=lambda meta: meta.snapshot_id,
        )

    # -- full snapshot reads ------------------------------------------------------------
    def load_snapshot(self, snapshot_id: int) -> WindowSnapshot:
        try:
            return self.hot.load_snapshot(snapshot_id)
        except StoreError:
            # Demoted (possibly concurrently): the archived record is the
            # canonical wire payload, and the codec round-trips it, so the
            # serving layer re-emits byte-identical bodies for cold reads.
            meta, payload = self._cold().load(snapshot_id)
            return snapshot_from_payload(payload, meta.thresholds)

    def changes(self, snapshot_id: int) -> Dict[ASN, Tuple[str, str]]:
        if self.hot.get(snapshot_id) is not None:
            return self.hot.changes(snapshot_id)
        if snapshot_id in self._cold():
            _, payload = self.archive.load(snapshot_id)
            return {
                int(asn_text): (str(codes[0]), str(codes[1]))
                for asn_text, codes in payload["changed"].items()
            }
        return {}

    # -- per-AS queries -----------------------------------------------------------------
    def as_history(
        self, asn: ASN, *, limit: Optional[int] = None
    ) -> List[ASHistoryEntry]:
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        entries = self.hot.as_history(asn, limit=limit)
        if limit is not None and len(entries) >= limit:
            return entries
        key = str(int(asn))
        for meta in reversed(self._cold().metas()):
            if limit is not None and len(entries) >= limit:
                break
            _, payload = self.archive.load(meta.snapshot_id)
            info = payload["ases"].get(key)
            if info is None:
                continue
            counters = info["counters"]
            entries.append(
                ASHistoryEntry(
                    snapshot_id=meta.snapshot_id,
                    window_start=meta.window_start,
                    window_end=meta.window_end,
                    code=str(info["code"]),
                    counters=ASCounters(
                        tagger=int(counters["tagger"]),
                        silent=int(counters["silent"]),
                        forward=int(counters["forward"]),
                        cleaner=int(counters["cleaner"]),
                    ),
                )
            )
        return entries

    # -- statistics ---------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        hot_stats = self.hot.stats()
        archive_stats = self._cold().stats()
        return {
            "backend": "tiered",
            "path": self.url,
            "generation": self.generation(),
            "snapshots": len(self.hot) + len(self.archive),
            "retention": self.retention,
            "size_bytes": (
                int(hot_stats.get("size_bytes", 0) or 0)
                + int(archive_stats.get("size_bytes", 0) or 0)
            ),
            "pruned_through": self.pruned_through(),
            "applied_generation": self.applied_generation(),
            "leader_epoch": self.leader_epoch(),
            "hot": hot_stats,
            "archive": archive_stats,
        }

    # -- ingest telemetry ---------------------------------------------------------------
    def set_ingest_stats(self, stats: Dict[str, object]) -> None:
        """Delegate to the hot tier (durable there when the hot tier is)."""
        self.hot.set_ingest_stats(stats)

    def ingest_stats(self) -> Optional[Dict[str, object]]:
        return self.hot.ingest_stats()
