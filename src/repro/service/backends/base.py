"""The storage contract every snapshot backend implements.

:class:`SnapshotBackend` is the abstract surface the whole serving stack is
written against: the HTTP server (:mod:`repro.service.server`), the worker
fan-out (:mod:`repro.service.workers`), the publisher hooks
(:mod:`repro.service.publish`), and cross-host replication
(:mod:`repro.service.replication`) all accept *any* backend.  The contract
captures everything the original SQLite store exposed:

* **appends** -- atomic per-snapshot writes, idempotent ``if_absent``
  appends keyed on ``(kind, window_start, window_end)``, and
  ``snapshot_id`` pinning so replication can mirror a leader's row ids;
* **generation bookkeeping** -- a monotonic commit counter (the read-cache
  key), the ``pruned_through`` replication horizon, and the follower's
  durable ``applied_generation`` mark;
* **reads** -- window/metadata lookups, full snapshot reconstruction,
  per-AS history, and per-window change sets;
* **retention** -- an optional cap applied at append time, the
  :meth:`~SnapshotBackend.drop_snapshot` primitive retention is built on
  (which the tiered backend intercepts to archive instead of delete), and
  an explicit :meth:`~SnapshotBackend.compact`.

Concrete implementations: :class:`~repro.service.backends.sqlite.SnapshotStore`
(SQLite WAL, the production default), :class:`~repro.service.backends.memory.MemoryBackend`
(the pure-Python reference the conformance suite is written against), and
:class:`~repro.service.backends.archive.TieredBackend` (hot backend + cold
append-only archive segments).

This module also owns the canonical wire codec -- :func:`snapshot_payload`
and its inverse :func:`snapshot_from_payload` -- because byte-identical
payloads across backends (and across replicated hosts) are part of the
contract, not a property of any one implementation.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.bgp.asn import ASN
from repro.core.counters import ASCounters, CounterStore
from repro.core.results import ClassificationResult
from repro.core.thresholds import Thresholds
from repro.stream.engine import WindowSnapshot

#: Snapshot kinds accepted by every backend.
SNAPSHOT_KINDS = ("window", "batch")


class StoreError(Exception):
    """Raised for unusable stores and invalid store operations."""


class FencedWriterError(StoreError):
    """A write carried a stale leader epoch and was rejected.

    The failover fence: writers capture :meth:`SnapshotBackend.leader_epoch`
    when they attach and stamp it on every append.  Promotion bumps the
    durable epoch, so a deposed leader that wakes up and keeps publishing
    is rejected on its first append instead of forking history.  Recover by
    re-attaching to the store (which captures the new epoch) -- or, for a
    deposed leader, by demoting it to a follower of the promoted host.
    """


@dataclass(frozen=True)
class StoredSnapshot:
    """Metadata row of one persisted snapshot (records fetched separately)."""

    snapshot_id: int
    kind: str
    window_start: int
    window_end: int
    skipped_windows: int
    events_total: int
    unique_tuples: int
    algorithm: str
    thresholds: Thresholds
    #: Store generation this snapshot committed at.  Local to the writing
    #: store: a replica applying this snapshot gets its *own* generation, and
    #: tracks the leader's separately (see ``applied_generation``).
    generation: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly metadata view."""
        return {
            "snapshot_id": self.snapshot_id,
            "kind": self.kind,
            "window_start": self.window_start,
            "window_end": self.window_end,
            "skipped_windows": self.skipped_windows,
            "events_total": self.events_total,
            "unique_tuples": self.unique_tuples,
            "algorithm": self.algorithm,
        }


@dataclass(frozen=True)
class ASHistoryEntry:
    """One AS's classification in one persisted snapshot."""

    snapshot_id: int
    window_start: int
    window_end: int
    code: str
    counters: ASCounters

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly view used by the HTTP API."""
        return {
            "snapshot_id": self.snapshot_id,
            "window_start": self.window_start,
            "window_end": self.window_end,
            "code": self.code,
            "counters": _counters_dict(self.counters),
        }


def _counters_dict(counters: ASCounters) -> Dict[str, int]:
    return {
        "tagger": counters.tagger,
        "silent": counters.silent,
        "forward": counters.forward,
        "cleaner": counters.cleaner,
    }


def _shares_dict(counters: ASCounters) -> Dict[str, float]:
    return {
        "tagger": counters.tagger_share(),
        "silent": counters.silent_share(),
        "forward": counters.forward_share(),
        "cleaner": counters.cleaner_share(),
    }


def snapshot_payload(snapshot: WindowSnapshot) -> Dict[str, object]:
    """Canonical JSON-friendly encoding of one window snapshot.

    This is *the* wire format of the serving layer: the HTTP server emits it
    for snapshots loaded from any backend, the archive tier persists it in
    its segment files, and tests compare it against the payload of the
    engine's in-memory snapshot to pin down store round-trip fidelity field
    by field.
    """
    result = snapshot.result
    ases: Dict[str, object] = {}
    for asn in sorted(result.observed_ases):
        counters = result.counters_of(asn)
        ases[str(asn)] = {
            "code": result.classification_of(asn).code,
            "counters": _counters_dict(counters),
            "shares": _shares_dict(counters),
        }
    return {
        "window_start": snapshot.window_start,
        "window_end": snapshot.window_end,
        "skipped_windows": snapshot.skipped_windows,
        "events_total": snapshot.events_total,
        "unique_tuples": snapshot.unique_tuples,
        "algorithm": result.algorithm,
        "summary": snapshot.summary(),
        "ases": ases,
        "changed": {
            str(asn): [old, new] for asn, (old, new) in sorted(snapshot.changed.items())
        },
    }


def snapshot_from_payload(
    payload: Dict[str, Any], thresholds: Thresholds
) -> WindowSnapshot:
    """Rebuild a :class:`WindowSnapshot` from its canonical wire payload.

    The inverse of :func:`snapshot_payload` for every field the backends
    persist.  Per-AS codes are *recomputed* from the counters and thresholds
    -- exactly how the SQLite backend reconstructs local rows -- so a
    payload applied through this function (a replicated leader snapshot, an
    archived cold-tier record) round-trips byte-identically back out of the
    serving API.
    """
    observed: Set[ASN] = set()
    state: Dict[ASN, Tuple[int, int, int, int]] = {}
    for asn_text, info in payload["ases"].items():
        asn = int(asn_text)
        observed.add(asn)
        counters = info["counters"]
        values = (
            int(counters["tagger"]),
            int(counters["silent"]),
            int(counters["forward"]),
            int(counters["cleaner"]),
        )
        if any(values):
            state[asn] = values
    result = ClassificationResult(
        store=CounterStore.from_state(state, thresholds),
        observed_ases=observed,
        algorithm=str(payload["algorithm"]),
    )
    changed: Dict[ASN, Tuple[str, str]] = {
        int(asn_text): (str(codes[0]), str(codes[1]))
        for asn_text, codes in payload["changed"].items()
    }
    return WindowSnapshot(
        window_start=int(payload["window_start"]),
        window_end=int(payload["window_end"]),
        skipped_windows=int(payload["skipped_windows"]),
        events_total=int(payload["events_total"]),
        unique_tuples=int(payload["unique_tuples"]),
        result=result,
        changed=changed,
    )


def require_valid_kind(kind: str) -> None:
    """Shared append-path validation of the snapshot kind."""
    if kind not in SNAPSHOT_KINDS:
        raise ValueError(f"unknown snapshot kind {kind!r}")


def require_valid_retention(retention: Optional[int]) -> None:
    """Shared constructor validation of a retention cap."""
    if retention is not None and retention < 1:
        raise ValueError(f"retention must be >= 1, got {retention}")


def require_current_epoch(epoch: Optional[int], leader_epoch: int) -> None:
    """Shared append-path fencing check.

    Backends call this inside their write transaction (or under their write
    lock), so the comparison and the append are atomic with respect to a
    concurrent promotion.  ``None`` means the writer opted out of fencing
    (local single-writer deployments), which keeps every pre-failover call
    site working unchanged.
    """
    if epoch is not None and epoch < leader_epoch:
        raise FencedWriterError(
            f"write fenced: writer epoch {epoch} is behind leader epoch "
            f"{leader_epoch} -- this writer was deposed by a promotion; "
            "re-attach to the store or demote it to a follower"
        )


class SnapshotBackend(ABC):
    """Abstract durable store of classification snapshots.

    Implementations must preserve the semantics the conformance suite
    (``tests/test_backends.py``) pins down:

    * one append is atomic -- readers see the whole snapshot at a newer
      generation or none of it, never a torn half;
    * ``if_absent`` appends are idempotent per
      ``(kind, window_start, window_end)`` and do not move the generation
      when they deduplicate;
    * pinned snapshot ids are honoured, and a pinned id already taken by a
      *different* window raises :class:`StoreError` (replica divergence);
    * snapshot ids are never reused, even after retention dropped a row;
    * the generation counter is strictly monotonic across committed writes,
      ``pruned_through`` only rises, and ``set_applied_generation`` only
      moves forward;
    * reads may come from many threads concurrently with the single writer.
    """

    #: Optional cap on retained snapshots, applied at append time.
    retention: Optional[int] = None

    # -- identity -----------------------------------------------------------------------
    @property
    @abstractmethod
    def url(self) -> str:
        """The ``scheme:target`` URL this backend was opened from."""

    # -- lifecycle ----------------------------------------------------------------------
    @abstractmethod
    def close(self) -> None:
        """Release every resource; further operations raise :class:`StoreError`."""

    def __enter__(self) -> "SnapshotBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writes -------------------------------------------------------------------------
    @abstractmethod
    def append_snapshot(
        self,
        snapshot: WindowSnapshot,
        *,
        kind: str = "window",
        if_absent: bool = False,
        snapshot_id: Optional[int] = None,
        epoch: Optional[int] = None,
    ) -> int:
        """Durably persist one snapshot; returns its snapshot id.

        *epoch* is the leader epoch the writer captured when it attached;
        an append whose epoch is behind the store's current
        :meth:`leader_epoch` raises :class:`FencedWriterError` instead of
        committing (``None`` skips the fence).
        """

    @abstractmethod
    def drop_snapshot(self, snapshot_id: int) -> bool:
        """Remove one snapshot, advancing the ``pruned_through`` horizon.

        The retention primitive: backends apply their own cap through it,
        and the tiered backend calls it on its hot store *after* archiving
        the snapshot, which is what turns retention into archival.  Returns
        whether the id existed.  A successful drop is a committed write and
        bumps the generation.
        """

    @abstractmethod
    def compact(self) -> int:
        """Apply retention and reclaim space; returns snapshots dropped."""

    # -- generation bookkeeping ---------------------------------------------------------
    @abstractmethod
    def generation(self) -> int:
        """Monotonic write counter (the read-cache key of the server)."""

    @abstractmethod
    def pruned_through(self) -> int:
        """Newest commit generation retention ever pruned (0: nothing yet)."""

    @abstractmethod
    def applied_generation(self) -> int:
        """The leader generation this replica has applied through (0: never)."""

    @abstractmethod
    def set_applied_generation(self, generation: int) -> None:
        """Record the applied leader generation (monotonic: only forward)."""

    @abstractmethod
    def leader_epoch(self) -> int:
        """The durable fencing epoch writers must carry (0 on a new store)."""

    @abstractmethod
    def bump_leader_epoch(self) -> int:
        """Advance the fencing epoch (promotion); returns the new epoch.

        A committed write: past this point every append stamped with an
        older epoch raises :class:`FencedWriterError`.
        """

    # -- metadata reads -----------------------------------------------------------------
    @abstractmethod
    def __len__(self) -> int:
        """Number of queryable snapshots."""

    @abstractmethod
    def latest(self) -> Optional[StoredSnapshot]:
        """Metadata of the newest snapshot, or ``None`` on an empty store."""

    @abstractmethod
    def get(self, snapshot_id: int) -> Optional[StoredSnapshot]:
        """Metadata of one snapshot by id."""

    @abstractmethod
    def by_window_end(self, window_end: int) -> Optional[StoredSnapshot]:
        """Metadata of the newest snapshot whose window ends at *window_end*."""

    @abstractmethod
    def find_window(
        self, kind: str, window_start: int, window_end: int
    ) -> Optional[StoredSnapshot]:
        """Metadata of the newest snapshot matching the exact window key."""

    @abstractmethod
    def latest_window_end(self, kind: str = "window") -> Optional[int]:
        """The largest persisted ``window_end`` of *kind* (``None`` when empty)."""

    @abstractmethod
    def snapshots(self) -> List[StoredSnapshot]:
        """Metadata of every queryable snapshot, oldest first."""

    @abstractmethod
    def snapshots_since(
        self, generation: int, *, limit: Optional[int] = None
    ) -> List[StoredSnapshot]:
        """Retained snapshots committed after *generation*, commit order."""

    # -- full snapshot reads ------------------------------------------------------------
    @abstractmethod
    def load_snapshot(self, snapshot_id: int) -> WindowSnapshot:
        """Reconstruct the full snapshot, or raise :class:`StoreError`."""

    @abstractmethod
    def changes(self, snapshot_id: int) -> Dict[ASN, Tuple[str, str]]:
        """The ``{asn: (old_code, new_code)}`` change set of one snapshot."""

    # -- per-AS queries -----------------------------------------------------------------
    @abstractmethod
    def as_history(
        self, asn: ASN, *, limit: Optional[int] = None
    ) -> List[ASHistoryEntry]:
        """Classification history of one AS, newest snapshot first."""

    def as_latest(self, asn: ASN) -> Optional[ASHistoryEntry]:
        """The newest persisted classification of one AS (``None`` if unseen)."""
        history = self.as_history(asn, limit=1)
        return history[0] if history else None

    # -- statistics ---------------------------------------------------------------------
    @abstractmethod
    def stats(self) -> Dict[str, object]:
        """Store-level statistics for ``/v1/stats`` and operations."""

    # -- ingest telemetry ---------------------------------------------------------------
    def set_ingest_stats(self, stats: Dict[str, object]) -> None:
        """Record the producing engine's ingest-batching telemetry.

        Deliberately non-abstract: telemetry is additive and backends that
        predate it (or don't care, like read-only replicas) inherit this
        in-memory default.  Durable backends may override to persist the
        payload so a scrape after a server restart still sees the last
        producer's counters.  The payload is the engine's
        :meth:`~repro.stream.engine.StreamEngine.ingest_stats` dict.
        """
        self._ingest_stats = dict(stats)

    def ingest_stats(self) -> Optional[Dict[str, object]]:
        """The last recorded ingest telemetry, or ``None`` if never set."""
        return getattr(self, "_ingest_stats", None)


def records_of(snapshot: WindowSnapshot) -> List[Tuple[int, str, int, int, int, int]]:
    """Flatten a snapshot into the per-AS record rows every backend persists."""
    result = snapshot.result
    records = []
    for asn in result.observed_ases:
        counters = result.counters_of(asn)
        records.append(
            (
                int(asn),
                result.classification_of(asn).code,
                counters.tagger,
                counters.silent,
                counters.forward,
                counters.cleaner,
            )
        )
    return records


def snapshot_from_records(
    meta: StoredSnapshot,
    records: List[Tuple[int, str, int, int, int, int]],
    changed: Dict[ASN, Tuple[str, str]],
) -> WindowSnapshot:
    """Rebuild a :class:`WindowSnapshot` from persisted record rows.

    The reconstruction is field-faithful and shared by the SQLite and
    memory backends: per-AS codes recompute from the raw counters and the
    persisted thresholds, the observed-AS set includes all-zero rows, and
    the change map round-trips as stored.
    """
    counter_state: Dict[ASN, Tuple[int, int, int, int]] = {}
    observed: Set[ASN] = set()
    for asn, _code, tagger, silent, forward, cleaner in records:
        observed.add(asn)
        if tagger or silent or forward or cleaner:
            counter_state[asn] = (tagger, silent, forward, cleaner)
    result = ClassificationResult(
        store=CounterStore.from_state(counter_state, meta.thresholds),
        observed_ases=observed,
        algorithm=meta.algorithm,
    )
    return WindowSnapshot(
        window_start=meta.window_start,
        window_end=meta.window_end,
        skipped_windows=meta.skipped_windows,
        events_total=meta.events_total,
        unique_tuples=meta.unique_tuples,
        result=result,
        changed=dict(changed),
    )


#: URL schemes :func:`repro.service.backends.open_store` dispatches on.
STORE_SCHEMES = ("sqlite", "memory")


def parse_store_url(url: Union[str, os.PathLike]) -> Tuple[str, str]:
    """Split a store URL into ``(scheme, target)``.

    ``sqlite:path`` and ``memory:`` are explicit; anything else (including
    the SQLite-native ``:memory:`` spelling) is a plain filesystem path and
    defaults to the SQLite backend, so every pre-URL call site keeps
    working unchanged.
    """
    text = str(url)
    if text == ":memory:":
        return "sqlite", ":memory:"
    if text.startswith("memory:"):
        rest = text[len("memory:"):]
        if rest:
            raise ValueError(
                f"memory: stores are anonymous and per-process, got {text!r}"
            )
        return "memory", ""
    if text.startswith("sqlite:"):
        target = text[len("sqlite:"):]
        if not target:
            raise ValueError(f"sqlite: store URL needs a path, got {text!r}")
        return "sqlite", target
    return "sqlite", text


__all__ = [
    "ASHistoryEntry",
    "FencedWriterError",
    "SNAPSHOT_KINDS",
    "STORE_SCHEMES",
    "SnapshotBackend",
    "StoreError",
    "StoredSnapshot",
    "parse_store_url",
    "records_of",
    "require_current_epoch",
    "require_valid_kind",
    "require_valid_retention",
    "snapshot_from_payload",
    "snapshot_from_records",
    "snapshot_payload",
]
