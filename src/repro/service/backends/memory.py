"""In-process reference implementation of :class:`SnapshotBackend`.

:class:`MemoryBackend` keeps every snapshot in plain Python structures
behind one re-entrant lock.  It exists for two reasons:

* it is the **reference implementation** the backend-conformance suite
  (``tests/test_backends.py``) is written against -- each contract rule
  (id allocation, generation monotonicity, retention horizons, pinned-id
  divergence) is expressed here in a few readable lines, free of SQL;
* it is the cheapest store for tests and demos: ``--store memory:`` gives
  ``repro stream``/``serve`` a fully working persistence layer with zero
  filesystem footprint.

Nothing survives the process.  Snapshot ids mirror SQLite's AUTOINCREMENT
semantics -- monotonically increasing and never reused, and a pinned id
advances the allocator past itself -- so replication and archival behave
identically on top of either backend.
"""

from __future__ import annotations

import sys
import threading
from typing import Dict, List, Optional, Tuple

from repro.bgp.asn import ASN
from repro.core.counters import ASCounters
from repro.service.backends.base import (
    ASHistoryEntry,
    SnapshotBackend,
    StoredSnapshot,
    StoreError,
    records_of,
    require_current_epoch,
    require_valid_kind,
    require_valid_retention,
    snapshot_from_records,
)
from repro.stream.engine import WindowSnapshot


class _Row:
    """One stored snapshot: metadata + per-AS records + change set."""

    __slots__ = ("meta", "records", "changed")

    def __init__(
        self,
        meta: StoredSnapshot,
        records: Dict[int, Tuple[str, int, int, int, int]],
        changed: Dict[ASN, Tuple[str, str]],
    ) -> None:
        self.meta = meta
        self.records = records
        self.changed = changed


class MemoryBackend(SnapshotBackend):
    """Dictionary-backed snapshot store (per-process, test/demo grade)."""

    def __init__(self, *, retention: Optional[int] = None) -> None:
        require_valid_retention(retention)
        self.retention = retention
        self._lock = threading.RLock()
        self._rows: Dict[int, _Row] = {}
        self._order: List[int] = []  # insertion order == ascending ids
        self._next_id = 1
        self._generation = 0
        self._pruned_through = 0
        self._applied_generation = 0
        self._leader_epoch = 0
        self._closed = False

    @property
    def url(self) -> str:
        """The ``memory:`` URL (anonymous: every open is a fresh store)."""
        return "memory:"

    def _check_open(self) -> None:
        if self._closed:
            raise StoreError("store is closed")

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._rows.clear()
            self._order.clear()

    # -- writes -------------------------------------------------------------------------
    def append_snapshot(
        self,
        snapshot: WindowSnapshot,
        *,
        kind: str = "window",
        if_absent: bool = False,
        snapshot_id: Optional[int] = None,
        epoch: Optional[int] = None,
    ) -> int:
        require_valid_kind(kind)
        result = snapshot.result
        thresholds = result.thresholds
        records = {
            asn: (code, tagger, silent, forward, cleaner)
            for asn, code, tagger, silent, forward, cleaner in records_of(snapshot)
        }
        window = (kind, snapshot.window_start, snapshot.window_end)
        with self._lock:
            self._check_open()
            # Fencing first: a deposed writer must not even see dedup success.
            require_current_epoch(epoch, self._leader_epoch)
            if if_absent:
                for existing_id in reversed(self._order):
                    meta = self._rows[existing_id].meta
                    if (meta.kind, meta.window_start, meta.window_end) == window:
                        return existing_id
            if snapshot_id is not None:
                taken = self._rows.get(snapshot_id)
                if taken is not None:
                    held = (
                        taken.meta.kind,
                        taken.meta.window_start,
                        taken.meta.window_end,
                    )
                    if held == window:
                        return snapshot_id
                    raise StoreError(
                        f"snapshot id {snapshot_id} already holds window {held!r},"
                        f" not {window!r} -- replica diverged from its leader"
                    )
                # AUTOINCREMENT semantics: an explicit id advances the
                # allocator, so later auto-assigned ids never collide.
                self._next_id = max(self._next_id, snapshot_id + 1)
            else:
                snapshot_id = self._next_id
                self._next_id += 1
            self._generation += 1
            self._rows[snapshot_id] = _Row(
                meta=StoredSnapshot(
                    snapshot_id=snapshot_id,
                    kind=kind,
                    window_start=snapshot.window_start,
                    window_end=snapshot.window_end,
                    skipped_windows=snapshot.skipped_windows,
                    events_total=snapshot.events_total,
                    unique_tuples=snapshot.unique_tuples,
                    algorithm=result.algorithm,
                    thresholds=thresholds,
                    generation=self._generation,
                ),
                records=records,
                changed=dict(snapshot.changed),
            )
            # Pinned ids may arrive out of order (replication applies in the
            # leader's commit order, but batch + window kinds interleave);
            # keep the scan order id-ascending like the SQLite primary key.
            self._order.append(snapshot_id)
            self._order.sort()
            if self.retention is not None:
                self._apply_retention()
        return snapshot_id

    def _apply_retention(self) -> int:
        """Drop the oldest snapshots beyond the cap (caller holds the lock)."""
        assert self.retention is not None
        dropped = 0
        while len(self._order) > self.retention:
            stale_id = self._order.pop(0)
            row = self._rows.pop(stale_id)
            self._pruned_through = max(self._pruned_through, row.meta.generation)
            dropped += 1
        return dropped

    def drop_snapshot(self, snapshot_id: int) -> bool:
        with self._lock:
            self._check_open()
            row = self._rows.pop(snapshot_id, None)
            if row is None:
                return False
            self._order.remove(snapshot_id)
            self._pruned_through = max(self._pruned_through, row.meta.generation)
            self._generation += 1
        return True

    def compact(self) -> int:
        with self._lock:
            self._check_open()
            dropped = 0
            if self.retention is not None:
                dropped = self._apply_retention()
            if dropped:
                self._generation += 1
        return dropped

    # -- generation bookkeeping ---------------------------------------------------------
    def generation(self) -> int:
        with self._lock:
            self._check_open()
            return self._generation

    def pruned_through(self) -> int:
        with self._lock:
            self._check_open()
            return self._pruned_through

    def applied_generation(self) -> int:
        with self._lock:
            self._check_open()
            return self._applied_generation

    def set_applied_generation(self, generation: int) -> None:
        if generation < 0:
            raise ValueError(f"generation must be >= 0, got {generation}")
        with self._lock:
            self._check_open()
            self._applied_generation = max(self._applied_generation, generation)

    def leader_epoch(self) -> int:
        with self._lock:
            self._check_open()
            return self._leader_epoch

    def bump_leader_epoch(self) -> int:
        with self._lock:
            self._check_open()
            self._leader_epoch += 1
            return self._leader_epoch

    # -- metadata reads -----------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            self._check_open()
            return len(self._order)

    def latest(self) -> Optional[StoredSnapshot]:
        with self._lock:
            self._check_open()
            if not self._order:
                return None
            return self._rows[self._order[-1]].meta

    def get(self, snapshot_id: int) -> Optional[StoredSnapshot]:
        with self._lock:
            self._check_open()
            row = self._rows.get(snapshot_id)
            return row.meta if row is not None else None

    def by_window_end(self, window_end: int) -> Optional[StoredSnapshot]:
        with self._lock:
            self._check_open()
            for snapshot_id in reversed(self._order):
                meta = self._rows[snapshot_id].meta
                if meta.window_end == window_end:
                    return meta
        return None

    def find_window(
        self, kind: str, window_start: int, window_end: int
    ) -> Optional[StoredSnapshot]:
        with self._lock:
            self._check_open()
            for snapshot_id in reversed(self._order):
                meta = self._rows[snapshot_id].meta
                if (meta.kind, meta.window_start, meta.window_end) == (
                    kind,
                    window_start,
                    window_end,
                ):
                    return meta
        return None

    def latest_window_end(self, kind: str = "window") -> Optional[int]:
        with self._lock:
            self._check_open()
            ends = [
                self._rows[snapshot_id].meta.window_end
                for snapshot_id in self._order
                if self._rows[snapshot_id].meta.kind == kind
            ]
            return max(ends) if ends else None

    def snapshots(self) -> List[StoredSnapshot]:
        with self._lock:
            self._check_open()
            return [self._rows[snapshot_id].meta for snapshot_id in self._order]

    def snapshots_since(
        self, generation: int, *, limit: Optional[int] = None
    ) -> List[StoredSnapshot]:
        if generation < 0:
            raise ValueError(f"generation must be >= 0, got {generation}")
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        with self._lock:
            self._check_open()
            metas = sorted(
                (
                    self._rows[snapshot_id].meta
                    for snapshot_id in self._order
                    if self._rows[snapshot_id].meta.generation > generation
                ),
                key=lambda meta: (meta.generation, meta.snapshot_id),
            )
            return metas[:limit] if limit is not None else metas

    # -- full snapshot reads ------------------------------------------------------------
    def load_snapshot(self, snapshot_id: int) -> WindowSnapshot:
        with self._lock:
            self._check_open()
            row = self._rows.get(snapshot_id)
            if row is None:
                raise StoreError(f"no snapshot {snapshot_id} in memory store")
            records = [
                (asn, code, tagger, silent, forward, cleaner)
                for asn, (code, tagger, silent, forward, cleaner) in row.records.items()
            ]
            return snapshot_from_records(row.meta, records, row.changed)

    def changes(self, snapshot_id: int) -> Dict[ASN, Tuple[str, str]]:
        with self._lock:
            self._check_open()
            row = self._rows.get(snapshot_id)
            return dict(row.changed) if row is not None else {}

    # -- per-AS queries -----------------------------------------------------------------
    def as_history(
        self, asn: ASN, *, limit: Optional[int] = None
    ) -> List[ASHistoryEntry]:
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        key = int(asn)
        entries: List[ASHistoryEntry] = []
        with self._lock:
            self._check_open()
            for snapshot_id in reversed(self._order):
                row = self._rows[snapshot_id]
                record = row.records.get(key)
                if record is None:
                    continue
                code, tagger, silent, forward, cleaner = record
                entries.append(
                    ASHistoryEntry(
                        snapshot_id=snapshot_id,
                        window_start=row.meta.window_start,
                        window_end=row.meta.window_end,
                        code=code,
                        counters=ASCounters(
                            tagger=tagger, silent=silent, forward=forward, cleaner=cleaner
                        ),
                    )
                )
                if limit is not None and len(entries) >= limit:
                    break
        return entries

    # -- statistics ---------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            self._check_open()
            record_count = sum(len(row.records) for row in self._rows.values())
            distinct = len({asn for row in self._rows.values() for asn in row.records})
            size_bytes = sum(
                sys.getsizeof(row.records) + sys.getsizeof(row.changed)
                for row in self._rows.values()
            )
            return {
                "backend": "memory",
                "path": self.url,
                "generation": self._generation,
                "snapshots": len(self._order),
                "as_records": record_count,
                "distinct_ases": distinct,
                "retention": self.retention,
                "size_bytes": size_bytes,
                "pruned_through": self._pruned_through,
                "applied_generation": self._applied_generation,
                "leader_epoch": self._leader_epoch,
            }
