"""SQLite-WAL implementation of the :class:`SnapshotBackend` contract.

The production default: :class:`SnapshotStore` persists every
:class:`~repro.stream.engine.WindowSnapshot` (and batch
:class:`~repro.core.results.ClassificationResult`) into a single SQLite
database in WAL mode, so results outlive the producing process and many
concurrent readers can share one producer:

* **atomic writes** -- one snapshot is one transaction; readers never see a
  half-written snapshot;
* **schema versioning** -- the database carries its schema version and the
  store refuses to open an incompatible file instead of corrupting it;
* **retention / compaction** -- an optional cap on retained window
  snapshots, applied at append time, plus an explicit :meth:`compact`;
* **indexed per-AS history** -- ``(asn, snapshot)`` indexed records answer
  "how was AS X classified over time" without scanning snapshots;
* **generation counter** -- every committed write bumps a monotonically
  increasing generation, which the HTTP server uses to key its read cache;
* **generation-addressed changelog** -- every snapshot records the
  generation it committed at, so :meth:`snapshots_since` can page through
  "everything committed after generation G" in commit order.  This is the
  replication feed (:mod:`repro.service.replication`): a follower remembers
  the last leader generation it applied (:meth:`set_applied_generation`,
  durably in the ``meta`` table) and the leader remembers the newest
  generation its retention ever pruned (:meth:`pruned_through`), so a
  lagging follower that retention overtook is detected instead of silently
  skipping windows.

Reads and writes may come from different threads: each thread gets its own
SQLite connection (WAL readers do not block the writer), and writes are
serialised through a lock.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.bgp.asn import ASN
from repro.core.counters import ASCounters, CounterStore
from repro.core.results import ClassificationResult
from repro.core.thresholds import Thresholds
from repro.service.backends.base import (
    ASHistoryEntry,
    SnapshotBackend,
    StoredSnapshot,
    StoreError,
    records_of,
    require_current_epoch,
    require_valid_kind,
    require_valid_retention,
)
from repro.stream.engine import WindowSnapshot

#: Version of the on-disk schema this module reads and writes.  Version 2
#: added the per-snapshot commit ``generation`` column (replication feed);
#: version-1 files are migrated in place on open.
SCHEMA_VERSION = 2

#: SQLite's historic default variable cap is 999; retention prunes delete in
#: chunks below it so one giant prune still batches instead of erroring.
_DELETE_CHUNK = 500


# Individual statements (not one script) so initialisation can run them
# inside a single BEGIN IMMEDIATE transaction: executescript() would commit
# the transaction first, and concurrent multi-process opens (every fan-out
# worker opens the store) must serialise the version check + migration.
_SCHEMA_STATEMENTS = (
    """
    CREATE TABLE IF NOT EXISTS snapshots (
        id              INTEGER PRIMARY KEY AUTOINCREMENT,
        kind            TEXT NOT NULL,
        window_start    INTEGER NOT NULL,
        window_end      INTEGER NOT NULL,
        skipped_windows INTEGER NOT NULL,
        events_total    INTEGER NOT NULL,
        unique_tuples   INTEGER NOT NULL,
        algorithm       TEXT NOT NULL,
        thresholds      TEXT NOT NULL,
        generation      INTEGER NOT NULL DEFAULT 0
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_snapshots_window_end ON snapshots (window_end)",
    "CREATE INDEX IF NOT EXISTS idx_snapshots_generation ON snapshots (generation)",
    """
    CREATE TABLE IF NOT EXISTS as_records (
        snapshot_id INTEGER NOT NULL,
        asn         INTEGER NOT NULL,
        code        TEXT NOT NULL,
        tagger      INTEGER NOT NULL,
        silent      INTEGER NOT NULL,
        forward     INTEGER NOT NULL,
        cleaner     INTEGER NOT NULL,
        PRIMARY KEY (snapshot_id, asn)
    ) WITHOUT ROWID
    """,
    "CREATE INDEX IF NOT EXISTS idx_as_records_asn ON as_records (asn, snapshot_id)",
    """
    CREATE TABLE IF NOT EXISTS changes (
        snapshot_id INTEGER NOT NULL,
        asn         INTEGER NOT NULL,
        old_code    TEXT NOT NULL,
        new_code    TEXT NOT NULL,
        PRIMARY KEY (snapshot_id, asn)
    ) WITHOUT ROWID
    """,
)


class SnapshotStore(SnapshotBackend):
    """SQLite-WAL-backed persistence for classification snapshots."""

    def __init__(
        self,
        path: Union[str, os.PathLike],
        *,
        retention: Optional[int] = None,
    ) -> None:
        require_valid_retention(retention)
        self.path = str(path)
        self.retention = retention
        self._write_lock = threading.Lock()
        self._local = threading.local()
        self._closed = False
        # Every connection ever opened, so close() can release them all --
        # thread-local handles of retired reader threads included.
        self._connections: List[sqlite3.Connection] = []
        self._connections_lock = threading.Lock()
        # In-memory databases are per-connection; share one connection (and
        # serialise reads through the write lock) so tests can use ":memory:".
        self._shared: Optional[sqlite3.Connection] = None
        if self.path == ":memory:":
            self._shared = self._connect()
        self._initialise()

    @property
    def url(self) -> str:
        """The ``sqlite:path`` URL of this store."""
        return f"sqlite:{self.path}"

    # -- connection management ----------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        connection = sqlite3.connect(self.path, check_same_thread=False)
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        with self._connections_lock:
            self._connections.append(connection)
        return connection

    def _conn(self) -> sqlite3.Connection:
        if self._closed:
            raise StoreError("store is closed")
        if self._shared is not None:
            return self._shared
        connection: Optional[sqlite3.Connection] = getattr(self._local, "connection", None)
        if connection is None:
            connection = self._connect()
            self._local.connection = connection
        return connection

    def _initialise(self) -> None:
        with self._write_lock:
            connection = self._conn()
            with connection:
                # One BEGIN IMMEDIATE transaction around the whole check /
                # migrate / create sequence: concurrent opens from sibling
                # processes (a fan-out worker fleet, a serving replica's
                # syncer) must not both read version 1 and both run the
                # migration's ALTER TABLE, nor both insert the meta rows of
                # a fresh file.
                connection.execute("BEGIN IMMEDIATE")
                connection.execute(
                    "CREATE TABLE IF NOT EXISTS meta"
                    " (key TEXT PRIMARY KEY, value TEXT NOT NULL)"
                )
                row = connection.execute(
                    "SELECT value FROM meta WHERE key = 'schema_version'"
                ).fetchone()
                if row is not None and int(row[0]) == 1:
                    self._migrate_v1(connection)
                elif row is not None and int(row[0]) != SCHEMA_VERSION:
                    raise StoreError(
                        f"store {self.path!r} has schema version {row[0]}, "
                        f"this build reads version {SCHEMA_VERSION}"
                    )
                for statement in _SCHEMA_STATEMENTS:
                    connection.execute(statement)
                if row is None:
                    connection.execute(
                        "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                        (str(SCHEMA_VERSION),),
                    )
                    connection.execute(
                        "INSERT INTO meta (key, value) VALUES ('generation', '0')"
                    )
                connection.execute(
                    "INSERT OR IGNORE INTO meta (key, value)"
                    " VALUES ('pruned_through', '0')"
                )
                connection.execute(
                    "INSERT OR IGNORE INTO meta (key, value)"
                    " VALUES ('leader_epoch', '0')"
                )

    @staticmethod
    def _migrate_v1(connection: sqlite3.Connection) -> None:
        """In-place migration of a version-1 file to the version-2 schema.

        Version 1 had no per-snapshot commit generation.  Retained snapshots
        are backfilled with synthetic generations that keep commit order and
        end at the store's current generation counter, so appends after the
        migration continue the same monotonic sequence.  What (if anything)
        retention pruned before the migration is unknowable, so
        ``pruned_through`` starts at 0 -- harmless, because no follower can
        predate its leader's migration.
        """
        connection.execute(
            "ALTER TABLE snapshots ADD COLUMN generation INTEGER NOT NULL DEFAULT 0"
        )
        row = connection.execute(
            "SELECT value FROM meta WHERE key = 'generation'"
        ).fetchone()
        current = int(row[0]) if row is not None else 0
        rows = connection.execute("SELECT id FROM snapshots ORDER BY id").fetchall()
        for rank, (snapshot_id,) in enumerate(rows, start=1):
            connection.execute(
                "UPDATE snapshots SET generation = ? WHERE id = ?",
                (current - len(rows) + rank, snapshot_id),
            )
        connection.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION),),
        )

    def close(self) -> None:
        """Close every connection this store ever opened, on any thread.

        Thread-local reader connections are tracked at :meth:`_connect`
        time, so the handles of retired reader threads are released too --
        a long-lived process that recycles request threads must not leak
        one WAL file handle per dead thread.  Safe because every connection
        is opened with ``check_same_thread=False``.
        """
        self._closed = True
        with self._connections_lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            try:
                connection.close()
            except sqlite3.ProgrammingError:  # pragma: no cover - already closed
                pass
        self._shared = None
        self._local.connection = None

    def __enter__(self) -> "SnapshotStore":
        return self

    # -- writes -------------------------------------------------------------------------
    def append_snapshot(
        self,
        snapshot: WindowSnapshot,
        *,
        kind: str = "window",
        if_absent: bool = False,
        snapshot_id: Optional[int] = None,
        epoch: Optional[int] = None,
    ) -> int:
        """Durably persist one snapshot; returns its snapshot id.

        The snapshot metadata, every observed AS's classification record,
        and the per-window change set commit in a single transaction, and
        the store generation is bumped with them: readers either see the
        whole snapshot at a newer generation or none of it.  The committed
        generation is recorded on the snapshot row, which is what makes the
        store a generation-addressed changelog (:meth:`snapshots_since`).

        With ``if_absent=True`` the append is idempotent per
        ``(kind, window_start, window_end)``: if the store already holds a
        snapshot for that window the existing id is returned, nothing is
        written, and the generation does not move.  This is what makes
        resumed producers exactly-once -- a window re-emitted after a
        checkpoint restore lands on the copy the store already has.  The
        existence check runs inside the write transaction, so concurrent
        publishers on the same store cannot both insert.

        *snapshot_id* pins the row id instead of letting SQLite assign one.
        Replication uses this to carry the leader's ids onto followers, so
        id-bearing payloads (``/v1/as``, ``/v1/diff``) are byte-identical
        across hosts.  Window identity across hosts stays id-independent --
        dedup keys on ``(kind, window_start, window_end)`` -- and a pinned
        id that is already taken by a *different* window raises
        :class:`StoreError` (the replica diverged from its leader).

        *epoch* is the failover fence: a writer that captured the leader
        epoch before a promotion bumped it is rejected with
        :class:`~repro.service.backends.base.FencedWriterError` *before*
        any check runs -- a deposed leader must not even observe dedup
        success.  The comparison happens inside the write transaction, so
        it is atomic against a concurrent promotion.
        """
        require_valid_kind(kind)
        result = snapshot.result
        thresholds = result.thresholds
        records = records_of(snapshot)
        with self._write_lock:
            connection = self._conn()
            with connection:
                # sqlite3's legacy isolation starts the transaction at the
                # first DML, so the SELECTs below would otherwise run in
                # autocommit and two *processes* could both miss an existing
                # row or read the same generation.  BEGIN IMMEDIATE takes
                # the write lock up front, making check + insert one atomic
                # unit (the surrounding `with connection` still commits it).
                connection.execute("BEGIN IMMEDIATE")
                if epoch is not None:
                    fence = connection.execute(
                        "SELECT value FROM meta WHERE key = 'leader_epoch'"
                    ).fetchone()
                    require_current_epoch(
                        epoch, int(fence[0]) if fence is not None else 0
                    )
                if if_absent:
                    existing = connection.execute(
                        "SELECT id FROM snapshots WHERE kind = ? AND window_start = ?"
                        " AND window_end = ? ORDER BY id DESC LIMIT 1",
                        (kind, snapshot.window_start, snapshot.window_end),
                    ).fetchone()
                    if existing is not None:
                        return int(existing[0])
                if snapshot_id is not None:
                    taken = connection.execute(
                        "SELECT kind, window_start, window_end FROM snapshots"
                        " WHERE id = ?",
                        (snapshot_id,),
                    ).fetchone()
                    if taken is not None:
                        if tuple(taken) == (
                            kind,
                            snapshot.window_start,
                            snapshot.window_end,
                        ):
                            return snapshot_id
                        raise StoreError(
                            f"snapshot id {snapshot_id} already holds window"
                            f" {tuple(taken)!r}, not"
                            f" {(kind, snapshot.window_start, snapshot.window_end)!r}"
                            " -- replica diverged from its leader"
                        )
                row = connection.execute(
                    "SELECT value FROM meta WHERE key = 'generation'"
                ).fetchone()
                generation = (int(row[0]) if row is not None else 0) + 1
                cursor = connection.execute(
                    "INSERT INTO snapshots (id, kind, window_start, window_end,"
                    " skipped_windows, events_total, unique_tuples, algorithm,"
                    " thresholds, generation) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        snapshot_id,
                        kind,
                        snapshot.window_start,
                        snapshot.window_end,
                        snapshot.skipped_windows,
                        snapshot.events_total,
                        snapshot.unique_tuples,
                        result.algorithm,
                        json.dumps(
                            [
                                thresholds.tagger,
                                thresholds.silent,
                                thresholds.forward,
                                thresholds.cleaner,
                            ]
                        ),
                        generation,
                    ),
                )
                snapshot_id = int(cursor.lastrowid or 0)
                connection.executemany(
                    "INSERT INTO as_records (snapshot_id, asn, code, tagger,"
                    " silent, forward, cleaner) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    [(snapshot_id, *record) for record in records],
                )
                connection.executemany(
                    "INSERT INTO changes (snapshot_id, asn, old_code, new_code)"
                    " VALUES (?, ?, ?, ?)",
                    [
                        (snapshot_id, int(asn), old, new)
                        for asn, (old, new) in snapshot.changed.items()
                    ],
                )
                if self.retention is not None:
                    self._apply_retention(connection)
                connection.execute(
                    "UPDATE meta SET value = ? WHERE key = 'generation'",
                    (str(generation),),
                )
        return snapshot_id

    def _delete_snapshot_rows(
        self, connection: sqlite3.Connection, snapshot_ids: Sequence[int]
    ) -> None:
        """Delete all rows of *snapshot_ids* with batched ``IN`` statements.

        One statement per table per chunk (instead of three statements per
        snapshot in a Python loop), so a large prune does not stall the
        append path's write transaction.
        """
        for start in range(0, len(snapshot_ids), _DELETE_CHUNK):
            chunk = list(snapshot_ids[start:start + _DELETE_CHUNK])
            placeholders = ",".join("?" * len(chunk))
            for table, column in (
                ("as_records", "snapshot_id"),
                ("changes", "snapshot_id"),
                ("snapshots", "id"),
            ):
                connection.execute(
                    f"DELETE FROM {table} WHERE {column} IN ({placeholders})", chunk
                )

    def _apply_retention(self, connection: sqlite3.Connection) -> int:
        """Drop the oldest snapshots beyond the retention cap (returns count).

        The newest pruned commit generation is remembered in the meta table
        (``pruned_through``): it is the replication horizon below which a
        follower can no longer catch up from this store's changelog.
        """
        assert self.retention is not None
        stale = connection.execute(
            "SELECT id, generation FROM snapshots ORDER BY id DESC LIMIT -1 OFFSET ?",
            (self.retention,),
        ).fetchall()
        if not stale:
            return 0
        self._delete_snapshot_rows(connection, [int(row[0]) for row in stale])
        horizon = max(int(generation) for _, generation in stale)
        connection.execute(
            "UPDATE meta SET value = CAST(MAX(CAST(value AS INTEGER), ?) AS TEXT)"
            " WHERE key = 'pruned_through'",
            (horizon,),
        )
        return len(stale)

    def drop_snapshot(self, snapshot_id: int) -> bool:
        """Remove one snapshot and advance the ``pruned_through`` horizon.

        The tiered backend's retention primitive: called *after* the
        snapshot was archived, so retention archives instead of deleting.
        A successful drop is a committed write and bumps the generation
        (read caches keyed on the old generation must not survive it).
        """
        with self._write_lock:
            connection = self._conn()
            with connection:
                connection.execute("BEGIN IMMEDIATE")
                row = connection.execute(
                    "SELECT generation FROM snapshots WHERE id = ?", (snapshot_id,)
                ).fetchone()
                if row is None:
                    return False
                self._delete_snapshot_rows(connection, [snapshot_id])
                connection.execute(
                    "UPDATE meta SET value = CAST(MAX(CAST(value AS INTEGER), ?) AS TEXT)"
                    " WHERE key = 'pruned_through'",
                    (int(row[0]),),
                )
                connection.execute(
                    "UPDATE meta SET value = CAST(value AS INTEGER) + 1"
                    " WHERE key = 'generation'"
                )
        return True

    def compact(self) -> int:
        """Apply retention, reclaim free pages, and truncate the WAL.

        Returns the number of snapshots dropped.  Safe to call while readers
        are active (VACUUM briefly takes the database over, so compaction is
        an explicit maintenance call rather than part of the append path).
        """
        with self._write_lock:
            connection = self._conn()
            with connection:
                dropped = 0
                if self.retention is not None:
                    dropped = self._apply_retention(connection)
                if dropped:
                    connection.execute(
                        "UPDATE meta SET value = CAST(value AS INTEGER) + 1"
                        " WHERE key = 'generation'"
                    )
            connection.execute("VACUUM")
            connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        return dropped

    # -- metadata reads -----------------------------------------------------------------
    def generation(self) -> int:
        """Monotonic write counter (the read-cache key of the server)."""
        row = self._conn().execute(
            "SELECT value FROM meta WHERE key = 'generation'"
        ).fetchone()
        return int(row[0]) if row is not None else 0

    def pruned_through(self) -> int:
        """Newest commit generation retention ever pruned (0: nothing yet).

        The replication horizon: a follower whose applied generation is
        below this may have missed pruned snapshots for good, and must
        surface that as a sync error instead of skipping them silently.
        """
        row = self._conn().execute(
            "SELECT value FROM meta WHERE key = 'pruned_through'"
        ).fetchone()
        return int(row[0]) if row is not None else 0

    def applied_generation(self) -> int:
        """The leader generation this replica store has applied through.

        0 on a store that never replicated.  Durable in the ``meta`` table,
        so a killed follower resumes from where it left off -- the same
        exactly-once contract resumed producers get, since re-applied
        snapshots land on the idempotent window key anyway.
        """
        row = self._conn().execute(
            "SELECT value FROM meta WHERE key = 'applied_generation'"
        ).fetchone()
        return int(row[0]) if row is not None else 0

    def set_applied_generation(self, generation: int) -> None:
        """Durably record the applied leader generation (monotonic: only
        moves forward).  A meta-only write: the store's own generation does
        not bump, so follower read caches stay valid across bookkeeping."""
        if generation < 0:
            raise ValueError(f"generation must be >= 0, got {generation}")
        with self._write_lock:
            connection = self._conn()
            with connection:
                connection.execute(
                    "INSERT INTO meta (key, value) VALUES ('applied_generation', ?)"
                    " ON CONFLICT(key) DO UPDATE SET value = CAST(MAX("
                    "CAST(value AS INTEGER), CAST(excluded.value AS INTEGER)"
                    ") AS TEXT)",
                    (str(generation),),
                )

    def leader_epoch(self) -> int:
        """The durable fencing epoch writers must carry (0 on a new store)."""
        row = self._conn().execute(
            "SELECT value FROM meta WHERE key = 'leader_epoch'"
        ).fetchone()
        return int(row[0]) if row is not None else 0

    def bump_leader_epoch(self) -> int:
        """Advance the fencing epoch (promotion); returns the new epoch.

        A meta-only committed write: the store generation does not move
        (nothing a reader could serve changed), but every append stamped
        with the previous epoch is rejected from this point on.
        """
        with self._write_lock:
            connection = self._conn()
            with connection:
                connection.execute("BEGIN IMMEDIATE")
                row = connection.execute(
                    "SELECT value FROM meta WHERE key = 'leader_epoch'"
                ).fetchone()
                epoch = (int(row[0]) if row is not None else 0) + 1
                connection.execute(
                    "INSERT INTO meta (key, value) VALUES ('leader_epoch', ?)"
                    " ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                    (str(epoch),),
                )
        return epoch

    def __len__(self) -> int:
        row = self._conn().execute("SELECT COUNT(*) FROM snapshots").fetchone()
        return int(row[0])

    def _snapshot_from_row(
        self, row: Tuple[int, str, int, int, int, int, int, str, str, int]
    ) -> StoredSnapshot:
        tagger, silent, forward, cleaner = json.loads(row[8])
        return StoredSnapshot(
            snapshot_id=int(row[0]),
            kind=row[1],
            window_start=int(row[2]),
            window_end=int(row[3]),
            skipped_windows=int(row[4]),
            events_total=int(row[5]),
            unique_tuples=int(row[6]),
            algorithm=row[7],
            thresholds=Thresholds(
                tagger=tagger, silent=silent, forward=forward, cleaner=cleaner
            ),
            generation=int(row[9]),
        )

    _SNAPSHOT_COLUMNS = (
        "id, kind, window_start, window_end, skipped_windows,"
        " events_total, unique_tuples, algorithm, thresholds, generation"
    )

    def latest(self) -> Optional[StoredSnapshot]:
        """Metadata of the newest snapshot, or ``None`` on an empty store."""
        row = self._conn().execute(
            f"SELECT {self._SNAPSHOT_COLUMNS} FROM snapshots ORDER BY id DESC LIMIT 1"
        ).fetchone()
        return self._snapshot_from_row(row) if row is not None else None

    def get(self, snapshot_id: int) -> Optional[StoredSnapshot]:
        """Metadata of one snapshot by id."""
        row = self._conn().execute(
            f"SELECT {self._SNAPSHOT_COLUMNS} FROM snapshots WHERE id = ?",
            (snapshot_id,),
        ).fetchone()
        return self._snapshot_from_row(row) if row is not None else None

    def by_window_end(self, window_end: int) -> Optional[StoredSnapshot]:
        """Metadata of the newest snapshot whose window ends at *window_end*."""
        row = self._conn().execute(
            f"SELECT {self._SNAPSHOT_COLUMNS} FROM snapshots"
            " WHERE window_end = ? ORDER BY id DESC LIMIT 1",
            (window_end,),
        ).fetchone()
        return self._snapshot_from_row(row) if row is not None else None

    def find_window(
        self, kind: str, window_start: int, window_end: int
    ) -> Optional[StoredSnapshot]:
        """Metadata of the newest snapshot matching the exact window key.

        This is the idempotency key of :meth:`append_snapshot`: one
        ``(kind, window_start, window_end)`` triple identifies one published
        window of one producer run (or its exact re-emission after resume).
        """
        row = self._conn().execute(
            f"SELECT {self._SNAPSHOT_COLUMNS} FROM snapshots"
            " WHERE kind = ? AND window_start = ? AND window_end = ?"
            " ORDER BY id DESC LIMIT 1",
            (kind, window_start, window_end),
        ).fetchone()
        return self._snapshot_from_row(row) if row is not None else None

    def latest_window_end(self, kind: str = "window") -> Optional[int]:
        """The largest persisted ``window_end`` of *kind* (``None`` when empty).

        A resume-aware publisher reads this once at attach time: windows at
        or before it may already be in the store and need the idempotency
        check; windows past it are certainly new.
        """
        row = self._conn().execute(
            "SELECT MAX(window_end) FROM snapshots WHERE kind = ?", (kind,)
        ).fetchone()
        return int(row[0]) if row is not None and row[0] is not None else None

    def snapshots(self) -> List[StoredSnapshot]:
        """Metadata of every retained snapshot, oldest first."""
        rows = self._conn().execute(
            f"SELECT {self._SNAPSHOT_COLUMNS} FROM snapshots ORDER BY id"
        ).fetchall()
        return [self._snapshot_from_row(row) for row in rows]

    def snapshots_since(
        self, generation: int, *, limit: Optional[int] = None
    ) -> List[StoredSnapshot]:
        """Retained snapshots committed after *generation*, commit order.

        The replication feed: a follower that applied through generation G
        asks for everything after G.  Served by the generation index, so the
        cost is proportional to the page, not the store.  Retention prunes
        oldest-first and commit generations grow with ids, so every retained
        snapshot's generation is above :meth:`pruned_through` -- a page from
        ``generation >= pruned_through`` is gap-free.
        """
        if generation < 0:
            raise ValueError(f"generation must be >= 0, got {generation}")
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        query = (
            f"SELECT {self._SNAPSHOT_COLUMNS} FROM snapshots"
            " WHERE generation > ? ORDER BY generation, id"
        )
        parameters: Tuple[int, ...] = (generation,)
        if limit is not None:
            query += " LIMIT ?"
            parameters = (generation, limit)
        rows = self._conn().execute(query, parameters).fetchall()
        return [self._snapshot_from_row(row) for row in rows]

    # -- full snapshot reads ------------------------------------------------------------
    @contextmanager
    def _read_txn(self) -> Iterator[sqlite3.Connection]:
        """A consistent multi-statement read view.

        WAL gives snapshot isolation per transaction, not per statement; a
        concurrent retention prune between two autocommit SELECTs would
        otherwise tear a multi-query read (metadata found, records already
        deleted).  On the shared in-memory connection the write lock stands
        in for the transaction.
        """
        connection = self._conn()
        if self._shared is not None:
            with self._write_lock:
                yield connection
            return
        connection.execute("BEGIN")
        try:
            yield connection
        finally:
            connection.execute("COMMIT")

    def load_snapshot(self, snapshot_id: int) -> WindowSnapshot:
        """Reconstruct the full :class:`WindowSnapshot` persisted under *snapshot_id*.

        The reconstruction is field-faithful: per-AS codes, raw counters
        (hence shares), the observed-AS set, the algorithm, the thresholds,
        and the per-window change map all round-trip.  All reads happen in
        one transaction, so a snapshot pruned concurrently either loads
        whole or raises :class:`StoreError` -- never a torn half.
        """
        with self._read_txn() as connection:
            row = connection.execute(
                f"SELECT {self._SNAPSHOT_COLUMNS} FROM snapshots WHERE id = ?",
                (snapshot_id,),
            ).fetchone()
            if row is None:
                raise StoreError(f"no snapshot {snapshot_id} in {self.path!r}")
            meta = self._snapshot_from_row(row)
            counter_state: Dict[ASN, Tuple[int, int, int, int]] = {}
            observed: Set[ASN] = set()
            for asn, tagger, silent, forward, cleaner in connection.execute(
                "SELECT asn, tagger, silent, forward, cleaner FROM as_records"
                " WHERE snapshot_id = ?",
                (snapshot_id,),
            ):
                observed.add(asn)
                if tagger or silent or forward or cleaner:
                    counter_state[asn] = (tagger, silent, forward, cleaner)
            changed = {
                asn: (old, new)
                for asn, old, new in connection.execute(
                    "SELECT asn, old_code, new_code FROM changes WHERE snapshot_id = ?",
                    (snapshot_id,),
                )
            }
        result = ClassificationResult(
            store=CounterStore.from_state(counter_state, meta.thresholds),
            observed_ases=observed,
            algorithm=meta.algorithm,
        )
        return WindowSnapshot(
            window_start=meta.window_start,
            window_end=meta.window_end,
            skipped_windows=meta.skipped_windows,
            events_total=meta.events_total,
            unique_tuples=meta.unique_tuples,
            result=result,
            changed=changed,
        )

    def changes(self, snapshot_id: int) -> Dict[ASN, Tuple[str, str]]:
        """The ``{asn: (old_code, new_code)}`` change set of one snapshot."""
        return {
            asn: (old, new)
            for asn, old, new in self._conn().execute(
                "SELECT asn, old_code, new_code FROM changes WHERE snapshot_id = ?",
                (snapshot_id,),
            )
        }

    # -- per-AS queries -----------------------------------------------------------------
    def as_history(self, asn: ASN, *, limit: Optional[int] = None) -> List[ASHistoryEntry]:
        """Classification history of one AS, newest snapshot first.

        Served by the ``(asn, snapshot_id)`` index: cost is proportional to
        the history length of this AS, not to the store size.
        """
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        query = (
            "SELECT r.snapshot_id, s.window_start, s.window_end, r.code,"
            " r.tagger, r.silent, r.forward, r.cleaner"
            " FROM as_records r JOIN snapshots s ON s.id = r.snapshot_id"
            " WHERE r.asn = ? ORDER BY r.snapshot_id DESC"
        )
        parameters: Tuple[int, ...] = (int(asn),)
        if limit is not None:
            query += " LIMIT ?"
            parameters = (int(asn), limit)
        return [
            ASHistoryEntry(
                snapshot_id=row[0],
                window_start=row[1],
                window_end=row[2],
                code=row[3],
                counters=ASCounters(
                    tagger=row[4], silent=row[5], forward=row[6], cleaner=row[7]
                ),
            )
            for row in self._conn().execute(query, parameters)
        ]

    # -- statistics ---------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Store-level statistics for ``/v1/stats`` and operations."""
        connection = self._conn()
        snapshots = int(connection.execute("SELECT COUNT(*) FROM snapshots").fetchone()[0])
        records = int(connection.execute("SELECT COUNT(*) FROM as_records").fetchone()[0])
        distinct = int(
            connection.execute("SELECT COUNT(DISTINCT asn) FROM as_records").fetchone()[0]
        )
        size_bytes = 0
        if self.path != ":memory:":
            # Under WAL the main file alone can understate on-disk size by
            # the whole uncheckpointed log; retention and replication-lag
            # operations read this number, so count the sidecars too.
            for path in (self.path, self.path + "-wal", self.path + "-shm"):
                try:
                    size_bytes += os.stat(path).st_size
                except OSError:
                    pass
        return {
            "backend": "sqlite",
            "path": self.path,
            "schema_version": SCHEMA_VERSION,
            "generation": self.generation(),
            "snapshots": snapshots,
            "as_records": records,
            "distinct_ases": distinct,
            "retention": self.retention,
            "size_bytes": size_bytes,
            "pruned_through": self.pruned_through(),
            "applied_generation": self.applied_generation(),
            "leader_epoch": self.leader_epoch(),
        }

    # -- ingest telemetry ---------------------------------------------------------------
    def set_ingest_stats(self, stats: Dict[str, object]) -> None:
        """Persist the producer's ingest telemetry as JSON in the meta table.

        A meta-only write like :meth:`set_applied_generation`: the store
        generation does not move, so server read caches stay valid across
        telemetry refreshes.
        """
        payload = json.dumps(stats, sort_keys=True)
        with self._write_lock:
            connection = self._conn()
            with connection:
                connection.execute(
                    "INSERT INTO meta (key, value) VALUES ('ingest_stats', ?)"
                    " ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                    (payload,),
                )

    def ingest_stats(self) -> Optional[Dict[str, object]]:
        """The last persisted ingest telemetry, surviving server restarts."""
        row = self._conn().execute(
            "SELECT value FROM meta WHERE key = 'ingest_stats'"
        ).fetchone()
        if row is None:
            return None
        try:
            payload = json.loads(row[0])
        except ValueError:
            return None
        return payload if isinstance(payload, dict) else None


#: The SQLite backend under its interface-era name.
SQLiteBackend = SnapshotStore
