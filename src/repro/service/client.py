"""Stdlib HTTP client for the classification results API.

A thin convenience wrapper around :mod:`http.client` that keeps one TCP
connection alive across queries (the server speaks HTTP/1.1), decodes the
JSON bodies, and raises :class:`ServiceError` for non-200 responses.  Used
by the ``repro query`` CLI, the end-to-end tests, and the serving benchmark.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Optional
from urllib.parse import urlsplit


class ServiceError(Exception):
    """A non-200 response from the service (carries the HTTP status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


def _error_message(body: bytes) -> str:
    """Best-effort error text from a non-200 body (JSON or otherwise)."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        text = " ".join(body.decode("utf-8", "replace").split())
        return text[:120] if text else "non-JSON error body"
    if isinstance(payload, dict):
        return str(payload.get("error", ""))
    return ""


class ServiceClient:
    """A persistent-connection client for one service base URL."""

    def __init__(self, base_url: str, *, timeout: float = 10.0) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.netloc:
            raise ValueError(f"expected an http://host:port base URL, got {base_url!r}")
        self.base_url = base_url.rstrip("/")
        self._host = split.hostname or "127.0.0.1"
        self._port = split.port or 80
        self._timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    # -- plumbing -----------------------------------------------------------------------
    def _conn(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
        return self._connection

    def get(self, target: str) -> Dict[str, object]:
        """``GET`` *target* and decode the JSON body (raises on non-200)."""
        connection = self._conn()
        try:
            connection.request("GET", target)
            response = connection.getresponse()
            body = response.read()
        except (http.client.HTTPException, OSError):
            # One reconnect: the server may have dropped an idle keep-alive.
            self.close()
            connection = self._conn()
            connection.request("GET", target)
            response = connection.getresponse()
            body = response.read()
        # Decide on the status *before* trusting the body to be JSON: a
        # fronting proxy (the recommended deployment) answers 502/504 with
        # an HTML error page, which must surface as a ServiceError rather
        # than escape as a raw JSONDecodeError.
        if response.status != 200:
            raise ServiceError(response.status, _error_message(body))
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise ServiceError(response.status, "malformed response body") from None
        if not isinstance(payload, dict):
            raise ServiceError(response.status, "malformed response body")
        return payload

    def close(self) -> None:
        """Drop the persistent connection."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- endpoints ----------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        """``/healthz``."""
        return self.get("/healthz")

    def latest_snapshot(self) -> Dict[str, object]:
        """``/v1/snapshot/latest``."""
        return self.get("/v1/snapshot/latest")

    def snapshot(self, window_end: int) -> Dict[str, object]:
        """``/v1/snapshot/{window_end}``."""
        return self.get(f"/v1/snapshot/{int(window_end)}")

    def as_info(self, asn: int, *, history: Optional[int] = None) -> Dict[str, object]:
        """``/v1/as/{asn}`` (optionally with ``?history=N``)."""
        target = f"/v1/as/{int(asn)}"
        if history is not None:
            target += f"?history={int(history)}"
        return self.get(target)

    def diff(self, *, window_end: Optional[int] = None) -> Dict[str, object]:
        """``/v1/diff`` (optionally pinned to one window)."""
        target = "/v1/diff"
        if window_end is not None:
            target += f"?window={int(window_end)}"
        return self.get(target)

    def stats(self) -> Dict[str, object]:
        """``/v1/stats``."""
        return self.get("/v1/stats")

    def replication_changes(
        self, *, since: int, limit: Optional[int] = None
    ) -> Dict[str, object]:
        """``/v1/replication/changes`` -- one changelog page after *since*.

        Returns the leader's page: ``changes`` (snapshot payloads in commit
        order), ``generation`` (the leader's current generation), ``horizon``
        (newest generation its retention pruned), and ``more`` (another page
        is waiting).  :class:`~repro.service.replication.ReplicaSyncer`
        drives this in a loop; it is exposed here for tooling and tests.
        """
        target = f"/v1/replication/changes?since={int(since)}"
        if limit is not None:
            target += f"&limit={int(limit)}"
        return self.get(target)
