"""Stdlib HTTP client for the classification results API.

A thin convenience wrapper around :mod:`http.client` that keeps one TCP
connection alive across queries (the server speaks HTTP/1.1), decodes the
JSON bodies, and raises typed errors for non-200 responses.  Used by the
``repro query`` CLI, replication pulls, the end-to-end tests, and the
serving benchmark.

Error handling follows the server's structured envelope
(``{"error": {"status", "code", "message"}}``): :class:`ServiceError` is
the base every caller can keep catching, with typed subclasses for the
statuses callers branch on -- :class:`AuthError` (401/403),
:class:`NotFoundError` (404), :class:`BadRequestError` (400).

Built with ``token=``, the client sends ``Authorization: Bearer <token>``
on **every** request -- replication pulls included, which is how a
follower syncs from an auth-enabled leader.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Optional, Tuple, Type
from urllib.parse import urlsplit


class ServiceError(Exception):
    """A non-200 response from the service (carries the HTTP status)."""

    def __init__(self, status: int, message: str, *, code: str = "error") -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        #: The envelope's machine-readable code (``"error"`` when absent).
        self.code = code


class AuthError(ServiceError):
    """401/403: missing or invalid bearer token."""


class NotFoundError(ServiceError):
    """404: the endpoint or resource does not exist."""


class BadRequestError(ServiceError):
    """400: the request was malformed (bad operand, bad query param)."""


#: Error class per status; anything unlisted raises the base class.
_ERROR_CLASSES: Dict[int, Type[ServiceError]] = {
    400: BadRequestError,
    401: AuthError,
    403: AuthError,
    404: NotFoundError,
}


def _error_fields(body: bytes) -> Tuple[str, str]:
    """Best-effort ``(message, code)`` from a non-200 body.

    Understands the structured envelope, the pre-envelope flat shape
    (``{"error": "msg"}`` -- an older server), and non-JSON bodies (a
    fronting proxy's HTML error page).
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        text = " ".join(body.decode("utf-8", "replace").split())
        return (text[:120] if text else "non-JSON error body", "error")
    if isinstance(payload, dict):
        envelope = payload.get("error", "")
        if isinstance(envelope, dict):
            return str(envelope.get("message", "")), str(envelope.get("code", "error"))
        return str(envelope), "error"
    return "", "error"


def raise_for_error(status: int, body: bytes) -> "ServiceError":
    """Build the typed error a non-200 response maps to (does not raise)."""
    message, code = _error_fields(body)
    return _ERROR_CLASSES.get(status, ServiceError)(status, message, code=code)


class ServiceClient:
    """A persistent-connection client for one service base URL."""

    def __init__(
        self, base_url: str, *, timeout: float = 10.0, token: Optional[str] = None
    ) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.netloc:
            raise ValueError(f"expected an http://host:port base URL, got {base_url!r}")
        self.base_url = base_url.rstrip("/")
        self._host = split.hostname or "127.0.0.1"
        self._port = split.port or 80
        self._timeout = timeout
        self._token = token
        self._connection: Optional[http.client.HTTPConnection] = None

    # -- plumbing -----------------------------------------------------------------------
    def _conn(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
        return self._connection

    def _headers(self) -> Dict[str, str]:
        headers = {"Accept": "application/json"}
        if self._token is not None:
            headers["Authorization"] = f"Bearer {self._token}"
        return headers

    def get(self, target: str) -> Dict[str, object]:
        """``GET`` *target* and decode the JSON body (raises on non-200).

        A dead keep-alive connection -- most visibly
        ``http.client.RemoteDisconnected`` when a fan-out worker was
        respawned mid-idle -- is closed, rebuilt, and retried exactly once;
        a failure on the fresh connection propagates.
        """
        connection = self._conn()
        try:
            connection.request("GET", target, headers=self._headers())
            response = connection.getresponse()
            body = response.read()
        except (http.client.HTTPException, OSError):
            # One reconnect: the server may have dropped an idle keep-alive
            # (RemoteDisconnected), or the socket died some other way.
            self.close()
            connection = self._conn()
            connection.request("GET", target, headers=self._headers())
            response = connection.getresponse()
            body = response.read()
        # Decide on the status *before* trusting the body to be JSON: a
        # fronting proxy (the recommended deployment) answers 502/504 with
        # an HTML error page, which must surface as a ServiceError rather
        # than escape as a raw JSONDecodeError.
        if response.status != 200:
            raise raise_for_error(response.status, body)
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise ServiceError(response.status, "malformed response body") from None
        if not isinstance(payload, dict):
            raise ServiceError(response.status, "malformed response body")
        return payload

    def close(self) -> None:
        """Drop the persistent connection."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- endpoints ----------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        """``/healthz``."""
        return self.get("/healthz")

    def latest_snapshot(self) -> Dict[str, object]:
        """``/v1/snapshot/latest``."""
        return self.get("/v1/snapshot/latest")

    def snapshot(self, window_end: int) -> Dict[str, object]:
        """``/v1/snapshot/{window_end}``."""
        return self.get(f"/v1/snapshot/{int(window_end)}")

    def as_info(self, asn: int, *, history: Optional[int] = None) -> Dict[str, object]:
        """``/v1/as/{asn}`` (optionally with ``?history=N``)."""
        target = f"/v1/as/{int(asn)}"
        if history is not None:
            target += f"?history={int(history)}"
        return self.get(target)

    def diff(self, *, window_end: Optional[int] = None) -> Dict[str, object]:
        """``/v1/diff`` (optionally pinned to one window)."""
        target = "/v1/diff"
        if window_end is not None:
            target += f"?window={int(window_end)}"
        return self.get(target)

    def stats(self) -> Dict[str, object]:
        """``/v1/stats``."""
        return self.get("/v1/stats")

    def metrics_text(self) -> str:
        """``/metrics`` -- the raw Prometheus exposition text.

        Separate from :meth:`get` because the body is text, not JSON.  The
        endpoint is auth-exempt, so no token is needed (one is still sent
        when configured).
        """
        connection = self._conn()
        try:
            connection.request("GET", "/metrics", headers=self._headers())
            response = connection.getresponse()
            body = response.read()
        except (http.client.HTTPException, OSError):
            self.close()
            connection = self._conn()
            connection.request("GET", "/metrics", headers=self._headers())
            response = connection.getresponse()
            body = response.read()
        if response.status != 200:
            raise raise_for_error(response.status, body)
        return body.decode("utf-8")

    def replication_changes(
        self,
        *,
        since: int,
        limit: Optional[int] = None,
        follower: Optional[str] = None,
    ) -> Dict[str, object]:
        """``/v1/replication/changes`` -- one changelog page after *since*.

        Returns the leader's page: ``changes`` (snapshot payloads in commit
        order), ``generation`` (the leader's current generation), ``horizon``
        (newest generation its retention pruned), and ``more`` (another page
        is waiting).  :class:`~repro.service.replication.ReplicaSyncer`
        drives this in a loop; it is exposed here for tooling and tests.
        *follower* self-identifies the poller, feeding the leader's
        per-follower replication-lag gauges on ``/metrics``.
        """
        target = f"/v1/replication/changes?since={int(since)}"
        if limit is not None:
            target += f"&limit={int(limit)}"
        if follower:
            target += f"&follower={follower}"
        return self.get(target)
