"""Leader failover with durable epoch fencing.

The replication layer (:mod:`repro.service.replication`) gives a leader any
number of converging followers, but the leader itself was static: if its
host died, the fleet could serve stale reads forever and no follower could
safely take over writes.  This module closes that gap with two pieces:

* **a durable fencing epoch** -- every backend persists a ``leader_epoch``
  counter in its meta (:meth:`~repro.service.backends.base.SnapshotBackend.leader_epoch`).
  Writers capture it when they attach and stamp it on every append; an
  append carrying an older epoch raises
  :class:`~repro.service.backends.base.FencedWriterError` inside the write
  transaction, so a deposed leader that wakes up mid-write cannot fork
  history no matter how the race lands;
* **promotion** -- :func:`promote` turns a follower store into the new
  leader: one best-effort final sync drains whatever the old leader can
  still serve, then the epoch is bumped.  From that commit on, the promoted
  store accepts appends from writers attached at the new epoch and fences
  everything older.

The CLI front door is ``repro replicate --from URL --store PATH --promote``
(combinable with ``--serve`` to start taking traffic immediately); see the
README failover runbook.  What this module deliberately does **not** do is
elect anyone: picking *which* follower to promote is an operator (or
external coordinator) decision, and the epoch fence makes whichever choice
they make safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.service.backends.base import FencedWriterError, SnapshotBackend
from repro.service.client import ServiceClient, ServiceError
from repro.service.replication import DEFAULT_PAGE_SIZE, ReplicaSyncer

__all__ = [
    "FencedWriterError",  # re-exported: the failover-facing name of the fence
    "PromotionReport",
    "promote",
]


@dataclass(frozen=True)
class PromotionReport:
    """What one :func:`promote` call accomplished."""

    #: Snapshots applied by the final catch-up sync (0 when none ran).
    applied: int
    #: Snapshots the final sync re-offered that the store already held.
    deduplicated: int
    #: The promoted store's own generation after promotion.
    leader_generation: int
    #: The epoch the store held before promotion.
    previous_epoch: int
    #: The new durable epoch; writers attached before it are now fenced.
    epoch: int
    #: Whether the final catch-up sync reached the old leader at all.
    synced: bool
    #: The error that cut the final sync short, if any (promotion proceeds).
    sync_error: Optional[str]

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly view (CLI output, tests)."""
        return {
            "applied": self.applied,
            "deduplicated": self.deduplicated,
            "leader_generation": self.leader_generation,
            "previous_epoch": self.previous_epoch,
            "epoch": self.epoch,
            "synced": self.synced,
            "sync_error": self.sync_error,
        }


def promote(
    store: SnapshotBackend,
    *,
    leader_url: Optional[str] = None,
    token: Optional[str] = None,
    page_size: int = DEFAULT_PAGE_SIZE,
) -> PromotionReport:
    """Promote a follower store to leader, fencing the deposed writer.

    With *leader_url* a final :meth:`~repro.service.replication.ReplicaSyncer.sync_once`
    drains whatever the old leader can still serve -- best effort, because
    the usual reason to promote is that the old leader is *dead*; an
    unreachable leader is recorded in :attr:`PromotionReport.sync_error`
    and promotion proceeds on the follower's converged state.  The epoch
    bump is the promotion: it commits durably before this function returns,
    after which appends stamped with the previous epoch raise
    :class:`FencedWriterError` on every backend.
    """
    applied = deduplicated = 0
    synced = False
    sync_error: Optional[str] = None
    if leader_url is not None:
        client = ServiceClient(leader_url, token=token)
        syncer = ReplicaSyncer(client, store, page_size=page_size)
        try:
            report = syncer.sync_once()
        except (ServiceError, OSError) as error:
            sync_error = str(error)
        else:
            synced = True
            applied = report.applied
            deduplicated = report.deduplicated
        finally:
            client.close()
    previous_epoch = store.leader_epoch()
    epoch = store.bump_leader_epoch()
    return PromotionReport(
        applied=applied,
        deduplicated=deduplicated,
        leader_generation=store.generation(),
        previous_epoch=previous_epoch,
        epoch=epoch,
        synced=synced,
        sync_error=sync_error,
    )
