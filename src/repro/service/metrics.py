"""Prometheus-text observability for the classification service.

The ``/metrics`` endpoint renders the standard text exposition format
(``name{labels} value`` lines with ``# HELP`` / ``# TYPE`` headers) straight
from stdlib primitives -- no client library.  What it exposes:

* **per-endpoint request counters and latency histograms** -- every entry in
  the server's route table names its metric series (``endpoint=`` label), so
  a new endpoint is instrumented by construction;
* **cache hit / miss counters** per endpoint plus a fleet hit-ratio gauge;
* **store gauges** -- generation, snapshot count, on-disk size, leader
  epoch, replication horizon and applied generation;
* **per-follower replication lag** -- followers identify themselves on the
  changelog endpoint (``?follower=name``), and the leader publishes
  ``leader_generation - follower_since`` per name;
* **classification churn** -- per-AS class-change counters fed from the
  change maps the publisher persists with every snapshot (total churn plus
  the top churning ASes, cardinality-capped).

A multi-worker deployment aggregates all of this fleet-wide: each worker
mirrors its counters into the mmap
:class:`~repro.service.workers.WorkerStatsBoard` (whose slot layout is
generated from :data:`METRIC_ENDPOINTS` and :data:`LATENCY_BUCKETS` here),
and follower lag is merged from per-worker sidecar files
(:class:`FileFollowerLag`), so any worker the kernel picks can answer a
scrape for the whole deployment.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: Histogram bucket upper bounds in seconds (``+Inf`` is implicit).  Chosen
#: for a cache-backed read API: most hits land under 1ms, a cold SQLite
#: read in the low milliseconds, and anything near a second is pathological.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)

#: Every endpoint the route table may account under, in slot order.  The
#: mmap worker board sizes its per-endpoint regions from this tuple, so the
#: order is part of the board layout; ``unknown`` bounds the cardinality of
#: unroutable request paths to one series.
METRIC_ENDPOINTS: Tuple[str, ...] = (
    "healthz",
    "metrics",
    "snapshot_latest",
    "snapshot_window",
    "as_info",
    "diff",
    "stats",
    "replication_changes",
    "unknown",
)

#: Catch-all endpoint label for paths the route table does not know.
UNKNOWN_ENDPOINT = "unknown"

#: Integer counter fields of one endpoint's accounting, in slot order.
ENDPOINT_COUNTER_FIELDS: Tuple[str, ...] = (
    "requests",
    "errors",
    "cache_hits",
    "cache_misses",
)

#: Prometheus text exposition content type.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: How many per-AS churn series a scrape may expose (cardinality cap).
CHURN_TOP_N = 20


def empty_endpoint_stats() -> Dict[str, object]:
    """A zeroed per-endpoint accounting dict (the aggregate wire shape)."""
    stats: Dict[str, object] = {field: 0 for field in ENDPOINT_COUNTER_FIELDS}
    stats["latency_sum"] = 0.0
    stats["buckets"] = [0] * (len(LATENCY_BUCKETS) + 1)
    return stats


def bucket_index(seconds: float) -> int:
    """The (non-cumulative) histogram bucket one observation falls into."""
    for index, bound in enumerate(LATENCY_BUCKETS):
        if seconds <= bound:
            return index
    return len(LATENCY_BUCKETS)


class MetricsRecorder:
    """In-process per-endpoint request accounting (single-worker serving).

    The same aggregate shape the worker board renders fleet-wide, kept in
    plain dicts behind one lock.  Every :class:`ClassificationService` owns
    one; deployments with a stats sink additionally mirror into the shared
    board, and ``/metrics`` prefers the board so any worker answers for the
    fleet.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: Dict[str, Dict[str, object]] = {
            name: empty_endpoint_stats() for name in METRIC_ENDPOINTS
        }

    def observe(
        self, endpoint: str, *, hit: bool, error: bool, seconds: float
    ) -> None:
        """Count one handled request against *endpoint*'s series."""
        if endpoint not in self._endpoints:
            endpoint = UNKNOWN_ENDPOINT
        with self._lock:
            stats = self._endpoints[endpoint]
            stats["requests"] = int(stats["requests"]) + 1  # type: ignore[call-overload]
            if error:
                stats["errors"] = int(stats["errors"]) + 1  # type: ignore[call-overload]
            elif hit:
                stats["cache_hits"] = int(stats["cache_hits"]) + 1  # type: ignore[call-overload]
            else:
                stats["cache_misses"] = int(stats["cache_misses"]) + 1  # type: ignore[call-overload]
            stats["latency_sum"] = float(stats["latency_sum"]) + seconds  # type: ignore[arg-type]
            buckets = stats["buckets"]
            assert isinstance(buckets, list)
            buckets[bucket_index(seconds)] += 1

    def endpoint_stats(self) -> Dict[str, Dict[str, object]]:
        """A deep-copied ``{endpoint: stats}`` aggregate for rendering."""
        with self._lock:
            return {
                name: {
                    **{f: stats[f] for f in ENDPOINT_COUNTER_FIELDS},
                    "latency_sum": stats["latency_sum"],
                    "buckets": list(stats["buckets"]),  # type: ignore[call-overload]
                }
                for name, stats in self._endpoints.items()
            }


# ---------------------------------------------------------------------------------------
# Follower replication-lag tracking
# ---------------------------------------------------------------------------------------
class MemoryFollowerLag:
    """Per-follower replication lag of one serving process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._followers: Dict[str, Dict[str, float]] = {}

    def record(self, follower: str, *, since: int, generation: int) -> None:
        """Record one changelog poll: the follower is *lag* commits behind."""
        with self._lock:
            self._followers[follower] = {
                "since": float(since),
                "generation": float(generation),
                "lag": float(max(0, generation - since)),
                "updated": time.time(),
            }

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """The last-known state per follower name."""
        with self._lock:
            return {name: dict(state) for name, state in self._followers.items()}


class FileFollowerLag(MemoryFollowerLag):
    """Follower lag shared across a worker fleet via per-worker files.

    Changelog polls land on whichever worker the kernel picked; for a scrape
    (on any worker) to see every follower, each worker persists its own
    last-known state into ``followers-<worker_id>.json`` under a shared
    directory (atomic ``os.replace`` writes, no cross-process locking), and
    :meth:`snapshot` merges all files taking the newest record per follower.
    """

    def __init__(self, directory: str, worker_id: int) -> None:
        super().__init__()
        self.directory = directory
        self.worker_id = worker_id
        self._path = os.path.join(directory, f"followers-{worker_id}.json")

    def record(self, follower: str, *, since: int, generation: int) -> None:
        super().record(follower, since=since, generation=generation)
        with self._lock:
            payload = json.dumps(self._followers, sort_keys=True)
        temp = f"{self._path}.tmp"
        try:
            with open(temp, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(temp, self._path)
        except OSError:
            # Telemetry must never fail the changelog request it rides on.
            pass

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        merged: Dict[str, Dict[str, float]] = {}
        try:
            names = os.listdir(self.directory)
        except OSError:
            return super().snapshot()
        for name in sorted(names):
            if not (name.startswith("followers-") and name.endswith(".json")):
                continue
            try:
                with open(os.path.join(self.directory, name), encoding="utf-8") as handle:
                    per_worker = json.load(handle)
            except (OSError, ValueError):
                continue  # a torn write loses one poll, never the scrape
            if not isinstance(per_worker, dict):
                continue
            for follower, state in per_worker.items():
                known = merged.get(follower)
                if known is None or state.get("updated", 0) >= known.get("updated", 0):
                    merged[follower] = {key: float(value) for key, value in state.items()}
        return merged


# ---------------------------------------------------------------------------------------
# Text exposition rendering
# ---------------------------------------------------------------------------------------
def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format rules."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


class _Lines:
    """Accumulates exposition lines, emitting HELP/TYPE headers once."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._declared: set = set()

    def declare(self, name: str, kind: str, help_text: str) -> None:
        if name not in self._declared:
            self._declared.add(name)
            self.lines.append(f"# HELP {name} {help_text}")
            self.lines.append(f"# TYPE {name} {kind}")

    def sample(
        self, name: str, labels: Optional[Mapping[str, str]], value: float
    ) -> None:
        if labels:
            rendered = ",".join(
                f'{key}="{escape_label_value(str(text))}"'
                for key, text in labels.items()
            )
            self.lines.append(f"{name}{{{rendered}}} {_format_value(value)}")
        else:
            self.lines.append(f"{name} {_format_value(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def render_metrics(
    *,
    endpoints: Mapping[str, Mapping[str, object]],
    store_stats: Mapping[str, object],
    followers: Mapping[str, Mapping[str, float]],
    churn_total: int,
    churn_top: Iterable[Tuple[int, int]],
    workers: Optional[int] = None,
    ingest: Optional[Mapping[str, object]] = None,
) -> str:
    """Render one scrape of the whole service as Prometheus text.

    *endpoints* is the per-endpoint aggregate (local recorder or fleet
    board), *store_stats* the backend's :meth:`stats` dict, *followers* the
    merged lag tracker snapshot, and *churn* the per-AS classification
    change counts derived from the persisted change maps.  *ingest* is the
    producing engine's ingest-batching telemetry
    (:meth:`~repro.stream.engine.StreamEngine.ingest_stats`) as last
    recorded in the store -- ``None`` when no producer ever published.
    """
    out = _Lines()

    out.declare(
        "repro_http_requests_total",
        "counter",
        "Requests handled, by route-table endpoint.",
    )
    for endpoint in METRIC_ENDPOINTS:
        stats = endpoints.get(endpoint)
        if stats is None:
            continue
        out.sample(
            "repro_http_requests_total",
            {"endpoint": endpoint},
            float(stats["requests"]),  # type: ignore[arg-type]
        )
    out.declare(
        "repro_http_request_errors_total",
        "counter",
        "Non-2xx responses, by route-table endpoint.",
    )
    for endpoint in METRIC_ENDPOINTS:
        stats = endpoints.get(endpoint)
        if stats is None:
            continue
        out.sample(
            "repro_http_request_errors_total",
            {"endpoint": endpoint},
            float(stats["errors"]),  # type: ignore[arg-type]
        )

    out.declare(
        "repro_http_request_latency_seconds",
        "histogram",
        "Request handling latency, by route-table endpoint.",
    )
    for endpoint in METRIC_ENDPOINTS:
        stats = endpoints.get(endpoint)
        if stats is None:
            continue
        buckets = stats["buckets"]
        assert isinstance(buckets, list)
        cumulative = 0
        for bound, count in zip(LATENCY_BUCKETS, buckets):
            cumulative += int(count)
            out.sample(
                "repro_http_request_latency_seconds_bucket",
                {"endpoint": endpoint, "le": repr(bound)},
                float(cumulative),
            )
        cumulative += int(buckets[-1])
        out.sample(
            "repro_http_request_latency_seconds_bucket",
            {"endpoint": endpoint, "le": "+Inf"},
            float(cumulative),
        )
        out.sample(
            "repro_http_request_latency_seconds_sum",
            {"endpoint": endpoint},
            float(stats["latency_sum"]),  # type: ignore[arg-type]
        )
        out.sample(
            "repro_http_request_latency_seconds_count",
            {"endpoint": endpoint},
            float(cumulative),
        )

    total_hits = sum(int(stats["cache_hits"]) for stats in endpoints.values())  # type: ignore[call-overload]
    total_misses = sum(int(stats["cache_misses"]) for stats in endpoints.values())  # type: ignore[call-overload]
    out.declare(
        "repro_cache_hits_total", "counter", "Response-cache hits, by endpoint."
    )
    out.declare(
        "repro_cache_misses_total", "counter", "Response-cache misses, by endpoint."
    )
    for endpoint in METRIC_ENDPOINTS:
        stats = endpoints.get(endpoint)
        if stats is None:
            continue
        out.sample(
            "repro_cache_hits_total",
            {"endpoint": endpoint},
            float(stats["cache_hits"]),  # type: ignore[arg-type]
        )
        out.sample(
            "repro_cache_misses_total",
            {"endpoint": endpoint},
            float(stats["cache_misses"]),  # type: ignore[arg-type]
        )
    looked_up = total_hits + total_misses
    out.declare(
        "repro_cache_hit_ratio",
        "gauge",
        "Fleet-wide response-cache hit ratio since start.",
    )
    out.sample(
        "repro_cache_hit_ratio", None, (total_hits / looked_up) if looked_up else 0.0
    )

    gauges = (
        ("generation", "repro_store_generation", "Store commit generation."),
        ("snapshots", "repro_store_snapshots", "Queryable snapshots in the store."),
        ("size_bytes", "repro_store_size_bytes", "Store size on disk in bytes."),
        ("leader_epoch", "repro_store_leader_epoch", "Durable leader epoch (failover fencing)."),
        ("pruned_through", "repro_store_pruned_through", "Replication horizon: newest pruned commit generation."),
        ("applied_generation", "repro_store_applied_generation", "Leader generation this replica applied through."),
    )
    for key, name, help_text in gauges:
        value = store_stats.get(key)
        if value is None:
            continue
        out.declare(name, "gauge", help_text)
        out.sample(name, None, float(value))  # type: ignore[arg-type]

    if workers is not None:
        out.declare(
            "repro_serve_workers", "gauge", "Serving workers sharing this port."
        )
        out.sample("repro_serve_workers", None, float(workers))

    out.declare(
        "repro_replication_follower_lag",
        "gauge",
        "Commits behind the leader, per follower (from changelog polls).",
    )
    for follower in sorted(followers):
        out.sample(
            "repro_replication_follower_lag",
            {"follower": follower},
            float(followers[follower].get("lag", 0.0)),
        )

    if ingest is not None:
        out.declare(
            "repro_ingest_blocks_total",
            "counter",
            "Event blocks the producing engine absorbed.",
        )
        out.sample(
            "repro_ingest_blocks_total", None, float(ingest.get("blocks_total", 0))  # type: ignore[arg-type]
        )
        out.declare(
            "repro_ingest_events_total",
            "counter",
            "Events the producing engine ingested.",
        )
        out.sample(
            "repro_ingest_events_total", None, float(ingest.get("events_total", 0))  # type: ignore[arg-type]
        )
        bounds = ingest.get("events_per_block_bounds")
        buckets = ingest.get("events_per_block_buckets")
        if isinstance(bounds, list) and isinstance(buckets, list):
            out.declare(
                "repro_ingest_events_per_block",
                "histogram",
                "Events per absorbed ingest block.",
            )
            cumulative = 0
            for bound, count in zip(bounds, buckets):
                cumulative += int(count)
                out.sample(
                    "repro_ingest_events_per_block_bucket",
                    {"le": str(bound)},
                    float(cumulative),
                )
            if len(buckets) > len(bounds):
                cumulative += int(buckets[len(bounds)])
            out.sample(
                "repro_ingest_events_per_block_bucket", {"le": "+Inf"}, float(cumulative)
            )
            # Every block observation's value is its event count, so the
            # histogram sum is exactly the events-ingested counter.
            out.sample(
                "repro_ingest_events_per_block_sum",
                None,
                float(ingest.get("events_total", 0)),  # type: ignore[arg-type]
            )
            out.sample(
                "repro_ingest_events_per_block_count", None, float(cumulative)
            )
        dropped = ingest.get("dropped")
        if isinstance(dropped, Mapping):
            out.declare(
                "repro_ingest_sanitation_dropped_total",
                "counter",
                "Observations dropped by sanitation, by drop reason.",
            )
            for reason in sorted(dropped):
                out.sample(
                    "repro_ingest_sanitation_dropped_total",
                    {"reason": str(reason)},
                    float(dropped[reason]),  # type: ignore[arg-type]
                )

    out.declare(
        "repro_classification_churn_total",
        "counter",
        "Per-AS class changes across retained snapshots (publisher change maps).",
    )
    out.sample("repro_classification_churn_total", None, float(churn_total))
    out.declare(
        "repro_as_classification_churn",
        "counter",
        f"Class changes of the top-{CHURN_TOP_N} churning ASes.",
    )
    for asn, count in churn_top:
        out.sample("repro_as_classification_churn", {"asn": str(asn)}, float(count))

    return out.text()


__all__ = [
    "CHURN_TOP_N",
    "ENDPOINT_COUNTER_FIELDS",
    "FileFollowerLag",
    "LATENCY_BUCKETS",
    "METRICS_CONTENT_TYPE",
    "METRIC_ENDPOINTS",
    "MemoryFollowerLag",
    "MetricsRecorder",
    "UNKNOWN_ENDPOINT",
    "bucket_index",
    "empty_endpoint_stats",
    "escape_label_value",
    "render_metrics",
]
