"""Publisher hooks: wire running producers into any :class:`SnapshotBackend`.

The streaming engine already exposes an ``on_window`` callback; a
:class:`SnapshotPublisher` is such a callback that durably appends every
emitted snapshot (and chains to any previously installed callback, so
persistence composes with progress reporting).  :func:`attach_store` does
the wiring on a live engine, and :func:`publish_result` materialises a
one-shot batch :class:`~repro.core.results.ClassificationResult` as a
``kind="batch"`` snapshot.

Exactly-once resume
-------------------

A checkpointed engine restores to its *last checkpoint*, which is usually
older than the *last published window*: every window closed between the
checkpoint and the crash is already in the store, and a naive resumed run
re-publishes all of them.  A publisher attached with ``resume=True`` learns
the store's latest persisted ``window_end`` at attach time and routes every
re-emitted window at or before it through the store's idempotent append, so
the resumed producer lands exactly one copy of every window.  Windows past
the resume point are provably new and take the plain fast path.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.bgp.asn import ASN
from repro.core.results import ClassificationResult
from repro.service.backends.base import SnapshotBackend, StoreError
from repro.stream.engine import StreamEngine, WindowSnapshot

#: Signature of an ``on_window`` engine callback.
WindowCallback = Callable[[WindowSnapshot], None]


def ensure_snapshot(
    store: SnapshotBackend,
    snapshot: WindowSnapshot,
    *,
    kind: str = "window",
    snapshot_id: Optional[int] = None,
    epoch: Optional[int] = None,
) -> Tuple[int, bool]:
    """Idempotently land one snapshot; returns ``(snapshot_id, was_new)``.

    The shared apply path of everything that may offer a window the store
    already holds: resumed producers re-emitting windows published before a
    crash, and replica syncers re-applying a page after a follower restart.
    The window key ``(kind, window_start, window_end)`` decides identity;
    *snapshot_id* (replication) additionally pins the row id so follower
    ids mirror the leader's.  The pre-check keeps ``was_new`` honest for
    progress reporting; the ``if_absent`` append closes the remaining race
    atomically inside the store's write transaction.  *epoch* is passed
    through to the append's failover fence (see
    :meth:`SnapshotBackend.append_snapshot`).
    """
    existing = store.find_window(kind, snapshot.window_start, snapshot.window_end)
    if existing is not None:
        return existing.snapshot_id, False
    applied = store.append_snapshot(
        snapshot, kind=kind, if_absent=True, snapshot_id=snapshot_id, epoch=epoch
    )
    return applied, True


class SnapshotPublisher:
    """An ``on_window`` callback that persists snapshots into a store."""

    def __init__(
        self,
        store: SnapshotBackend,
        *,
        kind: str = "window",
        forward: Optional[WindowCallback] = None,
        resume: bool = False,
    ) -> None:
        self.store = store
        self.kind = kind
        self.forward = forward
        #: The leader epoch captured at attach time, stamped on every
        #: append.  If another host is promoted while this producer runs,
        #: its next append raises FencedWriterError instead of forking
        #: history (the failover fence; see repro.service.failover).
        self.epoch = store.leader_epoch()
        self.published = 0
        self.deduplicated = 0
        self.last_snapshot_id: Optional[int] = None
        #: The store's newest persisted window_end when this publisher
        #: attached with ``resume=True`` (``None``: no dedup, or empty store).
        self.resume_window_end: Optional[int] = None
        #: Highest window_end this publisher has durably confirmed; engines
        #: record it in their checkpoints (see StreamEngine.state_dict).
        self.published_through: Optional[int] = None
        #: Optional zero-argument callable returning the producer's ingest
        #: telemetry dict; refreshed into the store after every publish so
        #: ``/metrics`` scrapes see block/drop counters that are at most one
        #: window stale.  Wired by :func:`attach_store`.
        self.ingest_source: Optional[Callable[[], Dict[str, object]]] = None
        if resume:
            self.resume_window_end = store.latest_window_end(kind)
            self.published_through = self.resume_window_end

    def __call__(self, snapshot: WindowSnapshot) -> None:
        """Persist one snapshot, then invoke the chained callback (if any).

        The store write happens *first*: if persistence fails the error
        surfaces in the producer instead of being silently swallowed after
        a cosmetic progress line.
        """
        dedupe = (
            self.resume_window_end is not None
            and snapshot.window_end <= self.resume_window_end
        )
        if dedupe:
            self.last_snapshot_id, was_new = ensure_snapshot(
                self.store, snapshot, kind=self.kind, epoch=self.epoch
            )
            if was_new:
                self.published += 1
            else:
                # The window survived the crash: keep the store's copy.
                self.deduplicated += 1
        else:
            self.last_snapshot_id = self.store.append_snapshot(
                snapshot, kind=self.kind, epoch=self.epoch
            )
            self.published += 1
        if self.published_through is None or snapshot.window_end > self.published_through:
            self.published_through = snapshot.window_end
        if self.ingest_source is not None:
            try:
                self.store.set_ingest_stats(self.ingest_source())
            except StoreError:
                # Telemetry must never fail the window publish it rides on.
                pass
        if self.forward is not None:
            self.forward(snapshot)


def attach_store(
    engine: StreamEngine, store: SnapshotBackend, *, resume: bool = False
) -> SnapshotPublisher:
    """Make *engine* persist every window snapshot into *store*.

    Any ``on_window`` callback already installed keeps firing (after the
    write).  With ``resume=True`` (the ``stream --resume`` path) the
    publisher deduplicates against the windows the store already holds, so
    a restored engine re-emitting windows it published before the crash
    appends nothing twice.  The dedup bound is the *later* of the store's
    newest persisted window and the publish progress recorded in the
    checkpoint the engine was restored from -- raising the bound is always
    safe (it only widens the range of windows that get the idempotent
    existence check; absent windows are still appended), and it keeps the
    exactly-once guarantee even if the two records disagree.  Returns the
    publisher so callers can inspect what was written (``published``) and
    what was skipped (``deduplicated``).
    """
    publisher = SnapshotPublisher(store, forward=engine.on_window, resume=resume)
    publisher.ingest_source = engine.ingest_stats
    if resume:
        checkpointed = engine.restored_published_through
        if checkpointed is not None and (
            publisher.resume_window_end is None
            or checkpointed > publisher.resume_window_end
        ):
            publisher.resume_window_end = checkpointed
    engine.on_window = publisher
    return publisher


def publish_result(
    store: SnapshotBackend,
    result: ClassificationResult,
    *,
    events_total: int = 0,
    unique_tuples: int = 0,
    window_start: int = 0,
    window_end: int = 0,
) -> int:
    """Persist a batch classification result as a ``kind="batch"`` snapshot.

    Batch runs have no window clock; callers pass whatever provenance they
    have (observation count, unique tuples, the time span of the input).
    The change map is computed against the store's current latest snapshot,
    so repeated batch publishes surface classification drift the same way
    streaming windows do.
    """
    previous = store.latest()
    last_codes: Dict[ASN, str] = {}
    if previous is not None:
        last_codes = store.load_snapshot(previous.snapshot_id).result.as_code_map()
    snapshot = WindowSnapshot(
        window_start=window_start,
        window_end=window_end,
        skipped_windows=0,
        events_total=events_total,
        unique_tuples=unique_tuples,
        result=result,
        changed=result.changed_since(last_codes),
    )
    return store.append_snapshot(snapshot, kind="batch")
