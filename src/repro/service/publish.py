"""Publisher hooks: wire running producers into a :class:`SnapshotStore`.

The streaming engine already exposes an ``on_window`` callback; a
:class:`SnapshotPublisher` is such a callback that durably appends every
emitted snapshot (and chains to any previously installed callback, so
persistence composes with progress reporting).  :func:`attach_store` does
the wiring on a live engine, and :func:`publish_result` materialises a
one-shot batch :class:`~repro.core.results.ClassificationResult` as a
``kind="batch"`` snapshot.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.bgp.asn import ASN
from repro.core.results import ClassificationResult
from repro.service.store import SnapshotStore
from repro.stream.engine import StreamEngine, WindowSnapshot

#: Signature of an ``on_window`` engine callback.
WindowCallback = Callable[[WindowSnapshot], None]


class SnapshotPublisher:
    """An ``on_window`` callback that persists snapshots into a store."""

    def __init__(
        self,
        store: SnapshotStore,
        *,
        kind: str = "window",
        forward: Optional[WindowCallback] = None,
    ) -> None:
        self.store = store
        self.kind = kind
        self.forward = forward
        self.published = 0
        self.last_snapshot_id: Optional[int] = None

    def __call__(self, snapshot: WindowSnapshot) -> None:
        """Persist one snapshot, then invoke the chained callback (if any).

        The store write happens *first*: if persistence fails the error
        surfaces in the producer instead of being silently swallowed after
        a cosmetic progress line.
        """
        self.last_snapshot_id = self.store.append_snapshot(snapshot, kind=self.kind)
        self.published += 1
        if self.forward is not None:
            self.forward(snapshot)


def attach_store(engine: StreamEngine, store: SnapshotStore) -> SnapshotPublisher:
    """Make *engine* persist every window snapshot into *store*.

    Any ``on_window`` callback already installed keeps firing (after the
    write).  Returns the publisher so callers can inspect what was written.
    """
    publisher = SnapshotPublisher(store, forward=engine.on_window)
    engine.on_window = publisher
    return publisher


def publish_result(
    store: SnapshotStore,
    result: ClassificationResult,
    *,
    events_total: int = 0,
    unique_tuples: int = 0,
    window_start: int = 0,
    window_end: int = 0,
) -> int:
    """Persist a batch classification result as a ``kind="batch"`` snapshot.

    Batch runs have no window clock; callers pass whatever provenance they
    have (observation count, unique tuples, the time span of the input).
    The change map is computed against the store's current latest snapshot,
    so repeated batch publishes surface classification drift the same way
    streaming windows do.
    """
    previous = store.latest()
    last_codes: Dict[ASN, str] = {}
    if previous is not None:
        last_codes = store.load_snapshot(previous.snapshot_id).result.as_code_map()
    snapshot = WindowSnapshot(
        window_start=window_start,
        window_end=window_end,
        skipped_windows=0,
        events_total=events_total,
        unique_tuples=unique_tuples,
        result=result,
        changed=result.changed_since(last_codes),
    )
    return store.append_snapshot(snapshot, kind="batch")
