"""Generation-addressed changelog replication between snapshot stores.

PR 4 scaled reads on *one* host: ``repro serve --http-workers N`` fans one
store out across ``SO_REUSEPORT`` worker processes.  This module scales
reads across *hosts*: any store served over the HTTP API is a **leader**
whose commit history is a generation-addressed changelog
(``/v1/replication/changes?since=G``), and a :class:`ReplicaSyncer` turns
any other host's store into a **follower** that converges on it.

The contract, piece by piece:

* **generation addressing** -- every snapshot records the store generation
  it committed at (:meth:`SnapshotBackend.snapshots_since`), so "everything
  after G" is a single indexed range read, paged to keep responses bounded;
* **idempotent apply** -- each fetched snapshot lands through the same
  :func:`~repro.service.publish.ensure_snapshot` path resumed producers
  use: window identity is ``(kind, window_start, window_end)``, never a
  host-local row id, so re-offering an applied window is a no-op;
* **durable progress** -- the follower records the applied leader
  generation in its ``meta`` table after every applied snapshot.  A killed
  follower resumes from that mark and re-applies at most the page it died
  in, which the idempotent append deduplicates: exactly-once, the same
  guarantee ``stream --resume --store`` pins for producers;
* **id mirroring** -- applied snapshots pin the leader's row ids, so
  id-bearing payloads (``/v1/as/{asn}`` history entries, ``/v1/diff``) are
  byte-identical between leader and follower;
* **pruning detection** -- the leader reports the newest generation its
  retention ever pruned (the *horizon*).  A follower that fell behind it
  raises :class:`ReplicationError` instead of silently skipping windows;
  a follower starting from an *empty* store treats the horizon as its seed
  point (the pruned prefix is gone everywhere, so the retained set *is*
  convergence).

``repro replicate --from URL --store PATH [--serve]`` wraps this into a
long-running follower process, optionally serving the replica through the
existing single- or multi-worker HTTP stack for true cross-host read
scaling.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Union, cast

from repro.core.thresholds import Thresholds
from repro.service.backends.base import (
    FencedWriterError,
    SnapshotBackend,
    StoreError,
    snapshot_from_payload,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.publish import ensure_snapshot

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "ReplicaSyncer",
    "ReplicationError",
    "SyncReport",
    "snapshot_from_payload",  # canonical codec, re-exported for back-compat
]

#: Snapshots fetched per changelog page by default (mirrors the server's
#: default page; the server caps explicit requests at its own maximum).
DEFAULT_PAGE_SIZE = 64


class ReplicationError(Exception):
    """The follower can no longer converge by syncing.

    Raised when the leader's retention pruned its changelog past this
    follower's applied generation: the missing windows are gone for good,
    and continuing would hide the gap.  Recover by re-seeding the follower
    from an empty store (which adopts the leader's retained set) or by
    raising the leader's retention.
    """


@dataclass(frozen=True)
class SyncReport:
    """What one :meth:`ReplicaSyncer.sync_once` pass accomplished."""

    #: Snapshots newly applied to the replica store.
    applied: int
    #: Snapshots the store already held (a restarted follower's re-offers).
    deduplicated: int
    #: Changelog pages fetched.
    pages: int
    #: The leader generation the replica has applied through.
    applied_generation: int
    #: The leader's generation when the final page was served.
    leader_generation: int

    @property
    def caught_up(self) -> bool:
        """Whether the replica covered everything the leader reported."""
        return self.applied_generation >= self.leader_generation

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly view (CLI progress lines, tests)."""
        return {
            "applied": self.applied,
            "deduplicated": self.deduplicated,
            "pages": self.pages,
            "applied_generation": self.applied_generation,
            "leader_generation": self.leader_generation,
            "caught_up": self.caught_up,
        }


class ReplicaSyncer:
    """Polls a leader's changelog and applies it to a follower store.

    One syncer owns one ``(leader URL, follower store)`` pair.  It is the
    only writer a replica store should have; readers (the serving stack)
    share the store freely, in-process or from sibling worker processes.
    """

    def __init__(
        self,
        client: Union[str, ServiceClient],
        store: SnapshotBackend,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        follower: Optional[str] = None,
    ) -> None:
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        self.client = ServiceClient(client) if isinstance(client, str) else client
        self.store = store
        self.page_size = page_size
        #: Name this follower reports on changelog polls; the leader
        #: publishes a per-follower replication-lag gauge under it.
        self.follower = follower
        #: The replica store's leader epoch at attach time: the syncer is
        #: the replica's single writer, and promotion of the *replica*
        #: (repro replicate --promote) bumps the epoch so a stale syncer
        #: still applying old-leader pages is fenced instead of clobbering
        #: the newly promoted history.
        self.epoch = store.leader_epoch()
        #: Lifetime counters across every sync pass.
        self.applied_total = 0
        self.deduplicated_total = 0
        #: Message of the last transient leader failure seen by :meth:`run`.
        self.last_error: Optional[str] = None

    def _apply_entry(self, entry: Dict[str, Any]) -> bool:
        """Apply one changelog entry; returns whether it was new."""
        tagger, silent, forward, cleaner = cast(
            List[float], entry["thresholds"]
        )
        snapshot = snapshot_from_payload(
            cast(Dict[str, Any], entry["payload"]),
            Thresholds(tagger=tagger, silent=silent, forward=forward, cleaner=cleaner),
        )
        try:
            _, was_new = ensure_snapshot(
                self.store,
                snapshot,
                kind=str(entry["kind"]),
                snapshot_id=int(entry["snapshot_id"]),
                epoch=self.epoch,
            )
        except FencedWriterError:
            # The replica was promoted out from under this syncer; the
            # fence is the message, not a wrappable apply failure.
            raise
        except StoreError as error:
            # Most commonly: the leader's snapshot id is taken by a different
            # window because this store holds locally-produced snapshots.
            # That is divergence, not a transient hiccup -- surface it as
            # the non-retriable replication failure it is.
            raise ReplicationError(
                f"cannot apply leader snapshot {entry['snapshot_id']}"
                f" (generation {entry['generation']}): {error}"
            ) from error
        # Progress is durable per entry: a follower killed here resumes at
        # this generation and re-fetches at most the rest of the page,
        # which the idempotent window key deduplicates (exactly-once).
        self.store.set_applied_generation(int(entry["generation"]))
        return was_new

    def sync_once(self) -> SyncReport:
        """Fetch and apply changelog pages until the leader reports no more.

        Raises :class:`ReplicationError` when the leader's retention pruned
        past this (non-empty) follower, and lets :class:`ServiceError` /
        ``OSError`` propagate for transient HTTP and socket failures
        (callers retry).
        """
        applied = deduplicated = pages = 0
        leader_generation = self.store.applied_generation()
        while True:
            since = self.store.applied_generation()
            page = self.client.replication_changes(
                since=since, limit=self.page_size, follower=self.follower
            )
            pages += 1
            leader_generation = int(cast(int, page["generation"]))
            horizon = int(cast(int, page["horizon"]))
            if since < horizon and len(self.store) > 0:
                raise ReplicationError(
                    f"leader pruned its changelog through generation {horizon} "
                    f"but this replica only applied through {since}: the gap "
                    "is unrecoverable from the changelog -- re-seed the "
                    "replica from an empty store or raise the leader's "
                    "retention"
                )
            entries = cast(List[Dict[str, Any]], page["changes"])
            for entry in entries:
                if self._apply_entry(entry):
                    applied += 1
                else:
                    deduplicated += 1
            if not bool(page["more"]):
                if not entries:
                    # Generations move without snapshots too (compaction);
                    # an empty final page proves nothing retained is newer,
                    # so fast-forward instead of polling that gap forever.
                    self.store.set_applied_generation(leader_generation)
                    break
                if self.store.applied_generation() >= leader_generation:
                    break
        self.applied_total += applied
        self.deduplicated_total += deduplicated
        return SyncReport(
            applied=applied,
            deduplicated=deduplicated,
            pages=pages,
            applied_generation=self.store.applied_generation(),
            leader_generation=leader_generation,
        )

    def run(
        self,
        *,
        poll_interval: float = 1.0,
        stop: Optional[threading.Event] = None,
        on_sync: Optional[Callable[[SyncReport], None]] = None,
    ) -> None:
        """Sync continuously every *poll_interval* seconds until *stop* is set.

        Transient leader failures (connection refused, proxy 5xx, a page
        torn by concurrent pruning) are remembered in :attr:`last_error`
        and retried on the next tick -- a follower keeps serving its last
        converged state while its leader is down.  :class:`ReplicationError`
        is not transient and propagates.
        """
        waiter = stop if stop is not None else threading.Event()
        while not waiter.is_set():
            try:
                report = self.sync_once()
            except (ServiceError, OSError) as error:
                self.last_error = str(error)
            else:
                self.last_error = None
                if on_sync is not None and (report.applied or report.deduplicated):
                    on_sync(report)
            waiter.wait(poll_interval)
