"""Stdlib-only JSON HTTP API over any :class:`SnapshotBackend`.

Endpoints (all ``GET``, all responses ``application/json``):

=============================  =====================================================
``/healthz``                   liveness + store generation / snapshot count
``/v1/snapshot/latest``        the newest persisted snapshot, full payload
``/v1/snapshot/{window_end}``  the snapshot whose window ends at ``window_end``
``/v1/as/{asn}``               latest classification of one AS (+ ``?history=N``)
``/v1/diff``                   change set of the latest (or ``?window=``) snapshot
``/v1/stats``                  store statistics + server request / cache counters
``/v1/replication/changes``    snapshots committed after ``?since=`` (replication)
=============================  =====================================================

The service keeps an LRU cache of encoded response bodies keyed on
``(store generation, request path)``.  The generation bumps on every store
commit, so a cache hit is always consistent with the durable state, and hot
entries (the latest snapshot, popular ASes) are served from memory without
rebuilding multi-thousand-row payloads from the backend.  Requests are
handled on a :class:`ThreadingHTTPServer`; the SQLite backend uses
per-thread connections against the WAL, so readers never block the producer.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Protocol, Tuple, Type
from urllib.parse import parse_qs

from repro.service.backends.base import SnapshotBackend, StoreError, snapshot_payload


class StatsSink(Protocol):
    """Cross-worker request accounting (see :mod:`repro.service.workers`).

    A multi-worker deployment hands every worker's service the same sink;
    each request is mirrored into it under the worker's id, and any worker
    can render the fleet-wide aggregate into its ``/v1/stats`` response.
    """

    def record(self, worker_id: int, *, hit: bool, error: bool) -> None:
        """Count one request handled by *worker_id*."""
        ...

    def payload(self) -> Dict[str, object]:
        """JSON-friendly fleet aggregate for ``/v1/stats``."""
        ...


class ApiError(Exception):
    """An HTTP error response (status + message) raised by route handlers."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class ServiceStats:
    """Live request / cache counters of one service instance."""

    def __init__(self) -> None:
        self.requests = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.errors = 0
        self._lock = threading.Lock()

    def record(self, *, hit: bool = False, error: bool = False) -> None:
        """Count one handled request."""
        with self._lock:
            self.requests += 1
            if error:
                self.errors += 1
            elif hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for ``/v1/stats``."""
        with self._lock:
            return {
                "requests": self.requests,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "errors": self.errors,
            }


class LRUCache:
    """A small thread-safe LRU mapping cache keys to encoded bodies."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[int, str], bytes]" = OrderedDict()

    def get(self, key: Tuple[int, str]) -> Optional[bytes]:
        """The cached body for *key*, refreshing its recency."""
        with self._lock:
            body = self._entries.get(key)
            if body is not None:
                self._entries.move_to_end(key)
            return body

    def put(self, key: Tuple[int, str], body: bytes) -> None:
        """Insert *body*, evicting the least recently used entry when full."""
        with self._lock:
            self._entries[key] = body
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Default number of encoded responses kept hot.
DEFAULT_CACHE_SIZE = 512


class ClassificationService:
    """Routing + caching logic of the HTTP API, independent of any socket.

    Tests (and the benchmark's store-level mode) drive :meth:`handle`
    directly; the HTTP handler below is a thin socket adapter around it.
    """

    def __init__(
        self,
        store: SnapshotBackend,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        worker_id: int = 0,
        stats_sink: Optional[StatsSink] = None,
    ) -> None:
        self.store = store
        self.cache = LRUCache(cache_size)
        self.stats = ServiceStats()
        self.worker_id = worker_id
        self.stats_sink = stats_sink

    #: Endpoints whose payloads change without a store write (request
    #: counters, liveness): caching them would serve stale operational data.
    VOLATILE_PATHS = frozenset({"/healthz", "/v1/stats"})

    #: Endpoints kept out of the response cache.  Beyond the volatile ones,
    #: replication changelog pages are excluded: each page is huge (up to
    #: hundreds of full snapshot payloads), keyed by a ``since`` no follower
    #: ever asks for twice (applied generations only move forward), so
    #: caching them would evict the hot per-AS entries for one-shot bodies.
    UNCACHED_PATHS = VOLATILE_PATHS | frozenset({"/v1/replication/changes"})

    # -- entry point --------------------------------------------------------------------
    def _record(self, *, hit: bool = False, error: bool = False) -> None:
        """Count one request locally and (if fleet-attached) in the sink."""
        self.stats.record(hit=hit, error=error)
        if self.stats_sink is not None:
            self.stats_sink.record(self.worker_id, hit=hit, error=error)

    def handle(self, target: str) -> Tuple[int, bytes]:
        """Serve one request target; returns ``(status, encoded JSON body)``."""
        # HTTP request targets are origin-form: everything before `?` is
        # the path (urlsplit would misread `//healthz` as a netloc).
        raw_path, _, query_text = target.partition("?")
        # Normalize the path exactly as routing sees it (empty segments
        # dropped) and use the normalized form for BOTH the volatile check
        # and the cache key.  Checking the raw path would let aliases like
        # `/healthz/` or `//healthz` slip past VOLATILE_PATHS into the
        # cache and serve stale liveness / fleet counters forever; keying
        # the cache on the raw target would also store one entry per alias
        # of the same resource.
        path = "/" + "/".join(part for part in raw_path.split("/") if part)
        cacheable = path not in self.UNCACHED_PATHS
        if cacheable:
            normalized = path + ("?" + query_text if query_text else "")
            cache_key = (self.store.generation(), normalized)
            cached = self.cache.get(cache_key)
            if cached is not None:
                self._record(hit=True)
                return 200, cached
        try:
            payload = self._route(path, parse_qs(query_text))
        except ApiError as error:
            self._record(error=True)
            return error.status, _encode({"error": error.message, "status": error.status})
        except StoreError as error:
            # A snapshot resolved a moment ago may be pruned by the producer
            # before its rows are read; that is a 404, not a dropped socket.
            self._record(error=True)
            return 404, _encode({"error": str(error), "status": 404})
        except sqlite3.Error as error:
            self._record(error=True)
            return 500, _encode({"error": f"store failure: {error}", "status": 500})
        body = _encode(payload)
        # Re-read the generation before publishing the body to the cache: a
        # commit that landed after the key was computed means the payload
        # may reflect the *newer* state, and caching it under the older
        # generation would serve divergent bytes until the next write.  A
        # replica applying windows mid-read makes this window wide, not
        # theoretical.  (Commits after this check are harmless: the body
        # was built before them, so it is consistent with the keyed
        # generation.)
        if cacheable and self.store.generation() == cache_key[0]:
            self.cache.put(cache_key, body)
        self._record()
        return 200, body

    # -- routing ------------------------------------------------------------------------
    def _route(self, path: str, query: Dict[str, List[str]]) -> Dict[str, object]:
        parts = [part for part in path.split("/") if part]
        if parts == ["healthz"]:
            return self._healthz()
        if len(parts) >= 2 and parts[0] == "v1":
            if parts[1] == "snapshot" and len(parts) == 3:
                if parts[2] == "latest":
                    return self._snapshot_latest()
                return self._snapshot_by_window(_int_operand(parts[2], "window"))
            if parts[1] == "as" and len(parts) == 3:
                return self._as_info(_int_operand(parts[2], "asn"), query)
            if parts[1] == "diff" and len(parts) == 2:
                return self._diff(query)
            if parts[1] == "stats" and len(parts) == 2:
                return self._stats()
            if parts[1] == "replication" and parts[2:] == ["changes"]:
                return self._replication_changes(query)
        raise ApiError(404, f"unknown endpoint {path!r}")

    # -- endpoints ----------------------------------------------------------------------
    def _healthz(self) -> Dict[str, object]:
        return {
            "status": "ok",
            "generation": self.store.generation(),
            "snapshots": len(self.store),
        }

    def _latest_or_404(self) -> int:
        latest = self.store.latest()
        if latest is None:
            raise ApiError(404, "store holds no snapshots yet")
        return latest.snapshot_id

    def _snapshot_latest(self) -> Dict[str, object]:
        return snapshot_payload(self.store.load_snapshot(self._latest_or_404()))

    def _snapshot_by_window(self, window_end: int) -> Dict[str, object]:
        meta = self.store.by_window_end(window_end)
        if meta is None:
            raise ApiError(404, f"no snapshot with window_end {window_end}")
        return snapshot_payload(self.store.load_snapshot(meta.snapshot_id))

    def _as_info(self, asn: int, query: Dict[str, List[str]]) -> Dict[str, object]:
        if asn < 0:
            raise ApiError(400, f"invalid asn {asn}")
        self._latest_or_404()
        history_limit = None
        if "history" in query:
            history_limit = _int_operand(query["history"][-1], "history")
            if history_limit < 1:
                raise ApiError(400, "history must be >= 1")
        latest = self.store.as_latest(asn)
        payload: Dict[str, object] = {
            "asn": asn,
            # An AS the store never saw is validly "nn": no evidence at all.
            "code": latest.code if latest is not None else "nn",
            "observed": latest is not None,
        }
        if latest is not None:
            payload["latest"] = latest.to_dict()
        if history_limit is not None:
            payload["history"] = [
                entry.to_dict() for entry in self.store.as_history(asn, limit=history_limit)
            ]
        return payload

    def _diff(self, query: Dict[str, List[str]]) -> Dict[str, object]:
        if "window" in query:
            window_end = _int_operand(query["window"][-1], "window")
            meta = self.store.by_window_end(window_end)
            if meta is None:
                raise ApiError(404, f"no snapshot with window_end {window_end}")
            snapshot_id = meta.snapshot_id
        else:
            snapshot_id = self._latest_or_404()
            meta = self.store.get(snapshot_id)
            assert meta is not None
        return {
            "snapshot_id": snapshot_id,
            "window_start": meta.window_start,
            "window_end": meta.window_end,
            "changed": {
                str(asn): [old, new]
                for asn, (old, new) in sorted(self.store.changes(snapshot_id).items())
            },
        }

    #: Default / maximum page size of ``/v1/replication/changes`` (full
    #: snapshot payloads are heavy; pages keep one response bounded).
    REPLICATION_PAGE = 64
    REPLICATION_PAGE_MAX = 256

    def _replication_changes(self, query: Dict[str, List[str]]) -> Dict[str, object]:
        """The changelog page a follower polls: snapshots after ``since``.

        Deterministic given the store state, but deliberately *not* cached
        (see :data:`UNCACHED_PATHS`): pages are large and each ``since`` is
        requested at most once per follower.  The current generation is
        read *before* the page so a concurrent commit can only make the
        reported generation conservative (the follower polls again), never
        claim coverage of snapshots the page omitted; the horizon is read
        *after*, so a concurrent prune surfaces as a raised horizon rather
        than a silent gap.
        """
        since = 0
        if "since" in query:
            since = _int_operand(query["since"][-1], "since")
            if since < 0:
                raise ApiError(400, f"since must be >= 0, got {since}")
        limit = self.REPLICATION_PAGE
        if "limit" in query:
            limit = _int_operand(query["limit"][-1], "limit")
            if limit < 1:
                raise ApiError(400, f"limit must be >= 1, got {limit}")
            limit = min(limit, self.REPLICATION_PAGE_MAX)
        generation = self.store.generation()
        metas = self.store.snapshots_since(since, limit=limit + 1)
        more = len(metas) > limit
        changes: List[Dict[str, object]] = []
        for meta in metas[:limit]:
            thresholds = meta.thresholds
            changes.append(
                {
                    "generation": meta.generation,
                    "snapshot_id": meta.snapshot_id,
                    "kind": meta.kind,
                    "thresholds": [
                        thresholds.tagger,
                        thresholds.silent,
                        thresholds.forward,
                        thresholds.cleaner,
                    ],
                    "payload": snapshot_payload(
                        self.store.load_snapshot(meta.snapshot_id)
                    ),
                }
            )
        return {
            "since": since,
            "generation": generation,
            "horizon": self.store.pruned_through(),
            "changes": changes,
            "more": more,
        }

    def _stats(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "store": self.store.stats(),
            "server": {
                **self.stats.as_dict(),
                "cache_entries": len(self.cache),
                "worker_id": self.worker_id,
            },
        }
        if self.stats_sink is not None:
            # Any worker of a fan-out deployment answers for the whole
            # fleet: the supervisor's shared board aggregates every
            # sibling's counters.
            payload["workers"] = self.stats_sink.payload()
        return payload


def _encode(payload: Dict[str, object]) -> bytes:
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")


def _int_operand(text: str, name: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ApiError(400, f"{name} must be an integer, got {text!r}") from None


class _Handler(BaseHTTPRequestHandler):
    """Socket adapter: one GET in, one cached JSON body out."""

    # Keep-alive matters for the queries/sec target: HTTP/1.1 + an explicit
    # Content-Length lets clients reuse one TCP connection for many queries.
    protocol_version = "HTTP/1.1"
    # Headers and body go out as separate writes; with Nagle enabled the
    # kernel holds the second one for the peer's delayed ACK (~40ms per
    # request), capping a keep-alive connection at ~25 queries/sec.
    disable_nagle_algorithm = True
    service: ClassificationService  # injected by ClassificationServer

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        status, body = self.service.handle(self.path)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # keep the serving hot path quiet; stats live in /v1/stats


def build_handler(service: ClassificationService) -> Type[BaseHTTPRequestHandler]:
    """A request-handler class bound to one :class:`ClassificationService`.

    Both the single-process :class:`ClassificationServer` and the
    multi-worker fan-out (:mod:`repro.service.workers`) serve through this
    adapter, so every worker speaks byte-identical HTTP.
    """
    return type("BoundHandler", (_Handler,), {"service": service})


class ClassificationServer:
    """A :class:`ThreadingHTTPServer` bound to one store.

    ``start()`` serves from a daemon thread (tests, examples, embedding into
    a producer process); ``serve_forever()`` blocks (the ``repro serve``
    CLI).  Always ``close()`` when done.
    """

    def __init__(
        self,
        store: SnapshotBackend,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        self.service = ClassificationService(store, cache_size=cache_size)
        self.httpd = ThreadingHTTPServer((host, port), build_handler(self.service))
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._served = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port resolved when 0 was requested)."""
        return self.httpd.server_address[0], self.httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ClassificationServer":
        """Serve requests from a background daemon thread."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._served = True
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve requests on the calling thread until interrupted."""
        self._served = True
        self.httpd.serve_forever()

    def close(self) -> None:
        """Stop serving and release the socket.

        Safe on a server that never served: ``BaseServer.shutdown()`` blocks
        forever unless ``serve_forever`` ran (it waits on an event only the
        serve loop sets), so it is only called after a serve actually
        started.  This is what lets ``repro serve`` stack the server in an
        ``ExitStack`` *before* blocking on it -- a failure between construction
        and serving still unwinds cleanly.
        """
        if self._served:
            self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ClassificationServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
