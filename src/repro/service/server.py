"""Stdlib-only JSON HTTP API over any :class:`SnapshotBackend`.

Endpoints (all ``GET``; JSON unless noted):

=============================  =====================================================
``/healthz``                   liveness + store generation / snapshot count (open)
``/metrics``                   Prometheus text exposition (open)
``/v1/snapshot/latest``        the newest persisted snapshot, full payload
``/v1/snapshot/{window_end}``  the snapshot whose window ends at ``window_end``
``/v1/as/{asn}``               latest classification of one AS (+ ``?history=N``)
``/v1/diff``                   change set of the latest (or ``?window=``) snapshot
``/v1/stats``                  store statistics + server request / cache counters
``/v1/replication/changes``    snapshots committed after ``?since=`` (replication)
=============================  =====================================================

Routing is a **declarative table**: each :class:`Route` carries its URL
pattern, handler, and three middleware flags -- ``cacheable`` (response
cache), ``auth_required`` (bearer-token check), ``metric_name`` (the
``endpoint=`` label of its Prometheus series).  The cache, auth, and
metrics middleware all read the table, so a new endpoint cannot silently
skip any of the three; adding one is adding one table row.

Errors are a structured envelope, uniformly:
``{"error": {"status": N, "code": "...", "message": "..."}}`` -- which
:class:`~repro.service.client.ServiceClient` parses back into typed
exceptions.

The service keeps an LRU cache of encoded response bodies keyed on
``(store generation, request path)``.  The generation bumps on every store
commit, so a cache hit is always consistent with the durable state, and hot
entries (the latest snapshot, popular ASes) are served from memory without
rebuilding multi-thousand-row payloads from the backend.  Requests are
handled on a :class:`ThreadingHTTPServer`; the SQLite backend uses
per-thread connections against the WAL, so readers never block the producer.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Protocol,
    Tuple,
    Type,
    Union,
)
from urllib.parse import parse_qs

from repro.service.auth import check_token
from repro.service.backends.base import SnapshotBackend, StoreError, snapshot_payload
from repro.service.metrics import (
    CHURN_TOP_N,
    METRICS_CONTENT_TYPE,
    UNKNOWN_ENDPOINT,
    MemoryFollowerLag,
    MetricsRecorder,
    render_metrics,
)

#: Content type of every JSON endpoint (everything except ``/metrics``).
JSON_CONTENT_TYPE = "application/json"


class StatsSink(Protocol):
    """Cross-worker request accounting (see :mod:`repro.service.workers`).

    A multi-worker deployment hands every worker's service the same sink;
    each request is mirrored into it under the worker's id, and any worker
    can render the fleet-wide aggregate into its ``/v1/stats`` response and
    its ``/metrics`` scrape.
    """

    def record(self, worker_id: int, *, hit: bool, error: bool) -> None:
        """Count one request handled by *worker_id*."""
        ...

    def observe(
        self, worker_id: int, endpoint: str, *, hit: bool, error: bool, seconds: float
    ) -> None:
        """Account one request against *endpoint*'s fleet-wide series."""
        ...

    def payload(self) -> Dict[str, object]:
        """JSON-friendly fleet aggregate for ``/v1/stats``."""
        ...

    def metrics_payload(self) -> Dict[str, Dict[str, object]]:
        """Fleet-wide per-endpoint aggregate for ``/metrics``."""
        ...


#: Error codes of the structured envelope, by status (fallback: the family).
_ERROR_CODES = {
    400: "bad_request",
    401: "unauthorized",
    403: "forbidden",
    404: "not_found",
    500: "internal",
}


class ApiError(Exception):
    """An HTTP error response raised by route handlers.

    Carries the three fields of the error envelope; *code* defaults from
    the status so handlers only spell it out when a status has more than
    one meaning (e.g. 500 ``internal`` vs ``store_failure``).
    """

    def __init__(self, status: int, message: str, *, code: Optional[str] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.code = code if code is not None else _ERROR_CODES.get(status, "error")


class ServiceStats:
    """Live request / cache counters of one service instance."""

    def __init__(self) -> None:
        self.requests = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.errors = 0
        self._lock = threading.Lock()

    def record(self, *, hit: bool = False, error: bool = False) -> None:
        """Count one handled request."""
        with self._lock:
            self.requests += 1
            if error:
                self.errors += 1
            elif hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for ``/v1/stats``."""
        with self._lock:
            return {
                "requests": self.requests,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "errors": self.errors,
            }


class LRUCache:
    """A small thread-safe LRU mapping cache keys to encoded bodies."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[int, str], bytes]" = OrderedDict()

    def get(self, key: Tuple[int, str]) -> Optional[bytes]:
        """The cached body for *key*, refreshing its recency."""
        with self._lock:
            body = self._entries.get(key)
            if body is not None:
                self._entries.move_to_end(key)
            return body

    def put(self, key: Tuple[int, str], body: bytes) -> None:
        """Insert *body*, evicting the least recently used entry when full."""
        with self._lock:
            self._entries[key] = body
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Default number of encoded responses kept hot.
DEFAULT_CACHE_SIZE = 512

#: What a route handler returns: a JSON payload, or pre-rendered text
#: (the Prometheus exposition) tagged with its content type.
RoutePayload = Union[Dict[str, object], str]

#: Handler signature: ``(service, path params, query params) -> payload``.
RouteHandler = Callable[
    ["ClassificationService", Dict[str, str], Dict[str, List[str]]], RoutePayload
]


class Route(NamedTuple):
    """One row of the declarative route table.

    The three flags are the middleware contract: the response cache honours
    ``cacheable``, the auth middleware honours ``auth_required``, and the
    metrics middleware labels the endpoint's series ``metric_name`` -- all
    read from here, never hard-coded per handler.
    """

    pattern: str
    handler: RouteHandler
    cacheable: bool
    auth_required: bool
    metric_name: str


def _match_route(pattern: str, parts: List[str]) -> Optional[Dict[str, str]]:
    """Match normalized path segments against a route pattern.

    Patterns are segment-literal except ``{name}`` placeholders, which
    capture one segment into the returned params dict.  ``None``: no match.
    """
    expected = [segment for segment in pattern.split("/") if segment]
    if len(expected) != len(parts):
        return None
    params: Dict[str, str] = {}
    for want, got in zip(expected, parts):
        if want.startswith("{") and want.endswith("}"):
            params[want[1:-1]] = got
        elif want != got:
            return None
    return params


class ServiceResponse(NamedTuple):
    """One handled request: status, encoded body, and its content type."""

    status: int
    body: bytes
    content_type: str = JSON_CONTENT_TYPE


class ClassificationService:
    """Routing + caching + middleware logic of the API, socket-independent.

    Tests (and the benchmark's store-level mode) drive :meth:`handle`
    directly; the HTTP handler below is a thin socket adapter around it.
    """

    def __init__(
        self,
        store: SnapshotBackend,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        worker_id: int = 0,
        stats_sink: Optional[StatsSink] = None,
        auth_token: Optional[str] = None,
        lag_tracker: Optional[MemoryFollowerLag] = None,
    ) -> None:
        self.store = store
        self.cache = LRUCache(cache_size)
        self.stats = ServiceStats()
        self.metrics = MetricsRecorder()
        self.worker_id = worker_id
        self.stats_sink = stats_sink
        self.auth_token = auth_token
        self.lag_tracker = lag_tracker if lag_tracker is not None else MemoryFollowerLag()
        self._churn_lock = threading.Lock()
        self._churn_cache: Optional[Tuple[int, int, List[Tuple[int, int]]]] = None

    #: Endpoints whose payloads change without a store write (request
    #: counters, liveness, scrapes): their routes are ``cacheable=False``,
    #: and this set documents why (serving them stale would hide live
    #: operational state).  Kept in sync with the route table by test.
    VOLATILE_PATHS = frozenset({"/healthz", "/metrics", "/v1/stats"})

    #: Endpoints kept out of the response cache.  Beyond the volatile ones,
    #: replication changelog pages are excluded: each page is huge (up to
    #: hundreds of full snapshot payloads), keyed by a ``since`` no follower
    #: ever asks for twice (applied generations only move forward), so
    #: caching them would evict the hot per-AS entries for one-shot bodies.
    UNCACHED_PATHS = VOLATILE_PATHS | frozenset({"/v1/replication/changes"})

    # -- entry point --------------------------------------------------------------------
    def _record(
        self,
        endpoint: str,
        *,
        hit: bool = False,
        error: bool = False,
        seconds: float = 0.0,
    ) -> None:
        """Count one request locally and (if fleet-attached) in the sink."""
        self.stats.record(hit=hit, error=error)
        self.metrics.observe(endpoint, hit=hit, error=error, seconds=seconds)
        if self.stats_sink is not None:
            self.stats_sink.record(self.worker_id, hit=hit, error=error)
            self.stats_sink.observe(
                self.worker_id, endpoint, hit=hit, error=error, seconds=seconds
            )

    def resolve(self, path: str) -> Tuple[Optional[Route], Dict[str, str]]:
        """The route table row (and captured params) serving *path*."""
        parts = [part for part in path.split("/") if part]
        for route in self.ROUTES:
            params = _match_route(route.pattern, parts)
            if params is not None:
                return route, params
        return None, {}

    def handle(
        self, target: str, headers: Optional[Mapping[str, str]] = None
    ) -> ServiceResponse:
        """Serve one request target through the full middleware stack.

        *headers* carries the ``Authorization`` header when auth is
        enabled (tests may pass a plain dict; the HTTP adapter passes the
        request's header mapping).  Middleware order: resolve -> auth ->
        cache -> handler -> cache put -> metrics; metrics see every
        outcome, auth rejections and cache hits included.
        """
        started = time.perf_counter()
        # HTTP request targets are origin-form: everything before `?` is
        # the path (urlsplit would misread `//healthz` as a netloc).
        raw_path, _, query_text = target.partition("?")
        # Normalize the path exactly as routing sees it (empty segments
        # dropped) and use the normalized form for BOTH the route flags
        # and the cache key.  Checking the raw path would let aliases like
        # `/healthz/` or `//healthz` slip past the volatile routes into the
        # cache and serve stale liveness / fleet counters forever; keying
        # the cache on the raw target would also store one entry per alias
        # of the same resource.
        path = "/" + "/".join(part for part in raw_path.split("/") if part)
        route, _params = self.resolve(path)
        endpoint = route.metric_name if route is not None else UNKNOWN_ENDPOINT

        def finish(
            status: int, body: bytes, content_type: str, *, hit: bool = False
        ) -> ServiceResponse:
            self._record(
                endpoint,
                hit=hit,
                error=status >= 400,
                seconds=time.perf_counter() - started,
            )
            return ServiceResponse(status, body, content_type)

        if self.auth_token is not None:
            # Unroutable /v1/* paths are checked too: probing for endpoints
            # must not be cheaper without credentials than with them.
            protected = (
                route.auth_required if route is not None else path.startswith("/v1/")
            )
            if protected:
                failure = check_token(headers, self.auth_token)
                if failure is not None:
                    return finish(
                        failure.status,
                        _encode_error(failure.status, failure.code, failure.message),
                        JSON_CONTENT_TYPE,
                    )
        cacheable = route is not None and route.cacheable
        cache_key = (0, "")
        if cacheable:
            normalized = path + ("?" + query_text if query_text else "")
            cache_key = (self.store.generation(), normalized)
            cached = self.cache.get(cache_key)
            if cached is not None:
                return finish(200, cached, JSON_CONTENT_TYPE, hit=True)
        try:
            payload = self._route(path, parse_qs(query_text))
        except ApiError as error:
            return finish(
                error.status,
                _encode_error(error.status, error.code, error.message),
                JSON_CONTENT_TYPE,
            )
        except StoreError as error:
            # A snapshot resolved a moment ago may be pruned by the producer
            # before its rows are read; that is a 404, not a dropped socket.
            return finish(404, _encode_error(404, "not_found", str(error)), JSON_CONTENT_TYPE)
        except sqlite3.Error as error:
            return finish(
                500,
                _encode_error(500, "store_failure", f"store failure: {error}"),
                JSON_CONTENT_TYPE,
            )
        if isinstance(payload, str):
            # Pre-rendered text (the /metrics exposition), never cached.
            return finish(200, payload.encode("utf-8"), METRICS_CONTENT_TYPE)
        body = _encode(payload)
        # Re-read the generation before publishing the body to the cache: a
        # commit that landed after the key was computed means the payload
        # may reflect the *newer* state, and caching it under the older
        # generation would serve divergent bytes until the next write.  A
        # replica applying windows mid-read makes this window wide, not
        # theoretical.  (Commits after this check are harmless: the body
        # was built before them, so it is consistent with the keyed
        # generation.)
        if cacheable and self.store.generation() == cache_key[0]:
            self.cache.put(cache_key, body)
        return finish(200, body, JSON_CONTENT_TYPE)

    # -- routing ------------------------------------------------------------------------
    def _route(self, path: str, query: Dict[str, List[str]]) -> RoutePayload:
        """Resolve and invoke the handler of *path* (the dispatch step)."""
        route, params = self.resolve(path)
        if route is None:
            raise ApiError(404, f"unknown endpoint {path!r}")
        return route.handler(self, params, query)

    # -- endpoints ----------------------------------------------------------------------
    def _healthz(
        self, params: Dict[str, str], query: Dict[str, List[str]]
    ) -> RoutePayload:
        return {
            "status": "ok",
            "generation": self.store.generation(),
            "snapshots": len(self.store),
        }

    def _churn(self) -> Tuple[int, List[Tuple[int, int]]]:
        """Per-AS classification churn from the persisted change maps.

        Computed by summing every retained snapshot's change set; memoized
        by store generation, so repeated scrapes of an idle store cost one
        dict lookup and a generation read.
        """
        generation = self.store.generation()
        with self._churn_lock:
            cached = self._churn_cache
            if cached is not None and cached[0] == generation:
                return cached[1], cached[2]
        counts: Dict[int, int] = {}
        for meta in self.store.snapshots():
            for asn in self.store.changes(meta.snapshot_id):
                counts[int(asn)] = counts.get(int(asn), 0) + 1
        total = sum(counts.values())
        top = sorted(counts.items(), key=lambda item: (-item[1], item[0]))[:CHURN_TOP_N]
        with self._churn_lock:
            self._churn_cache = (generation, total, top)
        return total, top

    def _metrics(
        self, params: Dict[str, str], query: Dict[str, List[str]]
    ) -> RoutePayload:
        """One Prometheus scrape of the whole deployment.

        With a stats sink attached, the per-endpoint aggregate comes off
        the shared worker board, so any worker the kernel picks answers
        for the entire ``--http-workers N`` fleet.
        """
        workers: Optional[int] = None
        if self.stats_sink is not None:
            endpoints: Mapping[str, Mapping[str, object]] = (
                self.stats_sink.metrics_payload()
            )
            board = self.stats_sink.payload()
            count = board.get("count")
            workers = int(count) if isinstance(count, int) else None
        else:
            endpoints = self.metrics.endpoint_stats()
        churn_total, churn_top = self._churn()
        return render_metrics(
            endpoints=endpoints,
            store_stats=self.store.stats(),
            followers=self.lag_tracker.snapshot(),
            churn_total=churn_total,
            churn_top=churn_top,
            workers=workers,
            ingest=self.store.ingest_stats(),
        )

    def _latest_or_404(self) -> int:
        latest = self.store.latest()
        if latest is None:
            raise ApiError(404, "store holds no snapshots yet")
        return latest.snapshot_id

    def _snapshot_latest(
        self, params: Dict[str, str], query: Dict[str, List[str]]
    ) -> RoutePayload:
        return snapshot_payload(self.store.load_snapshot(self._latest_or_404()))

    def _snapshot_by_window(
        self, params: Dict[str, str], query: Dict[str, List[str]]
    ) -> RoutePayload:
        window_end = _int_operand(params["window_end"], "window")
        meta = self.store.by_window_end(window_end)
        if meta is None:
            raise ApiError(404, f"no snapshot with window_end {window_end}")
        return snapshot_payload(self.store.load_snapshot(meta.snapshot_id))

    def _as_info(
        self, params: Dict[str, str], query: Dict[str, List[str]]
    ) -> RoutePayload:
        asn = _int_operand(params["asn"], "asn")
        if asn < 0:
            raise ApiError(400, f"invalid asn {asn}")
        self._latest_or_404()
        history_limit = None
        if "history" in query:
            history_limit = _int_operand(query["history"][-1], "history")
            if history_limit < 1:
                raise ApiError(400, "history must be >= 1")
        latest = self.store.as_latest(asn)
        payload: Dict[str, object] = {
            "asn": asn,
            # An AS the store never saw is validly "nn": no evidence at all.
            "code": latest.code if latest is not None else "nn",
            "observed": latest is not None,
        }
        if latest is not None:
            payload["latest"] = latest.to_dict()
        if history_limit is not None:
            payload["history"] = [
                entry.to_dict() for entry in self.store.as_history(asn, limit=history_limit)
            ]
        return payload

    def _diff(
        self, params: Dict[str, str], query: Dict[str, List[str]]
    ) -> RoutePayload:
        if "window" in query:
            window_end = _int_operand(query["window"][-1], "window")
            meta = self.store.by_window_end(window_end)
            if meta is None:
                raise ApiError(404, f"no snapshot with window_end {window_end}")
            snapshot_id = meta.snapshot_id
        else:
            snapshot_id = self._latest_or_404()
            meta = self.store.get(snapshot_id)
            assert meta is not None
        return {
            "snapshot_id": snapshot_id,
            "window_start": meta.window_start,
            "window_end": meta.window_end,
            "changed": {
                str(asn): [old, new]
                for asn, (old, new) in sorted(self.store.changes(snapshot_id).items())
            },
        }

    #: Default / maximum page size of ``/v1/replication/changes`` (full
    #: snapshot payloads are heavy; pages keep one response bounded).
    REPLICATION_PAGE = 64
    REPLICATION_PAGE_MAX = 256

    def _replication_changes(
        self, params: Dict[str, str], query: Dict[str, List[str]]
    ) -> RoutePayload:
        """The changelog page a follower polls: snapshots after ``since``.

        Deterministic given the store state, but deliberately *not* cached
        (``cacheable=False`` in the route table): pages are large and each
        ``since`` is requested at most once per follower.  The current
        generation is read *before* the page so a concurrent commit can
        only make the reported generation conservative (the follower polls
        again), never claim coverage of snapshots the page omitted; the
        horizon is read *after*, so a concurrent prune surfaces as a raised
        horizon rather than a silent gap.

        Followers that pass ``?follower=name`` feed the per-follower
        replication-lag gauges of ``/metrics``: the poll itself states how
        far behind the poller is (``generation - since``).
        """
        since = 0
        if "since" in query:
            since = _int_operand(query["since"][-1], "since")
            if since < 0:
                raise ApiError(400, f"since must be >= 0, got {since}")
        limit = self.REPLICATION_PAGE
        if "limit" in query:
            limit = _int_operand(query["limit"][-1], "limit")
            if limit < 1:
                raise ApiError(400, f"limit must be >= 1, got {limit}")
            limit = min(limit, self.REPLICATION_PAGE_MAX)
        generation = self.store.generation()
        if "follower" in query and query["follower"][-1]:
            self.lag_tracker.record(
                query["follower"][-1], since=since, generation=generation
            )
        metas = self.store.snapshots_since(since, limit=limit + 1)
        more = len(metas) > limit
        changes: List[Dict[str, object]] = []
        for meta in metas[:limit]:
            thresholds = meta.thresholds
            changes.append(
                {
                    "generation": meta.generation,
                    "snapshot_id": meta.snapshot_id,
                    "kind": meta.kind,
                    "thresholds": [
                        thresholds.tagger,
                        thresholds.silent,
                        thresholds.forward,
                        thresholds.cleaner,
                    ],
                    "payload": snapshot_payload(
                        self.store.load_snapshot(meta.snapshot_id)
                    ),
                }
            )
        return {
            "since": since,
            "generation": generation,
            "horizon": self.store.pruned_through(),
            "changes": changes,
            "more": more,
        }

    def _stats(
        self, params: Dict[str, str], query: Dict[str, List[str]]
    ) -> RoutePayload:
        payload: Dict[str, object] = {
            "store": self.store.stats(),
            "server": {
                **self.stats.as_dict(),
                "cache_entries": len(self.cache),
                "worker_id": self.worker_id,
            },
            "auth": {"enabled": self.auth_token is not None},
        }
        if self.stats_sink is not None:
            # Any worker of a fan-out deployment answers for the whole
            # fleet: the supervisor's shared board aggregates every
            # sibling's counters.
            payload["workers"] = self.stats_sink.payload()
        return payload

    #: The route table.  Order matters only where patterns overlap: the
    #: literal ``/v1/snapshot/latest`` must precede the ``{window_end}``
    #: capture.  ``metric_name`` values come from
    #: :data:`repro.service.metrics.METRIC_ENDPOINTS` (asserted by test).
    ROUTES: Tuple[Route, ...] = (
        Route("/healthz", _healthz, False, False, "healthz"),
        Route("/metrics", _metrics, False, False, "metrics"),
        Route("/v1/snapshot/latest", _snapshot_latest, True, True, "snapshot_latest"),
        Route("/v1/snapshot/{window_end}", _snapshot_by_window, True, True, "snapshot_window"),
        Route("/v1/as/{asn}", _as_info, True, True, "as_info"),
        Route("/v1/diff", _diff, True, True, "diff"),
        Route("/v1/stats", _stats, False, True, "stats"),
        Route("/v1/replication/changes", _replication_changes, False, True, "replication_changes"),
    )


def _encode(payload: Dict[str, object]) -> bytes:
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")


def _encode_error(status: int, code: str, message: str) -> bytes:
    """Encode the structured error envelope every non-2xx response uses."""
    return _encode(
        {"error": {"status": status, "code": code, "message": message}}
    )


def _int_operand(text: str, name: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ApiError(400, f"{name} must be an integer, got {text!r}") from None


class _Handler(BaseHTTPRequestHandler):
    """Socket adapter: one GET in, one cached body out."""

    # Keep-alive matters for the queries/sec target: HTTP/1.1 + an explicit
    # Content-Length lets clients reuse one TCP connection for many queries.
    protocol_version = "HTTP/1.1"
    # Headers and body go out as separate writes; with Nagle enabled the
    # kernel holds the second one for the peer's delayed ACK (~40ms per
    # request), capping a keep-alive connection at ~25 queries/sec.
    disable_nagle_algorithm = True
    service: ClassificationService  # injected by ClassificationServer

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        response = self.service.handle(self.path, self.headers)
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        self.end_headers()
        self.wfile.write(response.body)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # keep the serving hot path quiet; stats live in /v1/stats


def build_handler(service: ClassificationService) -> Type[BaseHTTPRequestHandler]:
    """A request-handler class bound to one :class:`ClassificationService`.

    Both the single-process :class:`ClassificationServer` and the
    multi-worker fan-out (:mod:`repro.service.workers`) serve through this
    adapter, so every worker speaks byte-identical HTTP.
    """
    return type("BoundHandler", (_Handler,), {"service": service})


class ClassificationServer:
    """A :class:`ThreadingHTTPServer` bound to one store.

    ``start()`` serves from a daemon thread (tests, examples, embedding into
    a producer process); ``serve_forever()`` blocks (the ``repro serve``
    CLI).  Always ``close()`` when done.
    """

    def __init__(
        self,
        store: SnapshotBackend,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = DEFAULT_CACHE_SIZE,
        auth_token: Optional[str] = None,
    ) -> None:
        self.service = ClassificationService(
            store, cache_size=cache_size, auth_token=auth_token
        )
        self.httpd = ThreadingHTTPServer((host, port), build_handler(self.service))
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._served = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port resolved when 0 was requested)."""
        return self.httpd.server_address[0], self.httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ClassificationServer":
        """Serve requests from a background daemon thread."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._served = True
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve requests on the calling thread until interrupted."""
        self._served = True
        self.httpd.serve_forever()

    def close(self) -> None:
        """Stop serving and release the socket.

        Safe on a server that never served: ``BaseServer.shutdown()`` blocks
        forever unless ``serve_forever`` ran (it waits on an event only the
        serve loop sets), so it is only called after a serve actually
        started.  This is what lets ``repro serve`` stack the server in an
        ``ExitStack`` *before* blocking on it -- a failure between construction
        and serving still unwinds cleanly.
        """
        if self._served:
            self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ClassificationServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
