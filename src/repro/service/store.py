"""Back-compat facade over :mod:`repro.service.backends`.

The storage layer moved into a pluggable-backend package:

* the contract (:class:`SnapshotBackend`, :class:`StoredSnapshot`,
  :class:`ASHistoryEntry`, :class:`StoreError`, the canonical wire codec
  :func:`snapshot_payload` / ``snapshot_from_payload``) lives in
  :mod:`repro.service.backends.base`;
* the SQLite implementation (still named :class:`SnapshotStore`) lives in
  :mod:`repro.service.backends.sqlite`;
* :func:`open_store` in :mod:`repro.service.backends` dispatches store
  URLs (``sqlite:path``, ``memory:``, plain paths) and can wrap the hot
  backend in a tiered archive (``archive_dir=``).

This module keeps every historical import path working --
``from repro.service.store import SnapshotStore, open_store`` predates the
package split and is used throughout tests, benchmarks, and downstream
code.  New code should import from :mod:`repro.service.backends`.
"""

from __future__ import annotations

from repro.service.backends import open_store
from repro.service.backends.base import (
    SNAPSHOT_KINDS,
    ASHistoryEntry,
    SnapshotBackend,
    StoredSnapshot,
    StoreError,
    snapshot_payload,
)
from repro.service.backends.sqlite import SCHEMA_VERSION, SnapshotStore

__all__ = [
    "ASHistoryEntry",
    "SCHEMA_VERSION",
    "SNAPSHOT_KINDS",
    "SnapshotBackend",
    "SnapshotStore",
    "StoreError",
    "StoredSnapshot",
    "open_store",
    "snapshot_payload",
]
