"""Horizontal fan-out of the classification HTTP service.

One :class:`~repro.service.server.ClassificationServer` is a single
``ThreadingHTTPServer``: every request thread shares one Python process, so
the encode/route/cache hot path is GIL-bound no matter how many client
connections arrive.  This module scales the same socket-free
:class:`~repro.service.server.ClassificationService` across **N worker
processes** that all accept on the same ``(host, port)`` via
``SO_REUSEPORT`` -- the kernel load-balances incoming connections across
the workers, each of which owns its own SQLite reader connections (the
store is WAL, readers never block the producer) and its own
generation-keyed LRU response cache.

Pieces:

* :class:`WorkerStatsBoard` -- a tiny mmap-backed counter board shared by
  every worker.  Each worker mirrors its request counters into its own
  slot; any worker can render the fleet-wide aggregate, which is how
  ``/v1/stats`` answers for the whole deployment no matter which worker
  the kernel picked.
* :func:`reuseport_supported` -- capability probe; where ``SO_REUSEPORT``
  is unavailable the fan-out falls back to N accept-loop threads sharing
  one non-blocking listener in-process (still one service + store reader
  + cache per worker, but a single Python process).
* :class:`MultiWorkerServer` -- the supervisor: resolves the port, spawns
  the workers, monitors them, respawns any that die, and tears the fleet
  down.  ``repro serve --http-workers N`` is a thin wrapper around it.

The supervisor holds a bound (but never listening) ``SO_REUSEPORT``
placeholder socket for the whole lifetime of the fleet: it resolves
``port=0`` to a concrete port before any worker starts, and it keeps the
port reserved across worker crashes, so a respawned worker can always
rebind.  A non-listening member of a reuseport group receives no
connections, so the placeholder is invisible to clients.
"""

from __future__ import annotations

import mmap
import multiprocessing
import os
import shutil
import socket
import struct
import sys
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess
from typing import Dict, List, Optional, Tuple, Type

from repro.service.backends import SnapshotBackend, open_store, parse_store_url
from repro.service.metrics import (
    ENDPOINT_COUNTER_FIELDS,
    LATENCY_BUCKETS,
    METRIC_ENDPOINTS,
    UNKNOWN_ENDPOINT,
    FileFollowerLag,
    bucket_index,
    empty_endpoint_stats,
)
from repro.service.server import (
    DEFAULT_CACHE_SIZE,
    ClassificationService,
    build_handler,
)

#: Counter fields each worker owns on the shared board, in slot order.
STAT_FIELDS = ("requests", "cache_hits", "cache_misses", "errors")

_SLOT_FORMAT = "<" + "q" * len(STAT_FIELDS)
_SLOT_SIZE = struct.calcsize(_SLOT_FORMAT)

#: One endpoint's accounting on the board: the four integer counters, the
#: latency sum (float64 seconds), and one count per histogram bucket
#: (``len(LATENCY_BUCKETS)`` finite bounds + the ``+Inf`` overflow).
_ENDPOINT_FORMAT = (
    "<" + "q" * len(ENDPOINT_COUNTER_FIELDS) + "d" + "q" * (len(LATENCY_BUCKETS) + 1)
)
_ENDPOINT_SIZE = struct.calcsize(_ENDPOINT_FORMAT)

#: Full per-worker slot: the legacy aggregate counters first (their layout
#: is unchanged, so readers of the old board region keep working), then one
#: endpoint block per :data:`METRIC_ENDPOINTS` entry, in tuple order.
_WORKER_SLOT_SIZE = _SLOT_SIZE + len(METRIC_ENDPOINTS) * _ENDPOINT_SIZE

_ENDPOINT_INDEX = {name: index for index, name in enumerate(METRIC_ENDPOINTS)}


def reuseport_supported() -> bool:
    """Whether this platform can fan out with ``SO_REUSEPORT`` sockets.

    Requires more than the option merely existing: only Linux load-balances
    incoming connections across a reuseport group.  BSD-family kernels
    (including macOS) accept the option but deliver every connection to the
    most recently bound listener, which would turn the "fan-out" into one
    busy worker -- those platforms use the shared-listener thread fallback.
    """
    if not sys.platform.startswith("linux") or not hasattr(socket, "SO_REUSEPORT"):
        return False
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        return True
    except OSError:
        return False
    finally:
        probe.close()


class WorkerStatsBoard:
    """Per-worker request accounting in a file every worker process maps.

    Each worker owns one slot: the four legacy aggregate counters (their
    layout predates the metrics endpoint and is preserved), followed by one
    block per :data:`~repro.service.metrics.METRIC_ENDPOINTS` entry holding
    that endpoint's counters, latency sum, and histogram bucket counts.
    Exactly one worker writes each slot (its request threads serialise
    through a per-process lock), so there is no cross-process locking;
    concurrent readers may see a counter mid-increment, which is harmless
    for monotonically growing statistics.
    """

    def __init__(self, path: str, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.path = path
        self.workers = workers
        self._lock = threading.Lock()
        self._file = open(path, "r+b")
        self._map = mmap.mmap(self._file.fileno(), workers * _WORKER_SLOT_SIZE)

    @classmethod
    def create(cls, workers: int) -> "WorkerStatsBoard":
        """Allocate a zeroed board in a fresh temporary file."""
        fd, path = tempfile.mkstemp(prefix="repro-serve-stats-", suffix=".bin")
        with os.fdopen(fd, "wb") as handle:
            handle.write(b"\x00" * workers * _WORKER_SLOT_SIZE)
        return cls(path, workers)

    # -- StatsSink ----------------------------------------------------------------------
    def record(self, worker_id: int, *, hit: bool, error: bool) -> None:
        """Count one request handled by *worker_id* (its own slot only)."""
        offset = worker_id * _WORKER_SLOT_SIZE
        with self._lock:
            requests, hits, misses, errors = struct.unpack_from(
                _SLOT_FORMAT, self._map, offset
            )
            requests += 1
            if error:
                errors += 1
            elif hit:
                hits += 1
            else:
                misses += 1
            struct.pack_into(_SLOT_FORMAT, self._map, offset, requests, hits, misses, errors)

    def observe(
        self, worker_id: int, endpoint: str, *, hit: bool, error: bool, seconds: float
    ) -> None:
        """Account one request against *endpoint*'s block of this worker."""
        index = _ENDPOINT_INDEX.get(endpoint, _ENDPOINT_INDEX[UNKNOWN_ENDPOINT])
        offset = worker_id * _WORKER_SLOT_SIZE + _SLOT_SIZE + index * _ENDPOINT_SIZE
        with self._lock:
            values = list(struct.unpack_from(_ENDPOINT_FORMAT, self._map, offset))
            values[0] += 1  # requests
            if error:
                values[1] += 1  # errors
            elif hit:
                values[2] += 1  # cache_hits
            else:
                values[3] += 1  # cache_misses
            values[4] += seconds  # latency_sum
            values[5 + bucket_index(seconds)] += 1
            struct.pack_into(_ENDPOINT_FORMAT, self._map, offset, *values)

    def per_worker(self) -> List[Dict[str, int]]:
        """Each worker's legacy aggregate counters, indexed by worker id."""
        rows: List[Dict[str, int]] = []
        for worker_id in range(self.workers):
            values = struct.unpack_from(
                _SLOT_FORMAT, self._map, worker_id * _WORKER_SLOT_SIZE
            )
            rows.append(dict(zip(STAT_FIELDS, values)))
        return rows

    def payload(self) -> Dict[str, object]:
        """JSON-friendly fleet aggregate for ``/v1/stats``."""
        rows = self.per_worker()
        aggregate = {field: sum(row[field] for row in rows) for field in STAT_FIELDS}
        return {"count": self.workers, "aggregate": aggregate, "per_worker": rows}

    def metrics_payload(self) -> Dict[str, Dict[str, object]]:
        """Fleet-wide per-endpoint aggregate (the ``/metrics`` data source).

        Sums every worker's endpoint blocks into the same shape
        :meth:`MetricsRecorder.endpoint_stats` returns, so the renderer
        does not care whether a scrape is single- or multi-worker.
        """
        endpoints = {name: empty_endpoint_stats() for name in METRIC_ENDPOINTS}
        for worker_id in range(self.workers):
            base = worker_id * _WORKER_SLOT_SIZE + _SLOT_SIZE
            for index, name in enumerate(METRIC_ENDPOINTS):
                values = struct.unpack_from(
                    _ENDPOINT_FORMAT, self._map, base + index * _ENDPOINT_SIZE
                )
                stats = endpoints[name]
                for field_index, field in enumerate(ENDPOINT_COUNTER_FIELDS):
                    stats[field] = int(stats[field]) + int(values[field_index])  # type: ignore[call-overload]
                stats["latency_sum"] = float(stats["latency_sum"]) + float(values[4])  # type: ignore[arg-type]
                buckets = stats["buckets"]
                assert isinstance(buckets, list)
                for bucket, count in enumerate(values[5:]):
                    buckets[bucket] += int(count)
        return endpoints

    def close(self, *, unlink: bool = False) -> None:
        """Unmap the board; the supervisor also unlinks the backing file."""
        self._map.close()
        self._file.close()
        if unlink:
            try:
                os.unlink(self.path)
            except OSError:
                pass


class ReusePortHTTPServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` that joins an ``SO_REUSEPORT`` group."""

    daemon_threads = True

    def server_bind(self) -> None:
        self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


class _SharedListenerHTTPServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` accepting on a pre-bound shared listener.

    The listener is non-blocking: when several accept loops wake for the
    same connection, the losers' ``accept`` raises ``BlockingIOError``,
    which ``socketserver`` swallows (``_handle_request_noblock`` treats any
    ``OSError`` from ``get_request`` as "no request after all").
    """

    daemon_threads = True

    def __init__(
        self, listener: socket.socket, handler: Type[BaseHTTPRequestHandler]
    ) -> None:
        super().__init__(listener.getsockname()[:2], handler, bind_and_activate=False)
        self.socket.close()  # replace the unused fresh socket
        self.socket = listener

    def get_request(self) -> Tuple[socket.socket, object]:
        request, client_address = self.socket.accept()
        # Some platforms (Winsock, classic BSD) make accepted sockets
        # inherit the listener's non-blocking flag, and CPython does not
        # reset it for a zero-timeout listener; request handling assumes
        # a blocking connection.
        request.setblocking(True)
        return request, client_address

    def server_close(self) -> None:
        # The shared listener belongs to the supervisor; closing it once
        # (idempotently) is the supervisor's job, so double closes from
        # several workers are harmless.
        self.socket.close()


def _watch_supervisor(httpd: ThreadingHTTPServer, supervisor_pid: int) -> None:
    """Shut the worker down once its supervisor is gone.

    Daemon-process cleanup only runs when the supervisor exits *normally*;
    a SIGTERM'd or SIGKILL'd supervisor would otherwise orphan workers
    that keep the port alive forever.  Orphaning reparents this process,
    so a changed ``getppid`` is the death certificate.
    """
    while True:
        if os.getppid() != supervisor_pid:
            httpd.shutdown()
            return
        time.sleep(0.5)


def _serve_worker(
    worker_id: int,
    workers: int,
    store_path: str,
    host: str,
    port: int,
    cache_size: int,
    retention: Optional[int],
    archive_dir: Optional[str],
    board_path: str,
    supervisor_pid: int,
    ready: Optional[Connection],
    auth_token: Optional[str] = None,
    lag_dir: Optional[str] = None,
) -> None:
    """Worker process entry point: open the store, bind, accept forever.

    Module-level (not a closure) so the ``spawn`` start method can import
    it; everything it needs arrives as plain picklable values.  *retention*
    is carried for ``/v1/stats`` visibility only -- serving never appends,
    so it never prunes here.  *archive_dir* makes every worker open the
    same tiered view, so cold (beyond-retention) reads answer on any
    worker the kernel picks.  *lag_dir* is the supervisor's shared
    follower-lag directory: each worker persists the changelog polls it
    saw, so the ``/metrics`` scrape of any worker reports every follower.
    """
    board = WorkerStatsBoard(board_path, workers)
    store = open_store(store_path, retention=retention, archive_dir=archive_dir)
    service = ClassificationService(
        store,
        cache_size=cache_size,
        worker_id=worker_id,
        stats_sink=board,
        auth_token=auth_token,
        lag_tracker=(
            FileFollowerLag(lag_dir, worker_id) if lag_dir is not None else None
        ),
    )
    httpd = ReusePortHTTPServer((host, port), build_handler(service))
    threading.Thread(
        target=_watch_supervisor,
        args=(httpd, supervisor_pid),
        name="repro-serve-parent-watch",
        daemon=True,
    ).start()
    if ready is not None:
        ready.send(("ready", httpd.server_address[1]))
        ready.close()
    try:
        httpd.serve_forever(poll_interval=0.1)
    finally:
        httpd.server_close()
        store.close()


class MultiWorkerServer:
    """Supervisor of an N-worker HTTP fan-out over one snapshot store.

    ``mode`` selects the fan-out mechanism:

    * ``"process"`` -- N OS processes, each accepting on its own
      ``SO_REUSEPORT`` socket (true parallelism; the production shape);
    * ``"thread"`` -- N accept-loop threads sharing one non-blocking
      listener in this process (the portable fallback);
    * ``"auto"`` (default) -- ``"process"`` where ``SO_REUSEPORT`` works,
      else ``"thread"``.

    The supervisor monitors process workers and respawns any that die
    (``respawns`` counts them).  Always :meth:`close` when done; the class
    is also a context manager.
    """

    def __init__(
        self,
        store_path: str,
        *,
        workers: int,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = DEFAULT_CACHE_SIZE,
        retention: Optional[int] = None,
        archive_dir: Optional[str] = None,
        auth_token: Optional[str] = None,
        mode: str = "auto",
        poll_interval: float = 0.2,
        start_method: str = "spawn",
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        scheme, target = parse_store_url(str(store_path))
        if scheme == "memory" or target == ":memory:":
            raise ValueError("multi-worker serving needs a file-backed store")
        if mode not in ("auto", "process", "thread"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode == "process" and not reuseport_supported():
            raise RuntimeError("SO_REUSEPORT is unavailable; use mode='thread'")
        if mode == "auto":
            mode = "process" if reuseport_supported() else "thread"
        self.store_path = str(store_path)
        self.workers = workers
        self.host = host
        self.requested_port = port
        self.cache_size = cache_size
        self.retention = retention
        self.archive_dir = str(archive_dir) if archive_dir is not None else None
        self.auth_token = auth_token
        self.mode = mode
        self.poll_interval = poll_interval
        self.respawns = 0
        self.respawn_failures = 0
        self.last_respawn_error: Optional[str] = None
        #: worker_id -> (monotonic time before which no retry, current delay).
        self._respawn_backoff: Dict[int, Tuple[float, float]] = {}
        self._mp = multiprocessing.get_context(start_method)
        self._closing = threading.Event()
        self._monitor_thread: Optional[threading.Thread] = None
        self._placeholder: Optional[socket.socket] = None
        self._board: Optional[WorkerStatsBoard] = None
        self._lag_dir: Optional[str] = None
        self._port: Optional[int] = None
        # Process mode state.
        self._processes: List[Optional[BaseProcess]] = []
        # Thread mode state.
        self._listener: Optional[socket.socket] = None
        self._thread_servers: List[_SharedListenerHTTPServer] = []
        self._thread_stores: List[SnapshotBackend] = []
        self._accept_threads: List[threading.Thread] = []

    # -- addressing ---------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._port is None:
            raise RuntimeError("server not started")
        return self.host, self._port

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        host, port = self.address
        return f"http://{host}:{port}"

    def worker_pids(self) -> List[int]:
        """Live worker process ids (empty in thread mode)."""
        pids: List[int] = []
        for process in self._processes:
            if process is None or not process.is_alive():
                continue
            pid = process.pid
            if pid is not None:
                pids.append(pid)
        return pids

    def stats(self) -> Dict[str, object]:
        """The fleet-wide counter aggregate straight off the shared board."""
        if self._board is None:
            raise RuntimeError("server not started")
        return self._board.payload()

    # -- lifecycle ----------------------------------------------------------------------
    def _reserve_port(self) -> int:
        """Bind the non-listening placeholder and resolve the served port."""
        placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        if self.mode == "process":
            placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        placeholder.bind((self.host, self.requested_port))
        self._placeholder = placeholder
        return int(placeholder.getsockname()[1])

    def start(self) -> "MultiWorkerServer":
        """Bring up every worker; returns once all of them are accepting."""
        if self._port is not None:
            raise RuntimeError("server already started")
        self._board = WorkerStatsBoard.create(self.workers)
        self._lag_dir = tempfile.mkdtemp(prefix="repro-serve-lag-")
        if self.mode == "process":
            self._port = self._reserve_port()
            self._processes = [None] * self.workers
            for worker_id in range(self.workers):
                self._spawn(worker_id)
        else:
            self._start_thread_mode()
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="repro-serve-supervisor", daemon=True
        )
        self._monitor_thread.start()
        return self

    def _spawn(self, worker_id: int) -> None:
        """Start (or restart) one worker process and wait until it accepts."""
        assert self._port is not None and self._board is not None
        parent_end, child_end = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=_serve_worker,
            name=f"repro-serve-worker-{worker_id}",
            args=(
                worker_id,
                self.workers,
                self.store_path,
                self.host,
                self._port,
                self.cache_size,
                self.retention,
                self.archive_dir,
                self._board.path,
                os.getpid(),
                child_end,
                self.auth_token,
                self._lag_dir,
            ),
            daemon=True,
        )
        process.start()
        child_end.close()
        try:
            try:
                if not parent_end.poll(timeout=30):
                    raise RuntimeError(f"worker {worker_id} never reported ready")
                message = parent_end.recv()
            except (EOFError, OSError) as error:
                raise RuntimeError(f"worker {worker_id} died during startup") from error
            finally:
                parent_end.close()
            if message[0] != "ready" or int(message[1]) != self._port:
                raise RuntimeError(f"worker {worker_id} failed to bind: {message!r}")
        except RuntimeError:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5)
            raise
        if self._closing.is_set() or worker_id >= len(self._processes):
            # close() ran while this (re)spawn handshake was in flight --
            # possibly after giving up on joining the monitor thread.  The
            # worker must not outlive the supervisor's teardown.
            process.terminate()
            process.join(timeout=5)
            return
        self._processes[worker_id] = process

    def _start_thread_mode(self) -> None:
        """Fallback: N accept loops over one shared non-blocking listener."""
        assert self._board is not None
        self._port = self._reserve_port()
        listener = self._placeholder
        assert listener is not None
        listener.listen(128)
        listener.setblocking(False)
        self._listener = listener
        for worker_id in range(self.workers):
            store = open_store(
                self.store_path,
                retention=self.retention,
                archive_dir=self.archive_dir,
            )
            service = ClassificationService(
                store,
                cache_size=self.cache_size,
                worker_id=worker_id,
                stats_sink=self._board,
                auth_token=self.auth_token,
                lag_tracker=(
                    FileFollowerLag(self._lag_dir, worker_id)
                    if self._lag_dir is not None
                    else None
                ),
            )
            server = _SharedListenerHTTPServer(listener, build_handler(service))
            self._thread_stores.append(store)
            self._thread_servers.append(server)
            self._accept_threads.append(self._start_accept_loop(worker_id, server))

    def _start_accept_loop(
        self, worker_id: int, server: _SharedListenerHTTPServer
    ) -> threading.Thread:
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=f"repro-serve-worker-{worker_id}",
            daemon=True,
        )
        thread.start()
        return thread

    #: Longest pause between respawn attempts of one crash-looping worker.
    MAX_RESPAWN_BACKOFF = 30.0

    def _monitor(self) -> None:
        """Respawn workers that die, until the supervisor is closing.

        Respawn failures back off exponentially per worker slot (up to
        :data:`MAX_RESPAWN_BACKOFF`): a worker that cannot come up -- say
        the store file was deleted -- must not become a tight fork loop.
        """
        while not self._closing.wait(self.poll_interval):
            if self.mode == "process":
                for worker_id, process in enumerate(self._processes):
                    if self._closing.is_set():
                        return
                    if process is None or process.is_alive():
                        continue
                    next_try, delay = self._respawn_backoff.get(worker_id, (0.0, 0.0))
                    if time.monotonic() < next_try:
                        continue
                    process.join(timeout=1)
                    try:
                        self._spawn(worker_id)
                    except Exception as error:  # noqa: BLE001 - the monitor
                        # must survive *any* spawn failure (OSError from a
                        # fork under resource pressure, a racing teardown),
                        # or respawning is silently disabled forever.
                        self.respawn_failures += 1
                        self.last_respawn_error = str(error)
                        delay = min(self.MAX_RESPAWN_BACKOFF, max(2 * delay, 0.5))
                        self._respawn_backoff[worker_id] = (
                            time.monotonic() + delay,
                            delay,
                        )
                        print(
                            f"repro serve: respawn of worker {worker_id} failed"
                            f" ({error}); retrying in {delay:.1f}s",
                            file=sys.stderr,
                        )
                        continue
                    self._respawn_backoff.pop(worker_id, None)
                    self.respawns += 1
            else:
                for worker_id, thread in enumerate(self._accept_threads):
                    if not thread.is_alive() and not self._closing.is_set():
                        self._accept_threads[worker_id] = self._start_accept_loop(
                            worker_id, self._thread_servers[worker_id]
                        )
                        self.respawns += 1

    def serve_forever(self) -> None:
        """Block the calling thread until :meth:`close` (the CLI path)."""
        self._closing.wait()

    def close(self) -> None:
        """Stop the monitor, tear down every worker, release the port."""
        self._closing.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=5)
            self._monitor_thread = None
        for process in self._processes:
            if process is not None and process.is_alive():
                process.terminate()
        for process in self._processes:
            if process is not None:
                process.join(timeout=5)
        self._processes = []
        for server in self._thread_servers:
            server.shutdown()
        for thread in self._accept_threads:
            thread.join(timeout=5)
        for store in self._thread_stores:
            store.close()
        self._thread_servers = []
        self._accept_threads = []
        self._thread_stores = []
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None
        self._listener = None
        if self._board is not None:
            self._board.close(unlink=True)
            self._board = None
        if self._lag_dir is not None:
            shutil.rmtree(self._lag_dir, ignore_errors=True)
            self._lag_dir = None

    def __enter__(self) -> "MultiWorkerServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
