"""Streaming classification: incremental, windowed, checkpointable inference.

This package turns the batch pipeline into an event-driven engine that keeps
a per-AS community-usage classification continuously up to date over live
BGP update feeds.  See :mod:`repro.stream.engine` for the orchestration and
:mod:`repro.stream.incremental` for the exactness argument.
"""

from repro.stream.checkpoint import CheckpointError, CheckpointManager
from repro.stream.engine import (
    DEFAULT_INGEST_BLOCK_SIZE,
    StreamConfig,
    StreamEngine,
    StreamStats,
    WindowSnapshot,
)
from repro.stream.incremental import (
    IncrementalColumnClassifier,
    IncrementalRowClassifier,
    IncrementalStats,
)
from repro.stream.sharding import ShardRouter, ShardWorker, shard_of
from repro.stream.sources import (
    BlockSource,
    MemorySource,
    MRTReplaySource,
    ScenarioSource,
    iter_event_blocks,
)
from repro.stream.window import ClosedWindow, WindowClock, WindowPolicy, WindowSpec

__all__ = [
    "BlockSource",
    "CheckpointError",
    "CheckpointManager",
    "ClosedWindow",
    "DEFAULT_INGEST_BLOCK_SIZE",
    "IncrementalColumnClassifier",
    "IncrementalRowClassifier",
    "IncrementalStats",
    "MemorySource",
    "MRTReplaySource",
    "ScenarioSource",
    "ShardRouter",
    "ShardWorker",
    "StreamConfig",
    "StreamEngine",
    "StreamStats",
    "WindowClock",
    "WindowPolicy",
    "WindowSnapshot",
    "WindowSpec",
    "iter_event_blocks",
    "shard_of",
]
