"""Durable checkpoint/restore of streaming-engine state.

A long-running classification service must survive restarts without
replaying days of updates.  The engine therefore periodically serialises its
full state — shard dedup sets, window clock, incremental classifier records,
counters — through a :class:`CheckpointManager`:

* checkpoints are written atomically (temp file + ``os.replace``) so a crash
  mid-write never corrupts the latest good checkpoint;
* files are sequence-numbered and pruned to the ``keep`` most recent;
* every checkpoint embeds a format version and is rejected on mismatch.

The payload is Python pickle: every object in the engine state is a plain
data holder from this package, and the checkpoint directory is private to
the operator (the same trust model as a database's WAL directory).
"""

from __future__ import annotations

import os
import pickle
import re
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

#: Bump when the engine state layout changes incompatibly.
CHECKPOINT_VERSION = 1

_FILENAME_RE = re.compile(r"^stream-ckpt-(\d{8})\.pkl$")


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, found, or restored."""


class CheckpointManager:
    """Writes, rotates, and restores engine state snapshots in a directory."""

    def __init__(self, directory: os.PathLike, *, keep: int = 3) -> None:
        if keep < 1:
            raise ValueError(f"must keep at least one checkpoint, got {keep}")
        self.directory = Path(directory)
        self.keep = keep
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- discovery ----------------------------------------------------------------------
    def checkpoints(self) -> List[Path]:
        """All checkpoint files, oldest first."""
        found = []
        for path in self.directory.iterdir():
            match = _FILENAME_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return [path for _, path in sorted(found)]

    def latest(self) -> Optional[Path]:
        """The most recent checkpoint, or ``None`` if there is none."""
        existing = self.checkpoints()
        return existing[-1] if existing else None

    def _next_sequence(self) -> int:
        existing = self.checkpoints()
        if not existing:
            return 1
        return int(_FILENAME_RE.match(existing[-1].name).group(1)) + 1

    # -- write --------------------------------------------------------------------------
    def save(self, state: Dict[str, object]) -> Path:
        """Atomically persist *state* as the newest checkpoint."""
        payload = {"version": CHECKPOINT_VERSION, "state": state}
        sequence = self._next_sequence()
        target = self.directory / f"stream-ckpt-{sequence:08d}.pkl"
        descriptor, temp_name = tempfile.mkstemp(
            prefix=".stream-ckpt-", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, target)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self._prune()
        return target

    def _prune(self) -> None:
        existing = self.checkpoints()
        for stale in existing[: max(0, len(existing) - self.keep)]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - racing cleanup is fine
                pass

    # -- read ---------------------------------------------------------------------------
    def load(self, path: Optional[os.PathLike] = None) -> Dict[str, object]:
        """Load a checkpoint (the latest when *path* is omitted)."""
        target = Path(path) if path is not None else self.latest()
        if target is None:
            raise CheckpointError(f"no checkpoint found in {self.directory}")
        try:
            with open(target, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError) as error:
            raise CheckpointError(f"cannot read checkpoint {target}: {error}") from error
        version = payload.get("version") if isinstance(payload, dict) else None
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {target} has version {version!r}, expected {CHECKPOINT_VERSION}"
            )
        return payload["state"]
