"""The streaming classification engine.

Consumes BGP update events from any :mod:`repro.stream.sources` feed,
shards them across per-partition sanitation workers, folds newly observed
``(path, comm)`` tuples into an incremental classifier, and emits a
:class:`WindowSnapshot` with the up-to-date per-AS classification every time
an event-time window closes.  State is periodically checkpointed so a
restarted engine resumes exactly where it left off.

Invariants the tests pin down:

* **batch equivalence** -- fully draining any feed under the cumulative
  policy yields a classification identical to
  :meth:`repro.core.pipeline.InferencePipeline.run_from_observations` over
  the same events, for any shard count and any event order;
* **checkpoint transparency** -- checkpoint + restore mid-stream and
  continuing produces the same final state as an uninterrupted run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.bgp.announcement import PathCommTuple, RouteObservation
from repro.bgp.asn import ASN, ASNRegistry
from repro.bgp.prefix import PrefixAllocation
from repro.core.column import REPRESENTATIONS
from repro.core.results import ClassificationResult
from repro.core.thresholds import Thresholds
from repro.core.tuples import TupleTable
from repro.sanitize.filters import SanitationConfig, SanitationStats
from repro.stream.checkpoint import CheckpointManager
from repro.stream.incremental import classifier_from_state, make_classifier
from repro.stream.sharding import ShardRouter, shard_of
from repro.stream.sources import iter_event_blocks
from repro.stream.window import ClosedWindow, WindowClock, WindowPolicy, WindowSpec

#: Default event-block size for block-oriented ingest.  Tuned on the stream
#: benchmark: big enough to amortize per-block dispatch (clock advance, shard
#: partition, absorb-loop setup) into the noise, small enough that a block is
#: cache-friendly and window-cut splits stay cheap.
DEFAULT_INGEST_BLOCK_SIZE = 4096

#: Upper bounds of the events-per-block histogram buckets exported through
#: :meth:`StreamEngine.ingest_stats` (the last bucket is unbounded).
INGEST_BLOCK_BUCKETS: Tuple[int, ...] = (1, 8, 64, 512, 4096, 32768)


@dataclass
class StreamConfig:
    """Everything that shapes one streaming engine instance."""

    window: WindowSpec = field(default_factory=WindowSpec)
    shards: int = 1
    algorithm: str = "column"
    thresholds: Thresholds = field(default_factory=Thresholds)
    sanitation: Optional[SanitationConfig] = None
    max_columns: Optional[int] = None
    #: Auto-checkpoint after this many ingested events (None = only manual).
    checkpoint_every: Optional[int] = None
    #: Window snapshots retained in memory.
    max_snapshots: int = 64
    #: Internal data layout: ``"object"`` keeps ``(path, comm)`` objects end
    #: to end; ``"columnar"`` interns them into a shared
    #: :class:`~repro.core.tuples.TupleTable` and counts over packed arrays.
    #: The classification is identical either way.
    representation: str = "object"
    #: Events per ingest block when :meth:`StreamEngine.run` drives a source.
    #: Blocks straddling a window cut are split at the cut, so block size
    #: never changes window boundaries or snapshot contents.
    ingest_block_size: int = DEFAULT_INGEST_BLOCK_SIZE

    def __post_init__(self) -> None:
        if self.algorithm not in ("column", "row"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.representation not in REPRESENTATIONS:
            raise ValueError(f"unknown representation {self.representation!r}")
        if self.shards < 1:
            raise ValueError(f"need at least one shard, got {self.shards}")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.ingest_block_size < 1:
            raise ValueError(
                f"ingest_block_size must be >= 1, got {self.ingest_block_size}"
            )


@dataclass
class StreamStats:
    """Live counters describing what the engine has done so far."""

    events_in: int = 0
    windows_closed: int = 0
    tuples_evicted: int = 0
    checkpoints_written: int = 0
    #: Ingest blocks absorbed (a per-event ``ingest()`` counts as a 1-block).
    blocks_in: int = 0
    #: Events-per-block histogram, one count per :data:`INGEST_BLOCK_BUCKETS`
    #: bound plus a final overflow bucket.
    block_size_buckets: List[int] = field(
        default_factory=lambda: [0] * (len(INGEST_BLOCK_BUCKETS) + 1)
    )

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for reporting."""
        return {
            "events_in": self.events_in,
            "windows_closed": self.windows_closed,
            "tuples_evicted": self.tuples_evicted,
            "checkpoints_written": self.checkpoints_written,
            "blocks_in": self.blocks_in,
        }


@dataclass
class WindowSnapshot:
    """What the engine emits when a window closes."""

    window_start: int
    window_end: int
    #: Empty windows collapsed into this close (quiet feed).
    skipped_windows: int
    events_total: int
    unique_tuples: int
    result: ClassificationResult
    #: ``{asn: (old_code, new_code)}`` relative to the previous snapshot.
    changed: Dict[ASN, Tuple[str, str]]

    def summary(self) -> Dict[str, int]:
        """Flat summary for logging and the CLI."""
        return {
            "window_start": self.window_start,
            "window_end": self.window_end,
            "events_total": self.events_total,
            "unique_tuples": self.unique_tuples,
            "changed_ases": len(self.changed),
            **self.result.summary(),
        }


#: Key identifying a unique ``(path, comm)`` tuple inside the engine.
TupleKey = Tuple


class StreamEngine:
    """Incremental, windowed, checkpointable community-usage classification."""

    def __init__(
        self,
        config: Optional[StreamConfig] = None,
        *,
        asn_registry: Optional[ASNRegistry] = None,
        prefix_allocation: Optional[PrefixAllocation] = None,
        checkpoints: Optional[CheckpointManager] = None,
        on_window: Optional[Callable[[WindowSnapshot], None]] = None,
    ) -> None:
        self.config = config or StreamConfig()
        if (
            self.config.shards > 1
            and self.config.sanitation is not None
            and not self.config.sanitation.prepend_peer_asn
        ):
            # Routing is by the raw observation's peer AS; without peer
            # prepending, identical sanitized tuples could reach different
            # shards and be double-counted against their dedupers.
            raise ValueError(
                "sharding requires SanitationConfig.prepend_peer_asn "
                "(tuple identity must be owned by a single shard)"
            )
        self.checkpoints = checkpoints
        self.on_window = on_window
        self.stats = StreamStats()
        self.snapshots: List[WindowSnapshot] = []
        self._asn_registry = asn_registry
        self._prefix_allocation = prefix_allocation
        # Old checkpoints predate the representation field; default them.
        representation = getattr(self.config, "representation", "object")
        self._table: Optional[TupleTable] = (
            TupleTable() if representation == "columnar" else None
        )
        self.router = ShardRouter(
            self.config.shards,
            asn_registry=asn_registry,
            prefix_allocation=prefix_allocation,
            sanitation=self.config.sanitation,
            table=self._table,
        )
        self.clock = WindowClock(self.config.window)
        self.classifier = make_classifier(
            self.config.algorithm,
            self.config.thresholds,
            max_columns=self.config.max_columns,
            representation=representation,
            table=self._table,
        )
        self._last_codes: Dict[ASN, str] = {}
        #: Sliding policy only: tuple key -> (last observed event time, shard).
        self._last_seen: Dict[TupleKey, Tuple[int, int]] = {}
        self._events_since_checkpoint = 0
        #: Publish progress recorded in the checkpoint this engine was
        #: restored from: the highest window_end a store-attached publisher
        #: had durably confirmed when the checkpoint was written.  ``None``
        #: for fresh engines or checkpoints written without a publisher.
        self.restored_published_through: Optional[int] = None

    # -- convenience views --------------------------------------------------------------
    @property
    def unique_tuples(self) -> int:
        """Unique ``(path, comm)`` tuples currently folded in."""
        return self.router.unique_tuples

    @property
    def late_events(self) -> int:
        """Events that arrived behind the watermark."""
        return self.clock.late_events

    def sanitation_stats(self) -> SanitationStats:
        """Merged sanitation statistics across all shards."""
        return self.router.sanitation_stats()

    def ingest_stats(self) -> Dict[str, object]:
        """Block-path health counters in plain-data (JSON-safe) form.

        This is what the service layer publishes to the snapshot store and
        renders on ``/metrics``: block totals, the events-per-block
        histogram (bounds in :data:`INGEST_BLOCK_BUCKETS`), and the
        sanitation drop counters by reason.
        """
        sanitation = self.sanitation_stats().as_dict()
        return {
            "blocks_total": self.stats.blocks_in,
            "events_total": self.stats.events_in,
            "events_per_block_bounds": list(INGEST_BLOCK_BUCKETS),
            "events_per_block_buckets": list(self.stats.block_size_buckets),
            "dropped": {
                name[len("dropped_") :]: value
                for name, value in sanitation.items()
                if name.startswith("dropped_")
            },
        }

    # -- ingestion ----------------------------------------------------------------------
    def ingest(self, observation: RouteObservation) -> None:
        """Feed one update event into the engine (a one-event block).

        The window clock advances first, so an event whose timestamp crosses
        a window boundary closes (and flushes) that window before the event
        itself is counted into the next one.  This is a thin shim over
        :meth:`ingest_block` kept for API compatibility; feeds that can
        batch should hand the engine whole blocks instead.
        """
        self.ingest_block((observation,))

    def ingest_block(self, events: Sequence[RouteObservation]) -> None:
        """Feed one block of update events into the engine.

        The whole block advances the window clock in a single pass; when a
        block straddles one or more window cuts it is split at each cut —
        events up to the crossing event are absorbed, the window flushes,
        then ingestion continues — so snapshots (and therefore downstream
        publishes) are byte-identical to per-event ingest regardless of
        block size.  Each contiguous span between cuts takes one shard
        partition pass through the router.
        """
        count = len(events)
        if count == 0:
            return
        self._note_block(count)
        if self.checkpoints is not None and self.config.checkpoint_every is not None:
            # Chunk at checkpoint boundaries BEFORE anything sees the block:
            # a mid-block auto checkpoint must capture the clock (watermark,
            # late counts, pending windows) and the shard workers (dedup
            # sets, sanitation stats) covering exactly the events before it,
            # byte-identical to per-event ingest.  Advancing the clock over
            # the whole block first would leak later events' watermark moves
            # into the checkpoint.
            every = self.config.checkpoint_every
            start = 0
            while start < count:
                stop = min(count, start + every - self._events_since_checkpoint)
                if stop <= start:
                    # A deferred checkpoint (an execution layer overriding
                    # _auto_checkpoint) left the counter at the threshold;
                    # absorb the remainder in one span rather than spin.
                    stop = count
                self._ingest_span(
                    events if stop - start == count else events[start:stop]
                )
                start = stop
                if self._events_since_checkpoint >= every:
                    self._auto_checkpoint()
            return
        self._ingest_span(events)

    def _ingest_span(self, events: Sequence[RouteObservation]) -> None:
        """Advance the clock over one span, flushing windows at each cut."""
        closes = self.clock.advance_block([event.timestamp for event in events])
        if not closes:
            self._absorb_span(events)
            return
        start = 0
        for position, closed in closes:
            if position > start:
                self._absorb_span(events[start:position])
            self._flush(closed)
            start = position
        self._absorb_span(events[start:] if start else events)

    def _note_block(self, count: int) -> None:
        """Record one ingested block in the stats histogram."""
        stats = self.stats
        stats.blocks_in += 1
        bucket = 0
        for bound in INGEST_BLOCK_BUCKETS:
            if count <= bound:
                break
            bucket += 1
        stats.block_size_buckets[bucket] += 1

    def _absorb(
        self,
        timestamp: int,
        shard_id: int,
        outcome: Optional[Tuple[TupleKey, Optional[PathCommTuple]]],
    ) -> None:
        """Fold one shard-worker sanitation outcome into the engine state.

        Split out of :meth:`ingest` so execution layers that sanitize
        elsewhere (the multiprocessing batch driver) can feed outcomes back
        in while keeping the clock / window bookkeeping identical.
        """
        self.stats.events_in += 1
        if outcome is not None:
            key, new_tuple = outcome
            if self.config.window.policy is WindowPolicy.SLIDING:
                previous = self._last_seen.get(key)
                # A late out-of-order duplicate must not rewind retention.
                if previous is None or timestamp > previous[0]:
                    self._last_seen[key] = (timestamp, shard_id)
            if new_tuple is not None:
                if self._table is not None:
                    self.classifier.add_ref(new_tuple)
                else:
                    self.classifier.add_tuple(new_tuple)
        self._events_since_checkpoint += 1
        if (
            self.checkpoints is not None
            and self.config.checkpoint_every is not None
            and self._events_since_checkpoint >= self.config.checkpoint_every
        ):
            self._auto_checkpoint()

    def _absorb_span(self, span: Sequence[RouteObservation]) -> None:
        """One shard-partition pass through the router, then a tight absorb.

        The cumulative-window path only needs the newly seen tuples, so it
        takes the router's new-tuples-only pass (no per-event outcome list,
        no scatter, no per-event engine loop).  Sliding windows need every
        kept event's key to refresh retention timestamps and keep the full
        outcome walk.
        """
        if self.config.window.policy is WindowPolicy.SLIDING:
            outcomes = self.router.process_block(span)
            if self._table is not None:
                add = self.classifier.add_ref
            else:
                add = self.classifier.add_tuple
            last_seen = self._last_seen
            shards = len(self.router)
            for observation, outcome in zip(span, outcomes):
                if outcome is not None:
                    key, new_tuple = outcome
                    timestamp = observation.timestamp
                    previous = last_seen.get(key)
                    if previous is None or timestamp > previous[0]:
                        shard_id = (
                            0 if shards == 1 else shard_of(observation.peer_asn, shards)
                        )
                        last_seen[key] = (timestamp, shard_id)
                    if new_tuple is not None:
                        add(new_tuple)
        else:
            news = self.router.process_block_new(span)
            if news:
                if self._table is not None:
                    add = self.classifier.add_ref
                else:
                    add = self.classifier.add_key
                for key in news:
                    add(key)
        self.stats.events_in += len(span)
        self._events_since_checkpoint += len(span)

    def _auto_checkpoint(self) -> None:
        """Periodic checkpoint trigger (overridable by execution layers)."""
        self.checkpoint()

    def run(
        self, source: Iterable[RouteObservation], *, finish: bool = True
    ) -> ClassificationResult:
        """Drain *source* through the engine block by block.

        Sources conforming to :class:`~repro.stream.sources.BlockSource`
        yield their own blocks; plain iterables are chunked.  Block size
        comes from :attr:`StreamConfig.ingest_block_size` and never changes
        the result (window cuts split blocks; see :meth:`ingest_block`).
        """
        block_size = getattr(self.config, "ingest_block_size", DEFAULT_INGEST_BLOCK_SIZE)
        for block in iter_event_blocks(source, block_size):
            self.ingest_block(block)
        if finish:
            return self.finish()
        return self.result()

    def finish(self) -> ClassificationResult:
        """Close the in-progress window and return the final classification."""
        closed = self.clock.close_current()
        if closed is not None:
            self._flush(closed)
        else:
            self.classifier.update()
        return self.classifier.result()

    def result(self) -> ClassificationResult:
        """The classification as of the last window flush."""
        return self.classifier.result()

    # -- window handling ----------------------------------------------------------------
    def _evict_expired(self, cutoff: int) -> None:
        """Sliding policy: drop tuples last observed before *cutoff*."""
        expired = [key for key, (seen, _) in self._last_seen.items() if seen < cutoff]
        if not expired:
            return
        by_shard: Dict[int, List[TupleKey]] = {}
        for key in expired:
            _, shard_id = self._last_seen.pop(key)
            by_shard.setdefault(shard_id, []).append(key)
        self._router_evict(by_shard)
        if self._table is not None:
            # Columnar mode: keys already are interned refs.
            self.classifier.evict_refs(expired, list(self._last_seen))
        else:
            evicted_tuples = [
                PathCommTuple(path, communities) for path, communities in expired
            ]
            remaining = [
                PathCommTuple(path, communities) for path, communities in self._last_seen
            ]
            self.classifier.evict(evicted_tuples, remaining)
        self.stats.tuples_evicted += len(expired)

    def _router_evict(self, by_shard: Dict[int, List[TupleKey]]) -> None:
        """Forget expired keys wherever the shard dedup state lives."""
        self.router.evict(by_shard)

    def _flush(self, closed: ClosedWindow) -> None:
        """Close one window: evict, reclassify, snapshot, notify."""
        if self.config.window.policy is WindowPolicy.SLIDING:
            self._evict_expired(closed.end - self.config.window.effective_horizon)
        result = self.classifier.update()
        changed = result.changed_since(self._last_codes)
        self._last_codes = result.as_code_map()
        snapshot = WindowSnapshot(
            window_start=closed.start,
            window_end=closed.end,
            skipped_windows=closed.skipped,
            events_total=self.stats.events_in,
            unique_tuples=self.unique_tuples,
            result=result,
            changed=changed,
        )
        self.snapshots.append(snapshot)
        if len(self.snapshots) > self.config.max_snapshots:
            del self.snapshots[: len(self.snapshots) - self.config.max_snapshots]
        self.stats.windows_closed += 1
        if self.on_window is not None:
            self.on_window(snapshot)

    # -- checkpointing ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Plain-data snapshot of the complete engine state."""
        return {
            "config": self.config,
            "asn_registry": self._asn_registry,
            "prefix_allocation": self._prefix_allocation,
            # Columnar mode: the shared intern table the classifier state and
            # dedup/retention keys refer into.  ``None`` in object mode.
            "table": self._table.state_dict() if self._table is not None else None,
            "router": self.router.state_dict(),
            "clock": self.clock.state_dict(),
            "classifier": self.classifier.state_dict(),
            "stats": self.stats,
            "last_codes": dict(self._last_codes),
            "last_seen": dict(self._last_seen),
            # Publish progress rides along when a store publisher is the
            # installed on_window callback (duck-typed: the stream layer
            # does not import repro.service).  A resumed run can then tell
            # how far ahead of this checkpoint the store already is.
            "published_through": getattr(self.on_window, "published_through", None),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the engine in place from :meth:`state_dict` output."""
        self.config = state["config"]
        # Sanitation context must survive a restore, or a resumed engine
        # would filter differently than the one that wrote the checkpoint.
        self._asn_registry = state.get("asn_registry")
        self._prefix_allocation = state.get("prefix_allocation")
        # If the checkpoint's representation differs from how this engine was
        # constructed, rebuild the table + router to match before restoring.
        representation = getattr(self.config, "representation", "object")
        if (representation == "columnar") != (self._table is not None):
            self._table = TupleTable() if representation == "columnar" else None
            self.router = ShardRouter(
                self.config.shards,
                asn_registry=self._asn_registry,
                prefix_allocation=self._prefix_allocation,
                sanitation=self.config.sanitation,
                table=self._table,
            )
        # The table loads in place *first*: router dedup keys and the
        # classifier state restored below refer into it, and every holder
        # (workers, classifier) shares this one object.
        if self._table is not None:
            self._table.load_state(state["table"])
        for worker in self.router.workers:
            worker.sanitizer.asn_registry = self._asn_registry
            worker.sanitizer.prefix_allocation = self._prefix_allocation
        self.router.load_state_dict(state["router"])
        self.clock = WindowClock.from_state(state["clock"])
        self.classifier = classifier_from_state(state["classifier"], table=self._table)
        stats = state["stats"]
        # Checkpoints written before block-oriented ingest lack the block
        # counters; default them so a resumed engine keeps counting.
        if not hasattr(stats, "blocks_in"):
            stats.blocks_in = 0
        if not hasattr(stats, "block_size_buckets"):
            stats.block_size_buckets = [0] * (len(INGEST_BLOCK_BUCKETS) + 1)
        self.stats = stats
        self._last_codes = dict(state["last_codes"])
        self._last_seen = dict(state["last_seen"])
        self._events_since_checkpoint = 0
        self.restored_published_through = state.get("published_through")

    def checkpoint(self) -> Optional[os.PathLike]:
        """Persist the current state through the checkpoint manager."""
        if self.checkpoints is None:
            return None
        path = self.checkpoints.save(self.state_dict())
        self.stats.checkpoints_written += 1
        self._events_since_checkpoint = 0
        return path

    @classmethod
    def restore(
        cls,
        checkpoints: Union[CheckpointManager, os.PathLike],
        *,
        on_window: Optional[Callable[[WindowSnapshot], None]] = None,
    ) -> "StreamEngine":
        """Rebuild an engine from the latest checkpoint (or a directory)."""
        manager = (
            checkpoints
            if isinstance(checkpoints, CheckpointManager)
            else CheckpointManager(checkpoints)
        )
        state = manager.load()
        engine = cls(state["config"], checkpoints=manager, on_window=on_window)
        engine.load_state_dict(state)
        return engine
