"""The streaming classification engine.

Consumes BGP update events from any :mod:`repro.stream.sources` feed,
shards them across per-partition sanitation workers, folds newly observed
``(path, comm)`` tuples into an incremental classifier, and emits a
:class:`WindowSnapshot` with the up-to-date per-AS classification every time
an event-time window closes.  State is periodically checkpointed so a
restarted engine resumes exactly where it left off.

Invariants the tests pin down:

* **batch equivalence** -- fully draining any feed under the cumulative
  policy yields a classification identical to
  :meth:`repro.core.pipeline.InferencePipeline.run_from_observations` over
  the same events, for any shard count and any event order;
* **checkpoint transparency** -- checkpoint + restore mid-stream and
  continuing produces the same final state as an uninterrupted run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.bgp.announcement import PathCommTuple, RouteObservation
from repro.bgp.asn import ASN, ASNRegistry
from repro.bgp.prefix import PrefixAllocation
from repro.core.column import REPRESENTATIONS
from repro.core.results import ClassificationResult
from repro.core.thresholds import Thresholds
from repro.core.tuples import TupleTable
from repro.sanitize.filters import SanitationConfig, SanitationStats
from repro.stream.checkpoint import CheckpointManager
from repro.stream.incremental import classifier_from_state, make_classifier
from repro.stream.sharding import ShardRouter
from repro.stream.window import ClosedWindow, WindowClock, WindowPolicy, WindowSpec


@dataclass
class StreamConfig:
    """Everything that shapes one streaming engine instance."""

    window: WindowSpec = field(default_factory=WindowSpec)
    shards: int = 1
    algorithm: str = "column"
    thresholds: Thresholds = field(default_factory=Thresholds)
    sanitation: Optional[SanitationConfig] = None
    max_columns: Optional[int] = None
    #: Auto-checkpoint after this many ingested events (None = only manual).
    checkpoint_every: Optional[int] = None
    #: Window snapshots retained in memory.
    max_snapshots: int = 64
    #: Internal data layout: ``"object"`` keeps ``(path, comm)`` objects end
    #: to end; ``"columnar"`` interns them into a shared
    #: :class:`~repro.core.tuples.TupleTable` and counts over packed arrays.
    #: The classification is identical either way.
    representation: str = "object"

    def __post_init__(self) -> None:
        if self.algorithm not in ("column", "row"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.representation not in REPRESENTATIONS:
            raise ValueError(f"unknown representation {self.representation!r}")
        if self.shards < 1:
            raise ValueError(f"need at least one shard, got {self.shards}")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")


@dataclass
class StreamStats:
    """Live counters describing what the engine has done so far."""

    events_in: int = 0
    windows_closed: int = 0
    tuples_evicted: int = 0
    checkpoints_written: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for reporting."""
        return {
            "events_in": self.events_in,
            "windows_closed": self.windows_closed,
            "tuples_evicted": self.tuples_evicted,
            "checkpoints_written": self.checkpoints_written,
        }


@dataclass
class WindowSnapshot:
    """What the engine emits when a window closes."""

    window_start: int
    window_end: int
    #: Empty windows collapsed into this close (quiet feed).
    skipped_windows: int
    events_total: int
    unique_tuples: int
    result: ClassificationResult
    #: ``{asn: (old_code, new_code)}`` relative to the previous snapshot.
    changed: Dict[ASN, Tuple[str, str]]

    def summary(self) -> Dict[str, int]:
        """Flat summary for logging and the CLI."""
        return {
            "window_start": self.window_start,
            "window_end": self.window_end,
            "events_total": self.events_total,
            "unique_tuples": self.unique_tuples,
            "changed_ases": len(self.changed),
            **self.result.summary(),
        }


#: Key identifying a unique ``(path, comm)`` tuple inside the engine.
TupleKey = Tuple


class StreamEngine:
    """Incremental, windowed, checkpointable community-usage classification."""

    def __init__(
        self,
        config: Optional[StreamConfig] = None,
        *,
        asn_registry: Optional[ASNRegistry] = None,
        prefix_allocation: Optional[PrefixAllocation] = None,
        checkpoints: Optional[CheckpointManager] = None,
        on_window: Optional[Callable[[WindowSnapshot], None]] = None,
    ) -> None:
        self.config = config or StreamConfig()
        if (
            self.config.shards > 1
            and self.config.sanitation is not None
            and not self.config.sanitation.prepend_peer_asn
        ):
            # Routing is by the raw observation's peer AS; without peer
            # prepending, identical sanitized tuples could reach different
            # shards and be double-counted against their dedupers.
            raise ValueError(
                "sharding requires SanitationConfig.prepend_peer_asn "
                "(tuple identity must be owned by a single shard)"
            )
        self.checkpoints = checkpoints
        self.on_window = on_window
        self.stats = StreamStats()
        self.snapshots: List[WindowSnapshot] = []
        self._asn_registry = asn_registry
        self._prefix_allocation = prefix_allocation
        # Old checkpoints predate the representation field; default them.
        representation = getattr(self.config, "representation", "object")
        self._table: Optional[TupleTable] = (
            TupleTable() if representation == "columnar" else None
        )
        self.router = ShardRouter(
            self.config.shards,
            asn_registry=asn_registry,
            prefix_allocation=prefix_allocation,
            sanitation=self.config.sanitation,
            table=self._table,
        )
        self.clock = WindowClock(self.config.window)
        self.classifier = make_classifier(
            self.config.algorithm,
            self.config.thresholds,
            max_columns=self.config.max_columns,
            representation=representation,
            table=self._table,
        )
        self._last_codes: Dict[ASN, str] = {}
        #: Sliding policy only: tuple key -> (last observed event time, shard).
        self._last_seen: Dict[TupleKey, Tuple[int, int]] = {}
        self._events_since_checkpoint = 0
        #: Publish progress recorded in the checkpoint this engine was
        #: restored from: the highest window_end a store-attached publisher
        #: had durably confirmed when the checkpoint was written.  ``None``
        #: for fresh engines or checkpoints written without a publisher.
        self.restored_published_through: Optional[int] = None

    # -- convenience views --------------------------------------------------------------
    @property
    def unique_tuples(self) -> int:
        """Unique ``(path, comm)`` tuples currently folded in."""
        return self.router.unique_tuples

    @property
    def late_events(self) -> int:
        """Events that arrived behind the watermark."""
        return self.clock.late_events

    def sanitation_stats(self) -> SanitationStats:
        """Merged sanitation statistics across all shards."""
        return self.router.sanitation_stats()

    # -- ingestion ----------------------------------------------------------------------
    def ingest(self, observation: RouteObservation) -> None:
        """Feed one update event into the engine.

        The window clock advances first, so an event whose timestamp crosses
        a window boundary closes (and flushes) that window before the event
        itself is counted into the next one.
        """
        closed = self.clock.advance(observation.timestamp)
        if closed is not None:
            self._flush(closed)
        worker = self.router.worker_for(observation)
        self._absorb(observation.timestamp, worker.shard_id, worker.process(observation))

    def _absorb(
        self,
        timestamp: int,
        shard_id: int,
        outcome: Optional[Tuple[TupleKey, Optional[PathCommTuple]]],
    ) -> None:
        """Fold one shard-worker sanitation outcome into the engine state.

        Split out of :meth:`ingest` so execution layers that sanitize
        elsewhere (the multiprocessing batch driver) can feed outcomes back
        in while keeping the clock / window bookkeeping identical.
        """
        self.stats.events_in += 1
        if outcome is not None:
            key, new_tuple = outcome
            if self.config.window.policy is WindowPolicy.SLIDING:
                previous = self._last_seen.get(key)
                # A late out-of-order duplicate must not rewind retention.
                if previous is None or timestamp > previous[0]:
                    self._last_seen[key] = (timestamp, shard_id)
            if new_tuple is not None:
                if self._table is not None:
                    self.classifier.add_ref(new_tuple)
                else:
                    self.classifier.add_tuple(new_tuple)
        self._events_since_checkpoint += 1
        if (
            self.checkpoints is not None
            and self.config.checkpoint_every is not None
            and self._events_since_checkpoint >= self.config.checkpoint_every
        ):
            self._auto_checkpoint()

    def _auto_checkpoint(self) -> None:
        """Periodic checkpoint trigger (overridable by execution layers)."""
        self.checkpoint()

    def run(
        self, source: Iterable[RouteObservation], *, finish: bool = True
    ) -> ClassificationResult:
        """Drain *source* through the engine; returns the final result."""
        for observation in source:
            self.ingest(observation)
        if finish:
            return self.finish()
        return self.result()

    def finish(self) -> ClassificationResult:
        """Close the in-progress window and return the final classification."""
        closed = self.clock.close_current()
        if closed is not None:
            self._flush(closed)
        else:
            self.classifier.update()
        return self.classifier.result()

    def result(self) -> ClassificationResult:
        """The classification as of the last window flush."""
        return self.classifier.result()

    # -- window handling ----------------------------------------------------------------
    def _evict_expired(self, cutoff: int) -> None:
        """Sliding policy: drop tuples last observed before *cutoff*."""
        expired = [key for key, (seen, _) in self._last_seen.items() if seen < cutoff]
        if not expired:
            return
        by_shard: Dict[int, List[TupleKey]] = {}
        for key in expired:
            _, shard_id = self._last_seen.pop(key)
            by_shard.setdefault(shard_id, []).append(key)
        self._router_evict(by_shard)
        if self._table is not None:
            # Columnar mode: keys already are interned refs.
            self.classifier.evict_refs(expired, list(self._last_seen))
        else:
            evicted_tuples = [
                PathCommTuple(path, communities) for path, communities in expired
            ]
            remaining = [
                PathCommTuple(path, communities) for path, communities in self._last_seen
            ]
            self.classifier.evict(evicted_tuples, remaining)
        self.stats.tuples_evicted += len(expired)

    def _router_evict(self, by_shard: Dict[int, List[TupleKey]]) -> None:
        """Forget expired keys wherever the shard dedup state lives."""
        self.router.evict(by_shard)

    def _flush(self, closed: ClosedWindow) -> None:
        """Close one window: evict, reclassify, snapshot, notify."""
        if self.config.window.policy is WindowPolicy.SLIDING:
            self._evict_expired(closed.end - self.config.window.effective_horizon)
        result = self.classifier.update()
        changed = result.changed_since(self._last_codes)
        self._last_codes = result.as_code_map()
        snapshot = WindowSnapshot(
            window_start=closed.start,
            window_end=closed.end,
            skipped_windows=closed.skipped,
            events_total=self.stats.events_in,
            unique_tuples=self.unique_tuples,
            result=result,
            changed=changed,
        )
        self.snapshots.append(snapshot)
        if len(self.snapshots) > self.config.max_snapshots:
            del self.snapshots[: len(self.snapshots) - self.config.max_snapshots]
        self.stats.windows_closed += 1
        if self.on_window is not None:
            self.on_window(snapshot)

    # -- checkpointing ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Plain-data snapshot of the complete engine state."""
        return {
            "config": self.config,
            "asn_registry": self._asn_registry,
            "prefix_allocation": self._prefix_allocation,
            # Columnar mode: the shared intern table the classifier state and
            # dedup/retention keys refer into.  ``None`` in object mode.
            "table": self._table.state_dict() if self._table is not None else None,
            "router": self.router.state_dict(),
            "clock": self.clock.state_dict(),
            "classifier": self.classifier.state_dict(),
            "stats": self.stats,
            "last_codes": dict(self._last_codes),
            "last_seen": dict(self._last_seen),
            # Publish progress rides along when a store publisher is the
            # installed on_window callback (duck-typed: the stream layer
            # does not import repro.service).  A resumed run can then tell
            # how far ahead of this checkpoint the store already is.
            "published_through": getattr(self.on_window, "published_through", None),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the engine in place from :meth:`state_dict` output."""
        self.config = state["config"]
        # Sanitation context must survive a restore, or a resumed engine
        # would filter differently than the one that wrote the checkpoint.
        self._asn_registry = state.get("asn_registry")
        self._prefix_allocation = state.get("prefix_allocation")
        # If the checkpoint's representation differs from how this engine was
        # constructed, rebuild the table + router to match before restoring.
        representation = getattr(self.config, "representation", "object")
        if (representation == "columnar") != (self._table is not None):
            self._table = TupleTable() if representation == "columnar" else None
            self.router = ShardRouter(
                self.config.shards,
                asn_registry=self._asn_registry,
                prefix_allocation=self._prefix_allocation,
                sanitation=self.config.sanitation,
                table=self._table,
            )
        # The table loads in place *first*: router dedup keys and the
        # classifier state restored below refer into it, and every holder
        # (workers, classifier) shares this one object.
        if self._table is not None:
            self._table.load_state(state["table"])
        for worker in self.router.workers:
            worker.sanitizer.asn_registry = self._asn_registry
            worker.sanitizer.prefix_allocation = self._prefix_allocation
        self.router.load_state_dict(state["router"])
        self.clock = WindowClock.from_state(state["clock"])
        self.classifier = classifier_from_state(state["classifier"], table=self._table)
        self.stats = state["stats"]
        self._last_codes = dict(state["last_codes"])
        self._last_seen = dict(state["last_seen"])
        self._events_since_checkpoint = 0
        self.restored_published_through = state.get("published_through")

    def checkpoint(self) -> Optional[os.PathLike]:
        """Persist the current state through the checkpoint manager."""
        if self.checkpoints is None:
            return None
        path = self.checkpoints.save(self.state_dict())
        self.stats.checkpoints_written += 1
        self._events_since_checkpoint = 0
        return path

    @classmethod
    def restore(
        cls,
        checkpoints: Union[CheckpointManager, os.PathLike],
        *,
        on_window: Optional[Callable[[WindowSnapshot], None]] = None,
    ) -> "StreamEngine":
        """Rebuild an engine from the latest checkpoint (or a directory)."""
        manager = (
            checkpoints
            if isinstance(checkpoints, CheckpointManager)
            else CheckpointManager(checkpoints)
        )
        state = manager.load()
        engine = cls(state["config"], checkpoints=manager, on_window=on_window)
        engine.load_state_dict(state)
        return engine
