"""Incremental (streaming) versions of the inference algorithms.

The batch :class:`~repro.core.column.ColumnInference` recounts every tuple on
every run.  The streaming engine cannot afford that: updates arrive
continuously and windows close every few seconds.  The classifiers here keep
enough per-phase state to fold newly arrived tuples into an existing
classification and only fall back to recounting when the *knowledge* the
algorithm relies on actually changed.

The key observation (see :mod:`repro.core.column`) is that every counting
phase is a pure function of ``(tuple set, DecisionView)``:

* if the decision view of a phase is **unchanged** since the last update,
  all previously counted tuples contribute exactly the same deltas, so only
  the tuples that arrived since then need to be counted (``O(new)``);
* if it **changed**, the phase is recounted over the full tuple set and the
  fresh deltas replace the recorded ones.

Because phase contributions are commutative sums, the result is *provably
identical* to a batch run over the same tuples, independent of arrival
order or sharding — the property the streaming equivalence tests pin down.

The row-based baseline is embarrassingly incremental: every tuple's
contribution is independent of all counters, so tuples can be added *and
retracted* with exact per-tuple deltas (no recounts, ever).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.announcement import PathCommTuple
from repro.bgp.asn import ASN
from repro.core.column import (
    ColumnInferenceReport,
    PhaseDelta,
    PreparedTuple,
    count_forwarding_phase,
    count_forwarding_phase_packed,
    count_tagging_phase,
    count_tagging_phase_packed,
    merge_phase_delta,
    prepare_tuple,
)
from repro.core.counters import CounterStore, DecisionView, PackedCounterStore
from repro.core.results import ClassificationResult
from repro.core.row import row_group_delta_packed, row_tuple_delta
from repro.core.thresholds import Thresholds
from repro.core.tuples import (
    CountingGroup,
    GroupCounts,
    TupleRef,
    TupleTable,
    materialize_groups,
    merge_group_counts,
)


@dataclass
class PhaseRecord:
    """Memoised outcome of one counting phase (one column, one pass).

    ``delta`` holds the summed per-AS contributions of *all* tuples counted
    under ``decisions``; ``increments`` is the total number of counter
    increments (the stall signal of the column loop).
    """

    decisions: DecisionView
    delta: PhaseDelta
    increments: int


@dataclass
class IncrementalStats:
    """Telemetry proving (or disproving) that updates stay incremental."""

    updates: int = 0
    tuples_added: int = 0
    #: Phases folded in by counting only newly arrived tuples.
    delta_phases: int = 0
    #: Phases recounted over the full tuple set (knowledge changed).
    recount_phases: int = 0
    #: Full rebuilds (window eviction invalidates all phase records).
    resets: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for reporting."""
        return {
            "updates": self.updates,
            "tuples_added": self.tuples_added,
            "delta_phases": self.delta_phases,
            "recount_phases": self.recount_phases,
            "resets": self.resets,
        }


class IncrementalColumnClassifier:
    """Maintains a column-inference classification under tuple arrivals.

    Usage: :meth:`add_tuple` newly deduplicated tuples as they arrive, then
    :meth:`update` at every window boundary to obtain a
    :class:`ClassificationResult` identical to a batch
    :class:`~repro.core.column.ColumnInference` run over all tuples so far.
    """

    algorithm = "column"
    representation = "object"

    def __init__(
        self,
        thresholds: Optional[Thresholds] = None,
        *,
        max_columns: Optional[int] = None,
        stop_when_stalled: bool = True,
    ) -> None:
        self.thresholds = thresholds or Thresholds()
        self.max_columns = max_columns
        self.stop_when_stalled = stop_when_stalled
        self.stats = IncrementalStats()
        self.report = ColumnInferenceReport()
        self._prepared: List[PreparedTuple] = []
        self._pending: List[PreparedTuple] = []
        self._observed: Set[ASN] = set()
        self._max_length = 0
        self._tagging_records: List[PhaseRecord] = []
        self._forwarding_records: List[PhaseRecord] = []
        self._store = CounterStore(self.thresholds)

    # -- ingestion ---------------------------------------------------------------------
    @property
    def tuple_count(self) -> int:
        """Number of unique tuples currently folded in (incl. pending)."""
        return len(self._prepared) + len(self._pending)

    def add_tuple(self, item: PathCommTuple) -> None:
        """Queue one new unique tuple for the next :meth:`update`."""
        prepared = prepare_tuple(item)
        asns = prepared[0]
        self._observed.update(asns)
        if len(asns) > self._max_length:
            self._max_length = len(asns)
        self._pending.append(prepared)
        self.stats.tuples_added += 1

    def add_key(self, key: Tuple) -> None:
        """Queue one new unique tuple given as a raw ``(path, comm)`` pair.

        Identical to :meth:`add_tuple` without the intermediate
        :class:`PathCommTuple` construction — the shard workers' dedup key
        already carries both fields, so block ingest hands it over directly.
        """
        path, communities = key
        asns = path.asns
        self._observed.update(asns)
        if len(asns) > self._max_length:
            self._max_length = len(asns)
        self._pending.append((asns, communities.upper_fields()))
        self.stats.tuples_added += 1

    def add_tuples(self, items: Iterable[PathCommTuple]) -> None:
        """Queue many new unique tuples."""
        for item in items:
            self.add_tuple(item)

    def evict(
        self,
        evicted: Sequence[PathCommTuple],
        remaining: Iterable[PathCommTuple],
    ) -> None:
        """Drop expired tuples (sliding windows).

        Column knowledge is not separable per tuple, so eviction invalidates
        every phase record; the next :meth:`update` recounts the remaining
        tuples from scratch.
        """
        if not evicted:
            return
        self._prepared = []
        self._pending = []
        self._observed = set()
        self._max_length = 0
        self._tagging_records = []
        self._forwarding_records = []
        self.stats.resets += 1
        added_before = self.stats.tuples_added
        self.add_tuples(remaining)
        self.stats.tuples_added = added_before  # re-adds are not arrivals

    # -- classification -----------------------------------------------------------------
    def _run_phase(
        self,
        records: List[PhaseRecord],
        count_phase,
        pending: Sequence[PreparedTuple],
        column: int,
        store: CounterStore,
    ) -> PhaseRecord:
        """Bring one phase record up to date and return it."""
        index = column - 1
        decisions = store.decision_view()
        record = records[index] if index < len(records) else None
        if record is not None and record.decisions == decisions:
            if pending:
                delta, increments = count_phase(pending, column, decisions)
                merge_phase_delta(record.delta, delta)
                record.increments += increments
            self.stats.delta_phases += 1
        else:
            delta, increments = count_phase(self._prepared, column, decisions)
            record = PhaseRecord(decisions=decisions, delta=delta, increments=increments)
            if index < len(records):
                records[index] = record
            else:
                records.append(record)
            self.stats.recount_phases += 1
        return record

    def update(self) -> ClassificationResult:
        """Fold pending tuples in and return the up-to-date classification."""
        pending = self._pending
        self._pending = []
        self._prepared.extend(pending)

        store = CounterStore(self.thresholds)
        report = ColumnInferenceReport()
        limit = (
            self._max_length
            if self.max_columns is None
            else min(self._max_length, self.max_columns)
        )
        for column in range(1, limit + 1):
            tagging = self._run_phase(
                self._tagging_records, count_tagging_phase, pending, column, store
            )
            store.apply_tagging_delta(tagging.delta)
            forwarding = self._run_phase(
                self._forwarding_records, count_forwarding_phase, pending, column, store
            )
            store.apply_forwarding_delta(forwarding.delta)
            report.columns_processed = column
            report.tagging_counts_per_column.append(tagging.increments)
            report.forwarding_counts_per_column.append(forwarding.increments)
            if (
                self.stop_when_stalled
                and column > 1
                and tagging.increments == 0
                and forwarding.increments == 0
            ):
                # A batch run would stop here; records beyond this column are
                # stale leftovers from a previous, shorter-stalling run.
                del self._tagging_records[column:]
                del self._forwarding_records[column:]
                break

        self._store = store
        self.report = report
        self.stats.updates += 1
        return self.result()

    def result(self) -> ClassificationResult:
        """The classification as of the last :meth:`update`."""
        return ClassificationResult(
            store=self._store, observed_ases=set(self._observed), algorithm="column"
        )

    # -- checkpointing ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Plain-data snapshot of the full classifier state."""
        return {
            "algorithm": self.algorithm,
            "representation": self.representation,
            "thresholds": self.thresholds,
            "max_columns": self.max_columns,
            "stop_when_stalled": self.stop_when_stalled,
            "prepared": list(self._prepared),
            "pending": list(self._pending),
            "observed": set(self._observed),
            "max_length": self._max_length,
            "tagging_records": self._tagging_records,
            "forwarding_records": self._forwarding_records,
            "store": self._store.state_dict(),
            "stats": self.stats,
            "report": self.report,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "IncrementalColumnClassifier":
        """Rebuild a classifier from :meth:`state_dict` output."""
        classifier = cls(
            state["thresholds"],
            max_columns=state["max_columns"],
            stop_when_stalled=state["stop_when_stalled"],
        )
        classifier._prepared = list(state["prepared"])
        classifier._pending = list(state["pending"])
        classifier._observed = set(state["observed"])
        classifier._max_length = state["max_length"]
        classifier._tagging_records = list(state["tagging_records"])
        classifier._forwarding_records = list(state["forwarding_records"])
        classifier._store = CounterStore.from_state(state["store"], classifier.thresholds)
        classifier.stats = state["stats"]
        classifier.report = state["report"]
        return classifier


class IncrementalRowClassifier:
    """Streaming version of the row-based baseline.

    Row counting is per-tuple independent, so arrivals *and* retractions are
    exact counter deltas — the cheapest possible streaming update.
    """

    algorithm = "row"
    representation = "object"

    def __init__(self, thresholds: Optional[Thresholds] = None, **_ignored) -> None:
        self.thresholds = thresholds or Thresholds()
        self.stats = IncrementalStats()
        self._store = CounterStore(self.thresholds)
        self._observed: Set[ASN] = set()
        self._tuple_count = 0

    # -- ingestion ---------------------------------------------------------------------
    @property
    def tuple_count(self) -> int:
        """Number of unique tuples currently folded in."""
        return self._tuple_count

    def add_tuple(self, item: PathCommTuple) -> None:
        """Fold one new unique tuple into the counters immediately."""
        prepared = prepare_tuple(item)
        self._observed.update(prepared[0])
        self._store.apply_delta(row_tuple_delta(prepared))
        self._tuple_count += 1
        self.stats.tuples_added += 1
        self.stats.delta_phases += 1

    def add_key(self, key: Tuple) -> None:
        """Fold one new unique tuple given as a raw ``(path, comm)`` pair."""
        path, communities = key
        prepared = (path.asns, communities.upper_fields())
        self._observed.update(prepared[0])
        self._store.apply_delta(row_tuple_delta(prepared))
        self._tuple_count += 1
        self.stats.tuples_added += 1
        self.stats.delta_phases += 1

    def add_tuples(self, items: Iterable[PathCommTuple]) -> None:
        """Fold many new unique tuples."""
        for item in items:
            self.add_tuple(item)

    def evict(
        self,
        evicted: Sequence[PathCommTuple],
        remaining: Iterable[PathCommTuple],
    ) -> None:
        """Retract expired tuples with exact negative deltas."""
        observed: Set[ASN] = set()
        for item in evicted:
            prepared = prepare_tuple(item)
            negated = {
                asn: [-a, -b, -c, -d]
                for asn, (a, b, c, d) in row_tuple_delta(prepared).items()
            }
            self._store.apply_delta(negated)
            self._tuple_count -= 1
        self._store.prune_zeros()
        for item in remaining:
            observed.update(item.path.asns)
        self._observed = observed

    # -- classification -----------------------------------------------------------------
    def update(self) -> ClassificationResult:
        """Return the up-to-date classification (counters are always live)."""
        self.stats.updates += 1
        return self.result()

    def result(self) -> ClassificationResult:
        """The current classification as an immutable snapshot."""
        snapshot = CounterStore.from_state(self._store.state_dict(), self.thresholds)
        return ClassificationResult(
            store=snapshot, observed_ases=set(self._observed), algorithm="row"
        )

    # -- checkpointing ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Plain-data snapshot of the full classifier state."""
        return {
            "algorithm": self.algorithm,
            "representation": self.representation,
            "thresholds": self.thresholds,
            "store": self._store.state_dict(),
            "observed": set(self._observed),
            "tuple_count": self._tuple_count,
            "stats": self.stats,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "IncrementalRowClassifier":
        """Rebuild a classifier from :meth:`state_dict` output."""
        classifier = cls(state["thresholds"])
        classifier._store = CounterStore.from_state(state["store"], classifier.thresholds)
        classifier._observed = set(state["observed"])
        classifier._tuple_count = state["tuple_count"]
        classifier.stats = state["stats"]
        return classifier


@dataclass
class PackedPhaseRecord:
    """Columnar twin of :class:`PhaseRecord`.

    ``decisions`` is the pair of per-AS-index decision flag vectors with
    trailing zeros stripped: two snapshots are equal iff they set the same
    flag for the same AS, regardless of how many ASes the shared tuple
    table interned in between (new ASes have no evidence, hence zero
    flags — exactly what the stripped encoding makes implicit).
    """

    decisions: "tuple[bytes, bytes]"
    delta: Dict[int, List[int]]
    increments: int


def _strip_flags(tagger_flags: bytearray, forward_flags: bytearray) -> "tuple[bytes, bytes]":
    """Growth-invariant equality key of a decision flag snapshot."""
    return (bytes(tagger_flags).rstrip(b"\x00"), bytes(forward_flags).rstrip(b"\x00"))


class ColumnarColumnClassifier:
    """Columnar twin of :class:`IncrementalColumnClassifier`.

    Tuples are held as ``(path_id, hits) -> multiplicity`` aggregates
    against a (usually engine-shared) :class:`TupleTable`; phases run the
    packed kernels over grouped work units and the per-phase memoisation
    compares packed decision flags instead of frozenset views.  Output is
    byte-identical to the object classifier — the conformance property
    tests pin both against the batch oracle.
    """

    algorithm = "column"
    representation = "columnar"

    def __init__(
        self,
        thresholds: Optional[Thresholds] = None,
        *,
        max_columns: Optional[int] = None,
        stop_when_stalled: bool = True,
        table: Optional[TupleTable] = None,
    ) -> None:
        self.thresholds = thresholds or Thresholds()
        self.max_columns = max_columns
        self.stop_when_stalled = stop_when_stalled
        self.stats = IncrementalStats()
        self.report = ColumnInferenceReport()
        self.table = table if table is not None else TupleTable()
        self._groups: GroupCounts = {}
        self._pending_groups: GroupCounts = {}
        self._counted_cache: Optional[List[CountingGroup]] = None
        self._counted_tuples = 0
        self._pending_tuples = 0
        self._observed: Set[ASN] = set()
        self._max_length = 0
        self._tagging_records: List[PackedPhaseRecord] = []
        self._forwarding_records: List[PackedPhaseRecord] = []
        self._packed = PackedCounterStore(self.thresholds)
        self._store = CounterStore(self.thresholds)

    # -- ingestion ---------------------------------------------------------------------
    @property
    def tuple_count(self) -> int:
        """Number of unique tuples currently folded in (incl. pending)."""
        return self._counted_tuples + self._pending_tuples

    def add_ref(self, ref: TupleRef) -> None:
        """Queue one interned unique tuple for the next :meth:`update`."""
        path_id = ref[0]
        key = (path_id, self.table.hits_of(path_id, ref[1]))
        count = self._pending_groups.get(key)
        self._pending_groups[key] = 1 if count is None else count + 1
        asns = self.table.path_asns_of(path_id)
        self._observed.update(asns)
        if len(asns) > self._max_length:
            self._max_length = len(asns)
        self._pending_tuples += 1
        self.stats.tuples_added += 1

    def add_tuple(self, item: PathCommTuple) -> None:
        """Intern and queue one new unique tuple."""
        self.add_ref(self.table.intern_tuple(item))

    def add_tuples(self, items: Iterable[PathCommTuple]) -> None:
        """Intern and queue many new unique tuples."""
        for item in items:
            self.add_tuple(item)

    def evict_refs(
        self, evicted: Sequence[TupleRef], remaining: Iterable[TupleRef]
    ) -> None:
        """Drop expired tuples (sliding windows); invalidates all records."""
        if not evicted:
            return
        self._groups = {}
        self._pending_groups = {}
        self._counted_cache = None
        self._counted_tuples = 0
        self._pending_tuples = 0
        self._observed = set()
        self._max_length = 0
        self._tagging_records = []
        self._forwarding_records = []
        self.stats.resets += 1
        added_before = self.stats.tuples_added
        for ref in remaining:
            self.add_ref(ref)
        self.stats.tuples_added = added_before  # re-adds are not arrivals

    def evict(
        self, evicted: Sequence[PathCommTuple], remaining: Iterable[PathCommTuple]
    ) -> None:
        """Object-tuple eviction entry point (interns, then defers)."""
        self.evict_refs(
            [self.table.intern_tuple(item) for item in evicted],
            (self.table.intern_tuple(item) for item in remaining),
        )

    # -- classification -----------------------------------------------------------------
    def _counted_groups(self) -> List[CountingGroup]:
        cache = self._counted_cache
        if cache is None:
            cache = self._counted_cache = materialize_groups(self.table, self._groups)
        return cache

    def _run_phase(
        self,
        records: List[PackedPhaseRecord],
        count_phase,
        pending: Sequence[CountingGroup],
        column: int,
        packed: PackedCounterStore,
    ) -> PackedPhaseRecord:
        """Bring one phase record up to date and return it."""
        index = column - 1
        tagger_flags, forward_flags = packed.decision_flags(self.table.as_count)
        decisions = _strip_flags(tagger_flags, forward_flags)
        record = records[index] if index < len(records) else None
        if record is not None and record.decisions == decisions:
            if pending:
                delta, increments = count_phase(pending, column, tagger_flags, forward_flags)
                merge_phase_delta(record.delta, delta)
                record.increments += increments
            self.stats.delta_phases += 1
        else:
            delta, increments = count_phase(
                self._counted_groups(), column, tagger_flags, forward_flags
            )
            record = PackedPhaseRecord(decisions=decisions, delta=delta, increments=increments)
            if index < len(records):
                records[index] = record
            else:
                records.append(record)
            self.stats.recount_phases += 1
        return record

    def update(self) -> ClassificationResult:
        """Fold pending tuples in and return the up-to-date classification."""
        pending_counts = self._pending_groups
        self._pending_groups = {}
        pending = (
            materialize_groups(self.table, pending_counts) if pending_counts else []
        )
        if pending_counts:
            merge_group_counts(self._groups, pending_counts)
            cache = self._counted_cache
            if cache is not None:
                # Fold the pending groups (and their matrix buckets) into the
                # cached kernel form instead of rebuilding it from scratch.
                # Appended rows may duplicate keys already counted — kernel
                # sums commute, so that is equivalent to merged counts.
                cache.extend_merged(pending)
        self._counted_tuples += self._pending_tuples
        self._pending_tuples = 0

        packed = PackedCounterStore(self.thresholds)
        report = ColumnInferenceReport()
        limit = (
            self._max_length
            if self.max_columns is None
            else min(self._max_length, self.max_columns)
        )
        for column in range(1, limit + 1):
            tagging = self._run_phase(
                self._tagging_records, count_tagging_phase_packed, pending, column, packed
            )
            packed.apply_tagging_delta(tagging.delta)
            forwarding = self._run_phase(
                self._forwarding_records, count_forwarding_phase_packed, pending, column, packed
            )
            packed.apply_forwarding_delta(forwarding.delta)
            report.columns_processed = column
            report.tagging_counts_per_column.append(tagging.increments)
            report.forwarding_counts_per_column.append(forwarding.increments)
            if (
                self.stop_when_stalled
                and column > 1
                and tagging.increments == 0
                and forwarding.increments == 0
            ):
                # A batch run would stop here; records beyond this column are
                # stale leftovers from a previous, shorter-stalling run.
                del self._tagging_records[column:]
                del self._forwarding_records[column:]
                break

        self._packed = packed
        self._store = packed.to_store(self.table.as_values())
        self.report = report
        self.stats.updates += 1
        return self.result()

    def result(self) -> ClassificationResult:
        """The classification as of the last :meth:`update`."""
        return ClassificationResult(
            store=self._store, observed_ases=set(self._observed), algorithm="column"
        )

    # -- checkpointing ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Plain-data snapshot (ids are relative to the shared table)."""
        return {
            "algorithm": self.algorithm,
            "representation": self.representation,
            "thresholds": self.thresholds,
            "max_columns": self.max_columns,
            "stop_when_stalled": self.stop_when_stalled,
            "groups": dict(self._groups),
            "pending_groups": dict(self._pending_groups),
            "counted_tuples": self._counted_tuples,
            "pending_tuples": self._pending_tuples,
            "observed": set(self._observed),
            "max_length": self._max_length,
            "tagging_records": list(self._tagging_records),
            "forwarding_records": list(self._forwarding_records),
            "store_arrays": self._packed.arrays_state(),
            "stats": self.stats,
            "report": self.report,
        }

    @classmethod
    def from_state(
        cls, state: Dict[str, object], table: TupleTable
    ) -> "ColumnarColumnClassifier":
        """Rebuild against the restored table the ids were minted by."""
        classifier = cls(
            state["thresholds"],
            max_columns=state["max_columns"],
            stop_when_stalled=state["stop_when_stalled"],
            table=table,
        )
        classifier._groups = dict(state["groups"])
        classifier._pending_groups = dict(state["pending_groups"])
        classifier._counted_tuples = state["counted_tuples"]
        classifier._pending_tuples = state["pending_tuples"]
        classifier._observed = set(state["observed"])
        classifier._max_length = state["max_length"]
        classifier._tagging_records = list(state["tagging_records"])
        classifier._forwarding_records = list(state["forwarding_records"])
        classifier._packed = PackedCounterStore.from_arrays_state(
            state["store_arrays"], classifier.thresholds
        )
        classifier._store = classifier._packed.to_store(table.as_values())
        classifier.stats = state["stats"]
        classifier.report = state["report"]
        return classifier


class ColumnarRowClassifier:
    """Columnar twin of :class:`IncrementalRowClassifier`.

    Arrivals and retractions are exact packed-array deltas computed per
    ``(path, hits)`` group; a retracted group applies the same delta with
    multiplicity ``-1``, so the packed store is always the commutative sum
    of the live tuples (slots at zero read as absent, matching the object
    store's post-eviction pruning).
    """

    algorithm = "row"
    representation = "columnar"

    def __init__(
        self,
        thresholds: Optional[Thresholds] = None,
        *,
        table: Optional[TupleTable] = None,
        **_ignored,
    ) -> None:
        self.thresholds = thresholds or Thresholds()
        self.stats = IncrementalStats()
        self.table = table if table is not None else TupleTable()
        self._packed = PackedCounterStore(self.thresholds)
        self._observed: Set[ASN] = set()
        self._tuple_count = 0

    # -- ingestion ---------------------------------------------------------------------
    @property
    def tuple_count(self) -> int:
        """Number of unique tuples currently folded in."""
        return self._tuple_count

    def _apply_ref(self, ref: TupleRef, count: int) -> None:
        path_id = ref[0]
        hits = self.table.hits_of(path_id, ref[1])
        self._packed.ensure_slots(self.table.as_count)
        self._packed.apply_delta(
            row_group_delta_packed(self.table.path_row(path_id), hits, count)
        )

    def add_ref(self, ref: TupleRef) -> None:
        """Fold one interned unique tuple into the counters immediately."""
        self._apply_ref(ref, 1)
        self._observed.update(self.table.path_asns_of(ref[0]))
        self._tuple_count += 1
        self.stats.tuples_added += 1
        self.stats.delta_phases += 1

    def add_tuple(self, item: PathCommTuple) -> None:
        """Intern and fold one new unique tuple."""
        self.add_ref(self.table.intern_tuple(item))

    def add_tuples(self, items: Iterable[PathCommTuple]) -> None:
        """Intern and fold many new unique tuples."""
        for item in items:
            self.add_tuple(item)

    def evict_refs(
        self, evicted: Sequence[TupleRef], remaining: Iterable[TupleRef]
    ) -> None:
        """Retract expired tuples with exact negative deltas."""
        observed: Set[ASN] = set()
        for ref in evicted:
            self._apply_ref(ref, -1)
            self._tuple_count -= 1
        for ref in remaining:
            observed.update(self.table.path_asns_of(ref[0]))
        self._observed = observed

    def evict(
        self, evicted: Sequence[PathCommTuple], remaining: Iterable[PathCommTuple]
    ) -> None:
        """Object-tuple eviction entry point (interns, then defers)."""
        self.evict_refs(
            [self.table.intern_tuple(item) for item in evicted],
            (self.table.intern_tuple(item) for item in remaining),
        )

    # -- classification -----------------------------------------------------------------
    def update(self) -> ClassificationResult:
        """Return the up-to-date classification (counters are always live)."""
        self.stats.updates += 1
        return self.result()

    def result(self) -> ClassificationResult:
        """The current classification as an immutable snapshot."""
        return ClassificationResult(
            store=self._packed.to_store(self.table.as_values()),
            observed_ases=set(self._observed),
            algorithm="row",
        )

    # -- checkpointing ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Plain-data snapshot (ids are relative to the shared table)."""
        return {
            "algorithm": self.algorithm,
            "representation": self.representation,
            "thresholds": self.thresholds,
            "store_arrays": self._packed.arrays_state(),
            "observed": set(self._observed),
            "tuple_count": self._tuple_count,
            "stats": self.stats,
        }

    @classmethod
    def from_state(
        cls, state: Dict[str, object], table: TupleTable
    ) -> "ColumnarRowClassifier":
        """Rebuild against the restored table the ids were minted by."""
        classifier = cls(state["thresholds"], table=table)
        classifier._packed = PackedCounterStore.from_arrays_state(
            state["store_arrays"], classifier.thresholds
        )
        classifier._observed = set(state["observed"])
        classifier._tuple_count = state["tuple_count"]
        classifier.stats = state["stats"]
        return classifier


def make_classifier(
    algorithm: str,
    thresholds: Optional[Thresholds] = None,
    *,
    max_columns: Optional[int] = None,
    stop_when_stalled: bool = True,
    representation: str = "object",
    table: Optional[TupleTable] = None,
):
    """Instantiate the incremental classifier for *algorithm*."""
    if representation not in ("object", "columnar"):
        raise ValueError(f"unknown representation {representation!r}")
    if algorithm == "column":
        if representation == "columnar":
            return ColumnarColumnClassifier(
                thresholds,
                max_columns=max_columns,
                stop_when_stalled=stop_when_stalled,
                table=table,
            )
        return IncrementalColumnClassifier(
            thresholds, max_columns=max_columns, stop_when_stalled=stop_when_stalled
        )
    if algorithm == "row":
        if representation == "columnar":
            return ColumnarRowClassifier(thresholds, table=table)
        return IncrementalRowClassifier(thresholds)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def classifier_from_state(state: Dict[str, object], *, table: Optional[TupleTable] = None):
    """Rebuild whichever classifier a :func:`state_dict` snapshot came from."""
    algorithm = state.get("algorithm")
    representation = state.get("representation", "object")
    if representation == "columnar":
        if table is None:
            raise ValueError("columnar classifier state needs its TupleTable to restore")
        if algorithm == "column":
            return ColumnarColumnClassifier.from_state(state, table)
        if algorithm == "row":
            return ColumnarRowClassifier.from_state(state, table)
    elif algorithm == "column":
        return IncrementalColumnClassifier.from_state(state)
    elif algorithm == "row":
        return IncrementalRowClassifier.from_state(state)
    raise ValueError(f"unknown algorithm in classifier state: {algorithm!r}")
