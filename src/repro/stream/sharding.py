"""Partitioning of the event stream across per-AS-partition workers.

Events are routed by their collector-peer AS: every path starting at the
same peer lands on the same shard, so each shard's sanitizer + deduper pair
owns a disjoint slice of the ``(path, comm)`` tuple space and never has to
coordinate with its siblings.  Because the incremental classifiers are
order- and partition-independent (phase contributions are commutative sums),
any shard count produces the identical classification — sharding is purely a
throughput/memory-layout decision, which the tests pin down by comparing a
1-shard and an 8-shard run.

Workers are plain objects; the engine drives them synchronously.  A
multi-process deployment would place each :class:`ShardWorker` behind a
queue, which is why their full state is checkpointable independently.
"""

from __future__ import annotations

import operator
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bgp.announcement import PathCommTuple, RouteObservation
from repro.bgp.asn import ASN, ASNRegistry
from repro.bgp.prefix import PrefixAllocation
from repro.core.tuples import TupleRef, TupleTable
from repro.sanitize.filters import SanitationConfig, SanitationStats, Sanitizer, TupleDeduper

#: Knuth's multiplicative hash constant; peer ASNs are often assigned in
#: dense ranges, so a plain modulo would skew the shard load badly.
_HASH_MULTIPLIER = 2654435761

#: SanitationStats counter fields captured in memo deltas.  The in/out
#: totals are excluded: they change on *every* observation (in always, out
#: when kept), so the workers account for them arithmetically per memo hit
#: instead of replaying two recorded increments each time.
_STAT_FIELDS = tuple(
    name
    for name in SanitationStats().as_dict()
    if name not in ("observations_in", "observations_out")
)

#: One C-level call snapshotting every stat counter at once.
_STAT_SNAPSHOT = operator.attrgetter(*_STAT_FIELDS)


def shard_of(peer_asn: ASN, shards: int) -> int:
    """Deterministic shard index of *peer_asn* (stable across processes)."""
    return ((peer_asn * _HASH_MULTIPLIER) & 0xFFFFFFFF) % shards


class ShardWorker:
    """One partition worker: sanitation plus tuple deduplication.

    With a shared :class:`~repro.core.tuples.TupleTable` the worker runs in
    columnar mode: sanitized tuples are interned and both the dedup key and
    the "new tuple" handed to the classifier are ``(path_id, comm_id)`` id
    pairs.  Both modes memoise the sanitation outcome per distinct
    ``(path, comm, peer)`` input — update streams re-announce the same
    tuples constantly, and sanitation is a pure function of those fields
    when no mutable allocation context (ASN registry / prefix allocation,
    which may change mid-stream by design) is attached.  Memo hits replay
    the recorded per-stat increments, so the sanitation statistics stay
    event-for-event identical to the unmemoised path.

    :meth:`process_block` is the engine's hot path: one call sanitizes and
    dedupes a whole block of shard-local observations with the memo lookup
    inlined, amortizing the per-event dispatch that dominates event-at-a-time
    ingest.
    """

    def __init__(
        self,
        shard_id: int,
        *,
        asn_registry: Optional[ASNRegistry] = None,
        prefix_allocation: Optional[PrefixAllocation] = None,
        sanitation: Optional[SanitationConfig] = None,
        table: Optional[TupleTable] = None,
    ) -> None:
        self.shard_id = shard_id
        self.sanitizer = Sanitizer(
            asn_registry=asn_registry,
            prefix_allocation=prefix_allocation,
            config=sanitation,
        )
        self.deduper = TupleDeduper()
        self.events_processed = 0
        self.table = table
        #: Sanitation memo: input key -> ``[dedup_key, stat_deltas,
        #: dup_outcome, pending_hits]``.  ``dedup_key`` is an interned ref in
        #: columnar mode, a ``(path, comm)`` pair in object mode, or ``None``
        #: when the input is dropped; ``stat_deltas`` are the per-stat
        #: increments to replay on every hit; ``dup_outcome`` is the
        #: preallocated ``(key, None)`` duplicate result; ``pending_hits``
        #: buffers hit counts within one :meth:`process_block` call so the
        #: replay happens once per block instead of once per event.  Bounded
        #: by the number of distinct inputs, like the dedup set itself.
        self._memo: Dict[Tuple, List] = {}

    def process(
        self, observation: RouteObservation
    ) -> Optional[Tuple[Tuple, Optional[PathCommTuple]]]:
        """Sanitize one observation.

        Returns ``None`` when the observation was dropped, else
        ``(tuple_key, new_tuple)`` where ``new_tuple`` is the observation's
        ``(path, comm)`` tuple if it is new to this shard (``None`` for a
        duplicate).  The key is returned for duplicates too so the engine
        can refresh sliding-window retention timestamps.  In columnar mode
        both the key and the new tuple are interned ``(path_id, comm_id)``
        refs instead of object pairs.
        """
        self.events_processed += 1
        # The registry / allocation objects are mutable mid-stream by design
        # (their lookups are deliberately uncached); memoising is only sound
        # without them.
        sanitizer = self.sanitizer
        if sanitizer.asn_registry is None and sanitizer.prefix_allocation is None:
            path = observation.path
            memo_key = (
                path,
                observation.communities,
                observation.peer_asn,
                path.has_as_set,
            )
            entry = self._memo.get(memo_key)
            if entry is None:
                entry = self._memo[memo_key] = self._memo_entry(observation)
                key = entry[0]
            else:
                key = entry[0]
                stats = sanitizer.stats
                stats.observations_in += 1
                if key is not None:
                    stats.observations_out += 1
                for name, increment in entry[1]:
                    setattr(stats, name, getattr(stats, name) + increment)
        else:
            key = self._sanitize_recorded(observation)[0]
        if key is None:
            return None
        if not self.deduper.add_key(key):
            return key, None
        if self.table is not None:
            return key, key
        return key, PathCommTuple(key[0], key[1])

    def process_block(
        self, observations: Sequence[RouteObservation]
    ) -> List[Optional[Tuple[Tuple, Optional[PathCommTuple]]]]:
        """Sanitize a block of shard-local observations in one pass.

        Returns one :meth:`process` outcome per input, in input order.  The
        memo lookup and dedup are inlined into a single loop with hoisted
        attribute lookups, duplicate outcomes reuse the memo's preallocated
        tuple, and memo-hit stat replays are buffered per entry and applied
        once at the end of the block — this is where block ingest sheds the
        per-event dispatch cost.  The buffered replay is observationally
        identical to per-event replay: stats are only read between blocks,
        never inside one.
        """
        sanitizer = self.sanitizer
        memo = self._memo
        memo_get = memo.get
        seen = self.deduper._seen
        seen_add = seen.add
        columnar = self.table is not None
        memoised = sanitizer.asn_registry is None and sanitizer.prefix_allocation is None
        out: List[Optional[Tuple[Tuple, Optional[PathCommTuple]]]] = []
        append = out.append
        if memoised:
            memo_entry = self._memo_entry
            touched: List[List] = []
            touched_append = touched.append
            hit_in = 0
            hit_out = 0
            for observation in observations:
                path = observation.path
                memo_key = (
                    path,
                    observation.communities,
                    observation.peer_asn,
                    path.has_as_set,
                )
                entry = memo_get(memo_key)
                if entry is None:
                    entry = memo[memo_key] = memo_entry(observation)
                    key = entry[0]
                else:
                    deltas = entry[1]
                    if deltas:
                        hits = entry[3]
                        if hits == 0:
                            touched_append(entry)
                        entry[3] = hits + 1
                    key = entry[0]
                    hit_in += 1
                    if key is not None:
                        hit_out += 1
                if key is None:
                    append(None)
                elif key in seen:
                    append(entry[2])
                else:
                    seen_add(key)
                    append((key, key if columnar else PathCommTuple(key[0], key[1])))
            stats = sanitizer.stats
            stats.observations_in += hit_in
            stats.observations_out += hit_out
            if touched:
                for entry in touched:
                    hits = entry[3]
                    entry[3] = 0
                    for name, increment in entry[1]:
                        setattr(stats, name, getattr(stats, name) + increment * hits)
        else:
            recorded = self._sanitize_recorded
            for observation in observations:
                key = recorded(observation)[0]
                if key is None:
                    append(None)
                elif key in seen:
                    append((key, None))
                else:
                    seen_add(key)
                    append((key, key if columnar else PathCommTuple(key[0], key[1])))
        self.events_processed += len(observations)
        return out

    def process_block_new(
        self, observations: Sequence[RouteObservation]
    ) -> List[Tuple[int, Tuple]]:
        """Sanitize a block, returning only the newly seen tuples.

        Returns ``(local_index, key)`` pairs in input order — the dedup key
        doubles as the new tuple handed to the classifier (a ``(path, comm)``
        pair in object mode, an interned ref in columnar mode).  Dropped and
        duplicate observations produce no output at all, which is exactly
        what cumulative-window ingest needs: it lets the engine skip the
        per-event outcome list, the router's scatter pass, and the per-event
        absorb loop that :meth:`process_block` implies.  All side effects
        (dedup set, sanitation stats, event counters) are identical to
        :meth:`process_block`.
        """
        sanitizer = self.sanitizer
        memo = self._memo
        memo_get = memo.get
        seen = self.deduper._seen
        seen_add = seen.add
        news: List[Tuple[int, Tuple]] = []
        append = news.append
        if sanitizer.asn_registry is None and sanitizer.prefix_allocation is None:
            memo_entry = self._memo_entry
            touched: List[List] = []
            touched_append = touched.append
            hit_in = 0
            hit_out = 0
            index = -1
            for observation in observations:
                index += 1
                path = observation.path
                memo_key = (
                    path,
                    observation.communities,
                    observation.peer_asn,
                    path.has_as_set,
                )
                entry = memo_get(memo_key)
                if entry is None:
                    entry = memo[memo_key] = memo_entry(observation)
                    key = entry[0]
                else:
                    deltas = entry[1]
                    if deltas:
                        hits = entry[3]
                        if hits == 0:
                            touched_append(entry)
                        entry[3] = hits + 1
                    key = entry[0]
                    if key is None:
                        hit_in += 1
                        continue
                    hit_in += 1
                    hit_out += 1
                    if key not in seen:
                        seen_add(key)
                        append((index, key))
                    continue
                if key is not None and key not in seen:
                    seen_add(key)
                    append((index, key))
            stats = sanitizer.stats
            stats.observations_in += hit_in
            stats.observations_out += hit_out
            if touched:
                for entry in touched:
                    hits = entry[3]
                    entry[3] = 0
                    for name, increment in entry[1]:
                        setattr(stats, name, getattr(stats, name) + increment * hits)
        else:
            recorded = self._sanitize_recorded
            index = -1
            for observation in observations:
                index += 1
                key = recorded(observation)[0]
                if key is not None and key not in seen:
                    seen_add(key)
                    append((index, key))
        self.events_processed += len(observations)
        return news

    def _memo_entry(self, observation: RouteObservation) -> List:
        """Build one sanitation-memo entry (see the ``_memo`` field docs)."""
        key, deltas = self._sanitize_recorded(observation)
        return [key, deltas, None if key is None else (key, None), 0]

    def _sanitize_recorded(
        self, observation: RouteObservation
    ) -> Tuple[Optional[Tuple], Tuple[Tuple[str, int], ...]]:
        """Run full sanitation once; capture the stat increments it made.

        Returns the shard dedup key — the interned ref in columnar mode, the
        sanitized ``(path, comm)`` pair in object mode — or ``None`` when
        the observation was dropped.
        """
        stats = self.sanitizer.stats
        before = _STAT_SNAPSHOT(stats)
        sanitized = self.sanitizer.sanitize_observation(observation)
        after = _STAT_SNAPSHOT(stats)
        changed: List[Tuple[str, int]] = []
        for name, now, previous in zip(_STAT_FIELDS, after, before):
            if now != previous:
                changed.append((name, now - previous))
        deltas = tuple(changed)
        if sanitized is None:
            return None, deltas
        if self.table is not None:
            return self.table.intern(sanitized.path, sanitized.communities), deltas
        return (sanitized.path, sanitized.communities), deltas

    def evict(self, keys: Iterable[Tuple]) -> int:
        """Forget expired tuple keys so they may re-enter later."""
        return self.deduper.discard(keys)

    @property
    def unique_tuples(self) -> int:
        """Number of unique tuples this shard currently tracks."""
        return len(self.deduper)

    # -- checkpointing ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Plain-data snapshot of the worker."""
        return {
            "shard_id": self.shard_id,
            "seen": set(self.deduper.state_dict()),
            "sanitation_stats": self.sanitizer.stats,
            "events_processed": self.events_processed,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the worker from :meth:`state_dict` output."""
        self.deduper = TupleDeduper.from_state(set(state["seen"]))
        self.sanitizer.stats = state["sanitation_stats"]
        self.events_processed = state["events_processed"]
        # Memoised refs may point at ids interned after the checkpoint was
        # written; a restore rewinds the shared table, so drop them.
        self._memo.clear()


class ShardRouter:
    """Routes observations to shard workers and aggregates their stats."""

    def __init__(
        self,
        shards: int = 1,
        *,
        asn_registry: Optional[ASNRegistry] = None,
        prefix_allocation: Optional[PrefixAllocation] = None,
        sanitation: Optional[SanitationConfig] = None,
        table: Optional[TupleTable] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.workers: List[ShardWorker] = [
            ShardWorker(
                shard_id,
                asn_registry=asn_registry,
                prefix_allocation=prefix_allocation,
                sanitation=sanitation,
                table=table,
            )
            for shard_id in range(shards)
        ]

    def __len__(self) -> int:
        return len(self.workers)

    def worker_for(self, observation: RouteObservation) -> ShardWorker:
        """The worker owning *observation*'s partition."""
        if len(self.workers) == 1:
            return self.workers[0]
        return self.workers[shard_of(observation.peer_asn, len(self.workers))]

    def process(
        self, observation: RouteObservation
    ) -> Optional[Tuple[Tuple, Optional[PathCommTuple]]]:
        """Route and process one observation (see :meth:`ShardWorker.process`)."""
        return self.worker_for(observation).process(observation)

    def process_block(
        self, observations: Sequence[RouteObservation]
    ) -> List[Optional[Tuple[Tuple, Optional[PathCommTuple]]]]:
        """Partition one block across shards and process it in one pass.

        Outcomes come back in input order, exactly as if each observation had
        been routed through :meth:`process` individually.  The partition is a
        single sweep computing every shard assignment up front, so each
        worker sees one contiguous sub-block instead of interleaved
        per-event calls.
        """
        workers = self.workers
        if len(workers) == 1:
            return workers[0].process_block(observations)
        shard_count = len(workers)
        multiplier = _HASH_MULTIPLIER
        grouped: List[Optional[Tuple[List[int], List[RouteObservation]]]]
        grouped = [None] * shard_count
        for index, observation in enumerate(observations):
            shard_id = ((observation.peer_asn * multiplier) & 0xFFFFFFFF) % shard_count
            group = grouped[shard_id]
            if group is None:
                group = grouped[shard_id] = ([], [])
            group[0].append(index)
            group[1].append(observation)
        out: List[Optional[Tuple[Tuple, Optional[PathCommTuple]]]]
        out = [None] * len(observations)
        for shard_id, group in enumerate(grouped):
            if group is None:
                continue
            indices, shard_observations = group
            for index, outcome in zip(
                indices, workers[shard_id].process_block(shard_observations)
            ):
                out[index] = outcome
        return out

    def process_block_new(
        self, observations: Sequence[RouteObservation]
    ) -> List[Tuple]:
        """Partition a block and return only its newly seen tuples, in event order.

        The classifiers' checkpoint state pickles their pending-tuple queues,
        so the order new tuples reach the classifier is observable; merging
        each shard's ``(local_index, key)`` pairs back through the partition's
        global indices keeps it identical to per-event routing.  Global
        indices are unique, so the sort never compares keys.
        """
        workers = self.workers
        if len(workers) == 1:
            return [key for _, key in workers[0].process_block_new(observations)]
        shard_count = len(workers)
        multiplier = _HASH_MULTIPLIER
        grouped: List[Optional[Tuple[List[int], List[RouteObservation]]]]
        grouped = [None] * shard_count
        for index, observation in enumerate(observations):
            shard_id = ((observation.peer_asn * multiplier) & 0xFFFFFFFF) % shard_count
            group = grouped[shard_id]
            if group is None:
                group = grouped[shard_id] = ([], [])
            group[0].append(index)
            group[1].append(observation)
        merged: List[Tuple[int, Tuple]] = []
        for shard_id, group in enumerate(grouped):
            if group is None:
                continue
            indices, shard_observations = group
            for local_index, key in workers[shard_id].process_block_new(
                shard_observations
            ):
                merged.append((indices[local_index], key))
        merged.sort()
        return [key for _, key in merged]

    def evict(self, keys_by_shard: Dict[int, List[Tuple]]) -> int:
        """Evict expired tuple keys, pre-grouped by shard index."""
        removed = 0
        for shard_id, keys in keys_by_shard.items():
            removed += self.workers[shard_id].evict(keys)
        return removed

    @property
    def unique_tuples(self) -> int:
        """Unique tuples across all shards (partitions are disjoint)."""
        return sum(worker.unique_tuples for worker in self.workers)

    @property
    def events_processed(self) -> int:
        """Events processed across all shards."""
        return sum(worker.events_processed for worker in self.workers)

    def sanitation_stats(self) -> SanitationStats:
        """Merged sanitation statistics across all shards."""
        merged = SanitationStats()
        for worker in self.workers:
            stats = worker.sanitizer.stats
            for key, value in stats.as_dict().items():
                setattr(merged, key, getattr(merged, key) + value)
        return merged

    def load_distribution(self) -> List[int]:
        """Events per shard (balance diagnostics)."""
        return [worker.events_processed for worker in self.workers]

    # -- checkpointing ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Plain-data snapshot of every worker."""
        return {"workers": [worker.state_dict() for worker in self.workers]}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore all workers from :meth:`state_dict` output."""
        worker_states = state["workers"]
        if len(worker_states) != len(self.workers):
            raise ValueError(
                f"checkpoint has {len(worker_states)} shards, engine has {len(self.workers)}"
            )
        for worker, worker_state in zip(self.workers, worker_states):
            worker.load_state_dict(worker_state)
