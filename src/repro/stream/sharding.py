"""Partitioning of the event stream across per-AS-partition workers.

Events are routed by their collector-peer AS: every path starting at the
same peer lands on the same shard, so each shard's sanitizer + deduper pair
owns a disjoint slice of the ``(path, comm)`` tuple space and never has to
coordinate with its siblings.  Because the incremental classifiers are
order- and partition-independent (phase contributions are commutative sums),
any shard count produces the identical classification — sharding is purely a
throughput/memory-layout decision, which the tests pin down by comparing a
1-shard and an 8-shard run.

Workers are plain objects; the engine drives them synchronously.  A
multi-process deployment would place each :class:`ShardWorker` behind a
queue, which is why their full state is checkpointable independently.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.bgp.announcement import PathCommTuple, RouteObservation
from repro.bgp.asn import ASN, ASNRegistry
from repro.bgp.prefix import PrefixAllocation
from repro.core.tuples import TupleRef, TupleTable
from repro.sanitize.filters import SanitationConfig, SanitationStats, Sanitizer, TupleDeduper

#: Knuth's multiplicative hash constant; peer ASNs are often assigned in
#: dense ranges, so a plain modulo would skew the shard load badly.
_HASH_MULTIPLIER = 2654435761

#: SanitationStats counter fields, snapshot order for the memo delta capture.
_STAT_FIELDS = tuple(SanitationStats().as_dict())


def shard_of(peer_asn: ASN, shards: int) -> int:
    """Deterministic shard index of *peer_asn* (stable across processes)."""
    return ((peer_asn * _HASH_MULTIPLIER) & 0xFFFFFFFF) % shards


class ShardWorker:
    """One partition worker: sanitation plus tuple deduplication.

    With a shared :class:`~repro.core.tuples.TupleTable` the worker runs in
    columnar mode: sanitized tuples are interned and both the dedup key and
    the "new tuple" handed to the classifier are ``(path_id, comm_id)`` id
    pairs.  Columnar mode also memoises the sanitation outcome per distinct
    ``(path, comm, peer)`` input — update streams re-announce the same
    tuples constantly, and sanitation is a pure function of those fields
    when no mutable allocation context (ASN registry / prefix allocation,
    which may change mid-stream by design) is attached.  Memo hits replay
    the recorded per-stat increments, so the sanitation statistics stay
    event-for-event identical to the unmemoised path.
    """

    def __init__(
        self,
        shard_id: int,
        *,
        asn_registry: Optional[ASNRegistry] = None,
        prefix_allocation: Optional[PrefixAllocation] = None,
        sanitation: Optional[SanitationConfig] = None,
        table: Optional[TupleTable] = None,
    ) -> None:
        self.shard_id = shard_id
        self.sanitizer = Sanitizer(
            asn_registry=asn_registry,
            prefix_allocation=prefix_allocation,
            config=sanitation,
        )
        self.deduper = TupleDeduper()
        self.events_processed = 0
        self.table = table
        #: Sanitation memo (columnar mode): input key -> (interned ref or
        #: ``None`` when dropped, per-stat increments to replay).  Bounded
        #: by the number of distinct inputs, like the dedup set itself.
        self._memo: Dict[Tuple, Tuple[Optional[TupleRef], Tuple[Tuple[str, int], ...]]] = {}

    def process(
        self, observation: RouteObservation
    ) -> Optional[Tuple[Tuple, Optional[PathCommTuple]]]:
        """Sanitize one observation.

        Returns ``None`` when the observation was dropped, else
        ``(tuple_key, new_tuple)`` where ``new_tuple`` is the observation's
        ``(path, comm)`` tuple if it is new to this shard (``None`` for a
        duplicate).  The key is returned for duplicates too so the engine
        can refresh sliding-window retention timestamps.  In columnar mode
        both the key and the new tuple are interned ``(path_id, comm_id)``
        refs instead of object pairs.
        """
        self.events_processed += 1
        if self.table is not None:
            return self._process_columnar(observation)
        sanitized = self.sanitizer.sanitize_observation(observation)
        if sanitized is None:
            return None
        key = (sanitized.path, sanitized.communities)
        return key, self.deduper.add(sanitized)

    def _process_columnar(
        self, observation: RouteObservation
    ) -> Optional[Tuple[TupleRef, Optional[TupleRef]]]:
        sanitizer = self.sanitizer
        # The registry / allocation objects are mutable mid-stream by design
        # (their lookups are deliberately uncached); memoising is only sound
        # without them.
        if sanitizer.asn_registry is None and sanitizer.prefix_allocation is None:
            memo_key = (
                observation.path,
                observation.communities,
                observation.peer_asn,
                observation.path.has_as_set,
            )
            hit = self._memo.get(memo_key)
            if hit is None:
                hit = self._memo[memo_key] = self._sanitize_interned(observation)
            else:
                stats = sanitizer.stats
                for name, increment in hit[1]:
                    setattr(stats, name, getattr(stats, name) + increment)
            ref = hit[0]
        else:
            ref = self._sanitize_interned(observation)[0]
        if ref is None:
            return None
        return ref, (ref if self.deduper.add_key(ref) else None)

    def _sanitize_interned(
        self, observation: RouteObservation
    ) -> Tuple[Optional[TupleRef], Tuple[Tuple[str, int], ...]]:
        """Run full sanitation once; capture the stat increments it made."""
        stats = self.sanitizer.stats
        before = [getattr(stats, name) for name in _STAT_FIELDS]
        sanitized = self.sanitizer.sanitize_observation(observation)
        deltas = tuple(
            (name, delta)
            for name, previous in zip(_STAT_FIELDS, before)
            if (delta := getattr(stats, name) - previous)
        )
        if sanitized is None:
            return None, deltas
        assert self.table is not None
        return self.table.intern(sanitized.path, sanitized.communities), deltas

    def evict(self, keys: Iterable[Tuple]) -> int:
        """Forget expired tuple keys so they may re-enter later."""
        return self.deduper.discard(keys)

    @property
    def unique_tuples(self) -> int:
        """Number of unique tuples this shard currently tracks."""
        return len(self.deduper)

    # -- checkpointing ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Plain-data snapshot of the worker."""
        return {
            "shard_id": self.shard_id,
            "seen": set(self.deduper.state_dict()),
            "sanitation_stats": self.sanitizer.stats,
            "events_processed": self.events_processed,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the worker from :meth:`state_dict` output."""
        self.deduper = TupleDeduper.from_state(set(state["seen"]))
        self.sanitizer.stats = state["sanitation_stats"]
        self.events_processed = state["events_processed"]
        # Memoised refs may point at ids interned after the checkpoint was
        # written; a restore rewinds the shared table, so drop them.
        self._memo.clear()


class ShardRouter:
    """Routes observations to shard workers and aggregates their stats."""

    def __init__(
        self,
        shards: int = 1,
        *,
        asn_registry: Optional[ASNRegistry] = None,
        prefix_allocation: Optional[PrefixAllocation] = None,
        sanitation: Optional[SanitationConfig] = None,
        table: Optional[TupleTable] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.workers: List[ShardWorker] = [
            ShardWorker(
                shard_id,
                asn_registry=asn_registry,
                prefix_allocation=prefix_allocation,
                sanitation=sanitation,
                table=table,
            )
            for shard_id in range(shards)
        ]

    def __len__(self) -> int:
        return len(self.workers)

    def worker_for(self, observation: RouteObservation) -> ShardWorker:
        """The worker owning *observation*'s partition."""
        if len(self.workers) == 1:
            return self.workers[0]
        return self.workers[shard_of(observation.peer_asn, len(self.workers))]

    def process(
        self, observation: RouteObservation
    ) -> Optional[Tuple[Tuple, Optional[PathCommTuple]]]:
        """Route and process one observation (see :meth:`ShardWorker.process`)."""
        return self.worker_for(observation).process(observation)

    def evict(self, keys_by_shard: Dict[int, List[Tuple]]) -> int:
        """Evict expired tuple keys, pre-grouped by shard index."""
        removed = 0
        for shard_id, keys in keys_by_shard.items():
            removed += self.workers[shard_id].evict(keys)
        return removed

    @property
    def unique_tuples(self) -> int:
        """Unique tuples across all shards (partitions are disjoint)."""
        return sum(worker.unique_tuples for worker in self.workers)

    @property
    def events_processed(self) -> int:
        """Events processed across all shards."""
        return sum(worker.events_processed for worker in self.workers)

    def sanitation_stats(self) -> SanitationStats:
        """Merged sanitation statistics across all shards."""
        merged = SanitationStats()
        for worker in self.workers:
            stats = worker.sanitizer.stats
            for key, value in stats.as_dict().items():
                setattr(merged, key, getattr(merged, key) + value)
        return merged

    def load_distribution(self) -> List[int]:
        """Events per shard (balance diagnostics)."""
        return [worker.events_processed for worker in self.workers]

    # -- checkpointing ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Plain-data snapshot of every worker."""
        return {"workers": [worker.state_dict() for worker in self.workers]}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore all workers from :meth:`state_dict` output."""
        worker_states = state["workers"]
        if len(worker_states) != len(self.workers):
            raise ValueError(
                f"checkpoint has {len(worker_states)} shards, engine has {len(self.workers)}"
            )
        for worker, worker_state in zip(self.workers, worker_states):
            worker.load_state_dict(worker_state)
