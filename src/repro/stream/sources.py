"""Pluggable BGP update event sources for the streaming engine.

An event source is simply an iterable of
:class:`~repro.bgp.announcement.RouteObservation`; the engine pulls events
one at a time, so sources can (and should) be lazy.  Three families ship
with the engine, mirroring how a deployment would be fed:

* :class:`MRTReplaySource` -- replays recorded MRT update/RIB archives
  through the lazy decoder in :mod:`repro.collectors.archive`; this is the
  BGPStream-style backfill path and the one the equivalence tests use;
* :class:`ScenarioSource` -- turns the synthetic ground-truth scenarios of
  :mod:`repro.usage` into a timed feed (load generation, benchmarks);
* :class:`MemorySource` -- an in-memory buffer for tests and for bridging a
  live feed (e.g. a RIS-Live websocket consumer) into the engine.
"""

from __future__ import annotations

from pathlib import Path
from typing import (
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Union,
    runtime_checkable,
)

from repro.bgp.announcement import PathCommTuple, RouteObservation
from repro.bgp.prefix import Prefix
from repro.collectors.archive import (
    DEFAULT_EPOCH,
    iter_observation_blocks_from_mrt,
    iter_observations_from_mrt,
)


@runtime_checkable
class BlockSource(Protocol):
    """An event source that can also hand out whole event blocks.

    ``iter_blocks(size)`` must yield the exact events of ``__iter__`` in the
    exact same order, grouped into lists of at most *size* (blocks may come
    up short, e.g. at collector boundaries).  The engine prefers this path —
    one block flows through decode, sanitation, and sharding as a unit — and
    falls back to chunking ``__iter__`` for plain iterables via
    :func:`iter_event_blocks`.
    """

    def __iter__(self) -> Iterator[RouteObservation]: ...

    def iter_blocks(self, size: int) -> Iterator[List[RouteObservation]]: ...


def _chunk_events(
    events: Iterable[RouteObservation], size: int
) -> Iterator[List[RouteObservation]]:
    """Group an event iterable into blocks of up to *size*, order-preserving."""
    block: List[RouteObservation] = []
    append = block.append
    for event in events:
        append(event)
        if len(block) >= size:
            yield block
            block = []
            append = block.append
    if block:
        yield block


def iter_event_blocks(
    source: Iterable[RouteObservation], size: int
) -> Iterator[List[RouteObservation]]:
    """Drive any event source as a block stream.

    Sources conforming to :class:`BlockSource` yield their own blocks (lazy
    decode, slice fast paths); any other iterable is chunked.  Either way the
    concatenated blocks replay ``iter(source)`` exactly.
    """
    if size < 1:
        raise ValueError(f"block size must be >= 1, got {size}")
    iter_blocks = getattr(source, "iter_blocks", None)
    if iter_blocks is not None:
        return iter_blocks(size)
    return _chunk_events(source, size)


class MemorySource:
    """An in-memory event buffer.

    Tests push hand-crafted observations; a live-feed bridge would push
    decoded updates from a websocket.  Iteration drains lazily over the
    current buffer contents.
    """

    def __init__(self, events: Optional[Iterable[RouteObservation]] = None) -> None:
        self._events: List[RouteObservation] = list(events) if events is not None else []

    def push(self, event: RouteObservation) -> None:
        """Append one event to the buffer."""
        self._events.append(event)

    def extend(self, events: Iterable[RouteObservation]) -> None:
        """Append many events to the buffer."""
        self._events.extend(events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[RouteObservation]:
        return iter(self._events)

    def iter_blocks(self, size: int) -> Iterator[List[RouteObservation]]:
        """Yield the buffer as list slices (the zero-copy block fast path)."""
        if size < 1:
            raise ValueError(f"block size must be >= 1, got {size}")
        events = self._events
        for start in range(0, len(events), size):
            yield events[start : start + size]


class MRTReplaySource:
    """Replays per-collector MRT blobs as an event stream.

    Decoding is lazy per collector.  ``order`` selects how the per-collector
    streams are interleaved:

    * ``"archive"`` (default) -- one collector after the other, collectors in
      sorted-name order, each in stored record order; constant memory,
      matches how archives are processed in batch;
    * ``"time"`` -- a deterministic interleaved merge sorted by
      ``(timestamp, collector name)`` with equal keys keeping their stored
      record order; this materialises all observations once and is meant for
      demos and window-boundary tests, not for production replays of huge
      archives.

    Both orders are fully determined by the blob *contents* — never by the
    mapping's insertion order — so block iteration (:meth:`iter_blocks`) can
    never reorder events relative to the event iterator.
    """

    def __init__(self, blobs: Mapping[str, bytes], *, order: str = "archive") -> None:
        if order not in ("archive", "time"):
            raise ValueError(f"unknown replay order {order!r}")
        self.blobs = dict(sorted(blobs.items()))
        self.order = order

    @classmethod
    def from_files(
        cls, paths: Sequence[Union[str, Path]], *, order: str = "archive"
    ) -> "MRTReplaySource":
        """Build a replay source from MRT files on disk (one per collector)."""
        blobs = {Path(path).name: Path(path).read_bytes() for path in paths}
        return cls(blobs, order=order)

    def _collector_streams(self) -> List[Iterator[RouteObservation]]:
        return [
            iter_observations_from_mrt(blob, collector)
            for collector, blob in self.blobs.items()
        ]

    def _merged_by_time(self) -> List[RouteObservation]:
        merged: List[RouteObservation] = []
        for stream in self._collector_streams():
            merged.extend(stream)
        # Stable sort on (timestamp, collector): ties across collectors break
        # on the collector name, ties within one collector keep record order.
        merged.sort(key=lambda observation: (observation.timestamp, observation.collector))
        return merged

    def __iter__(self) -> Iterator[RouteObservation]:
        if self.order == "time":
            return iter(self._merged_by_time())

        def chained() -> Iterator[RouteObservation]:
            for stream in self._collector_streams():
                yield from stream

        return chained()

    def iter_blocks(self, size: int) -> Iterator[List[RouteObservation]]:
        """Yield observation blocks in exactly the event-iterator order.

        ``"archive"`` order decodes lazily block-by-block per collector
        (blocks never span collectors, so the tail block of each archive may
        be short); ``"time"`` order chunks the same materialised merge that
        ``__iter__`` replays.
        """
        if size < 1:
            raise ValueError(f"block size must be >= 1, got {size}")
        if self.order == "time":
            merged = self._merged_by_time()
            for start in range(0, len(merged), size):
                yield merged[start : start + size]
            return
        for collector, blob in self.blobs.items():
            yield from iter_observation_blocks_from_mrt(blob, collector, size)


def _prefix_for_origin(origin: int) -> Prefix:
    """A deterministic per-origin /24 used by synthetic feeds."""
    network = (20 << 24) | ((origin % 65536) << 8)
    return Prefix.ipv4(network, 24)


class ScenarioSource:
    """Turns ground-truth scenario tuples into a timed update feed.

    Every ``(path, comm)`` tuple becomes one announcement whose timestamp is
    spread evenly across ``duration`` seconds starting at ``start``; with
    ``repeat > 1`` the whole tuple set is re-announced that many times
    (steady-state churn: all repeats deduplicate into the same tuples, which
    is exactly what a stable Internet looks like to the classifier).
    """

    def __init__(
        self,
        tuples: Sequence[PathCommTuple],
        *,
        collector: str = "scenario",
        start: int = DEFAULT_EPOCH,
        duration: int = 86400,
        repeat: int = 1,
    ) -> None:
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if repeat < 1:
            raise ValueError(f"repeat must be >= 1, got {repeat}")
        self.tuples = tuples
        self.collector = collector
        self.start = start
        self.duration = duration
        self.repeat = repeat

    def __len__(self) -> int:
        return len(self.tuples) * self.repeat

    def __iter__(self) -> Iterator[RouteObservation]:
        total = len(self)
        if total == 0:
            return
        index = 0
        for _round in range(self.repeat):
            for item in self.tuples:
                timestamp = self.start + (index * self.duration) // total
                index += 1
                yield RouteObservation(
                    collector=self.collector,
                    peer_asn=item.peer,
                    prefix=_prefix_for_origin(item.origin),
                    path=item.path,
                    communities=item.communities,
                    timestamp=timestamp,
                    from_rib=False,
                )

    def iter_blocks(self, size: int) -> Iterator[List[RouteObservation]]:
        """Generate the timed feed in blocks of up to *size*."""
        return _chunk_events(self, size)
