"""Pluggable BGP update event sources for the streaming engine.

An event source is simply an iterable of
:class:`~repro.bgp.announcement.RouteObservation`; the engine pulls events
one at a time, so sources can (and should) be lazy.  Three families ship
with the engine, mirroring how a deployment would be fed:

* :class:`MRTReplaySource` -- replays recorded MRT update/RIB archives
  through the lazy decoder in :mod:`repro.collectors.archive`; this is the
  BGPStream-style backfill path and the one the equivalence tests use;
* :class:`ScenarioSource` -- turns the synthetic ground-truth scenarios of
  :mod:`repro.usage` into a timed feed (load generation, benchmarks);
* :class:`MemorySource` -- an in-memory buffer for tests and for bridging a
  live feed (e.g. a RIS-Live websocket consumer) into the engine.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Mapping, Optional, Sequence, Union

from repro.bgp.announcement import PathCommTuple, RouteObservation
from repro.bgp.prefix import Prefix
from repro.collectors.archive import DEFAULT_EPOCH, iter_observations_from_mrt


class MemorySource:
    """An in-memory event buffer.

    Tests push hand-crafted observations; a live-feed bridge would push
    decoded updates from a websocket.  Iteration drains lazily over the
    current buffer contents.
    """

    def __init__(self, events: Optional[Iterable[RouteObservation]] = None) -> None:
        self._events: List[RouteObservation] = list(events) if events is not None else []

    def push(self, event: RouteObservation) -> None:
        """Append one event to the buffer."""
        self._events.append(event)

    def extend(self, events: Iterable[RouteObservation]) -> None:
        """Append many events to the buffer."""
        self._events.extend(events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[RouteObservation]:
        return iter(self._events)


class MRTReplaySource:
    """Replays per-collector MRT blobs as an event stream.

    Decoding is lazy per collector.  ``order`` selects how the per-collector
    streams are interleaved:

    * ``"archive"`` (default) -- one collector after the other, in stored
      record order; constant memory, matches how archives are processed in
      batch;
    * ``"time"`` -- a global sort by timestamp; this materialises all
      observations once and is meant for demos and window-boundary tests,
      not for production replays of huge archives.
    """

    def __init__(self, blobs: Mapping[str, bytes], *, order: str = "archive") -> None:
        if order not in ("archive", "time"):
            raise ValueError(f"unknown replay order {order!r}")
        self.blobs = dict(blobs)
        self.order = order

    @classmethod
    def from_files(
        cls, paths: Sequence[Union[str, Path]], *, order: str = "archive"
    ) -> "MRTReplaySource":
        """Build a replay source from MRT files on disk (one per collector)."""
        blobs = {Path(path).name: Path(path).read_bytes() for path in paths}
        return cls(blobs, order=order)

    def _collector_streams(self) -> List[Iterator[RouteObservation]]:
        return [
            iter_observations_from_mrt(blob, collector)
            for collector, blob in self.blobs.items()
        ]

    def __iter__(self) -> Iterator[RouteObservation]:
        if self.order == "time":
            merged: List[RouteObservation] = []
            for stream in self._collector_streams():
                merged.extend(stream)
            merged.sort(key=lambda observation: observation.timestamp)
            return iter(merged)

        def chained() -> Iterator[RouteObservation]:
            for stream in self._collector_streams():
                yield from stream

        return chained()


def _prefix_for_origin(origin: int) -> Prefix:
    """A deterministic per-origin /24 used by synthetic feeds."""
    network = (20 << 24) | ((origin % 65536) << 8)
    return Prefix.ipv4(network, 24)


class ScenarioSource:
    """Turns ground-truth scenario tuples into a timed update feed.

    Every ``(path, comm)`` tuple becomes one announcement whose timestamp is
    spread evenly across ``duration`` seconds starting at ``start``; with
    ``repeat > 1`` the whole tuple set is re-announced that many times
    (steady-state churn: all repeats deduplicate into the same tuples, which
    is exactly what a stable Internet looks like to the classifier).
    """

    def __init__(
        self,
        tuples: Sequence[PathCommTuple],
        *,
        collector: str = "scenario",
        start: int = DEFAULT_EPOCH,
        duration: int = 86400,
        repeat: int = 1,
    ) -> None:
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if repeat < 1:
            raise ValueError(f"repeat must be >= 1, got {repeat}")
        self.tuples = tuples
        self.collector = collector
        self.start = start
        self.duration = duration
        self.repeat = repeat

    def __len__(self) -> int:
        return len(self.tuples) * self.repeat

    def __iter__(self) -> Iterator[RouteObservation]:
        total = len(self)
        if total == 0:
            return
        index = 0
        for _round in range(self.repeat):
            for item in self.tuples:
                timestamp = self.start + (index * self.duration) // total
                index += 1
                yield RouteObservation(
                    collector=self.collector,
                    peer_asn=item.peer,
                    prefix=_prefix_for_origin(item.origin),
                    path=item.path,
                    communities=item.communities,
                    timestamp=timestamp,
                    from_rib=False,
                )
