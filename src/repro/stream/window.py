"""Event-time windowing for the streaming engine.

The engine classifies over **event time** (the timestamps carried by BGP
updates), not arrival time, so replaying an archive yields the same window
boundaries as consuming the feed live.  Two policies are supported:

* ``cumulative`` -- tumbling windows that *snapshot* an ever-growing
  classification: every closed window emits the classification over all
  data seen so far.  Fully draining a stream therefore reproduces the batch
  pipeline exactly (the streaming equivalence property).
* ``sliding`` -- the engine additionally *retains* only the tuples last seen
  within a trailing horizon; evidence older than the horizon is evicted at
  window boundaries.  This keeps the classification responsive to behaviour
  changes at the cost of batch equivalence.

The :class:`WindowClock` tracks the watermark (maximum event time minus the
allowed lateness) and reports which window just closed.  When the watermark
jumps over several empty windows at once they are collapsed into a single
close, so a quiet feed does not trigger a flush storm.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


class WindowPolicy(str, enum.Enum):
    """How engine state relates to window boundaries."""

    CUMULATIVE = "cumulative"
    SLIDING = "sliding"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class WindowSpec:
    """Shape of the engine's windows.

    ``size`` is the tumbling window length in seconds of event time.  For
    the sliding policy, ``horizon`` is the retention span (defaults to
    ``4 * size``); tuples not re-observed within it are evicted.
    ``allowed_lateness`` delays window closing so slightly out-of-order
    feeds (multi-collector merges) do not close windows prematurely.
    """

    size: int = 300
    policy: WindowPolicy = WindowPolicy.CUMULATIVE
    horizon: Optional[int] = None
    allowed_lateness: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"window size must be positive, got {self.size}")
        if self.allowed_lateness < 0:
            raise ValueError("allowed_lateness must be >= 0")
        if not isinstance(self.policy, WindowPolicy):
            object.__setattr__(self, "policy", WindowPolicy(self.policy))
        if self.horizon is not None and self.horizon < self.size:
            raise ValueError("horizon must be at least one window long")

    @property
    def effective_horizon(self) -> int:
        """The retention span used by the sliding policy."""
        return self.horizon if self.horizon is not None else 4 * self.size

    def window_index(self, timestamp: int) -> int:
        """The index of the window containing *timestamp*."""
        return timestamp // self.size

    def bounds(self, index: int) -> Tuple[int, int]:
        """``[start, end)`` bounds of the window with *index*."""
        return index * self.size, (index + 1) * self.size


@dataclass(frozen=True)
class ClosedWindow:
    """One window close reported by the clock.

    ``skipped`` counts the empty windows that were collapsed into this close
    (watermark jumped over them without any events).
    """

    start: int
    end: int
    skipped: int = 0


class WindowClock:
    """Tracks event time and decides when windows close.

    The clock is deliberately tolerant of disorder: events older than the
    watermark are still *counted* (the engine ingests them — classification
    state is order-independent), they just cannot re-open a closed window.
    """

    def __init__(self, spec: WindowSpec) -> None:
        self.spec = spec
        self.max_timestamp: Optional[int] = None
        self.late_events = 0
        self._next_index: Optional[int] = None  # first window not yet closed

    @property
    def watermark(self) -> Optional[int]:
        """Current watermark, or ``None`` before the first event."""
        if self.max_timestamp is None:
            return None
        return self.max_timestamp - self.spec.allowed_lateness

    def advance(self, timestamp: int) -> Optional[ClosedWindow]:
        """Feed one event timestamp; report a window close if one occurred."""
        if self.max_timestamp is None:
            self.max_timestamp = timestamp
            self._next_index = self.spec.window_index(
                max(0, timestamp - self.spec.allowed_lateness)
            )
            return None
        watermark = self.max_timestamp - self.spec.allowed_lateness
        if timestamp > self.max_timestamp:
            self.max_timestamp = timestamp
            watermark = timestamp - self.spec.allowed_lateness
        elif timestamp < watermark:
            self.late_events += 1
        closable = watermark // self.spec.size  # windows < closable are closed
        if closable <= self._next_index:
            return None
        closed_index = closable - 1
        skipped = closed_index - self._next_index
        self._next_index = closable
        start, end = self.spec.bounds(closed_index)
        return ClosedWindow(start=start, end=end, skipped=skipped)

    def advance_block(self, timestamps: Sequence[int]) -> List[Tuple[int, ClosedWindow]]:
        """Feed a block of event timestamps in one pass.

        Returns ``(position, closed)`` pairs: the event at ``position`` is the
        one whose arrival closed *closed*, and — exactly as with per-event
        :meth:`advance` — it belongs to the *next* window, so callers must
        flush before processing ``timestamps[position:]``.  Equivalent to
        calling :meth:`advance` once per timestamp (same watermark, same
        late-event count, same collapsed closes), just without the per-event
        call overhead.
        """
        closes: List[Tuple[int, ClosedWindow]] = []
        spec = self.spec
        size = spec.size
        lateness = spec.allowed_lateness
        max_timestamp = self.max_timestamp
        next_index = self._next_index
        late = 0
        for position, timestamp in enumerate(timestamps):
            if max_timestamp is None:
                max_timestamp = timestamp
                next_index = max(0, timestamp - lateness) // size
                continue
            watermark = max_timestamp - lateness
            if timestamp > max_timestamp:
                max_timestamp = timestamp
                watermark = timestamp - lateness
            elif timestamp < watermark:
                late += 1
            closable = watermark // size
            if closable > next_index:
                closed_index = closable - 1
                skipped = closed_index - next_index
                next_index = closable
                closes.append(
                    (
                        position,
                        ClosedWindow(
                            start=closed_index * size,
                            end=(closed_index + 1) * size,
                            skipped=skipped,
                        ),
                    )
                )
        self.max_timestamp = max_timestamp
        self._next_index = next_index
        if late:
            self.late_events += late
        return closes

    def close_current(self) -> Optional[ClosedWindow]:
        """Close the in-progress window (end of stream / final drain).

        Draining is idempotent: once the window containing the newest event
        has been closed there is nothing left in progress, so repeated calls
        return ``None`` instead of fabricating empty future windows.
        """
        if self.max_timestamp is None or self._next_index is None:
            return None
        index = self.spec.window_index(self.max_timestamp)
        if index < self._next_index:
            return None
        start, end = self.spec.bounds(index)
        skipped = index - self._next_index
        self._next_index = index + 1
        return ClosedWindow(start=start, end=end, skipped=skipped)

    # -- checkpointing ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Plain-data snapshot of the clock."""
        return {
            "spec": self.spec,
            "max_timestamp": self.max_timestamp,
            "late_events": self.late_events,
            "next_index": self._next_index,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "WindowClock":
        """Rebuild a clock from :meth:`state_dict` output."""
        clock = cls(state["spec"])
        clock.max_timestamp = state["max_timestamp"]
        clock.late_events = state["late_events"]
        clock._next_index = state["next_index"]
        return clock
