"""AS-level topology substrate.

The paper's algorithm operates on AS paths observed at route collectors and
its scenarios additionally need business relationships (CAIDA serial-1 style)
and customer cones.  Because the real May 2021 routing table and CAIDA data
are not available offline, this package builds an Internet-like substitute:

* :mod:`repro.topology.relationships` -- provider-customer / peer-peer edge
  sets with CAIDA-format (de)serialisation,
* :mod:`repro.topology.generator` -- a hierarchical Internet-like topology
  generator (tier-1 clique, transit tiers, stub ASes, 32-bit ASNs, prefixes),
* :mod:`repro.topology.routing` -- valley-free (Gao-Rexford) path computation
  from every origin towards collector peers,
* :mod:`repro.topology.cone` -- customer cone computation (Figure 6).
"""

from repro.topology.relationships import ASRelationships, Relationship
from repro.topology.generator import (
    ASInfo,
    ASTier,
    InternetTopologyGenerator,
    Topology,
    TopologyConfig,
)
from repro.topology.routing import RoutingEngine, ValleyFreePath
from repro.topology.cone import CustomerCones

__all__ = [
    "ASRelationships",
    "Relationship",
    "ASInfo",
    "ASTier",
    "InternetTopologyGenerator",
    "Topology",
    "TopologyConfig",
    "RoutingEngine",
    "ValleyFreePath",
    "CustomerCones",
]
