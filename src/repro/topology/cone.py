"""Customer cone computation (paper Section 7.3, Figure 6).

The customer cone of an AS is "itself and all ASes that can be reached by
only traversing customer links"; its size serves as a proxy for AS size.
Cones are computed over the provider->customer DAG with memoised bitsets
(arbitrary-precision integers), which keeps the computation linear in the
number of edges for Internet-scale graphs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.bgp.asn import ASN
from repro.topology.relationships import ASRelationships


class CustomerCones:
    """Computes and caches customer cones for an AS relationship graph."""

    def __init__(self, relationships: ASRelationships, ases: Optional[Iterable[ASN]] = None) -> None:
        self.relationships = relationships
        self._ases: List[ASN] = sorted(ases) if ases is not None else sorted(relationships.ases())
        self._index: Dict[ASN, int] = {asn: i for i, asn in enumerate(self._ases)}
        self._cones: Dict[ASN, int] = {}

    # -- core computation -------------------------------------------------------
    def _cone_bits(self, asn: ASN) -> int:
        """The cone of *asn* as a bitset over the AS index (iterative DFS)."""
        cached = self._cones.get(asn)
        if cached is not None:
            return cached

        # Iterative post-order DFS so deep provider chains cannot overflow
        # the Python recursion limit.
        stack: List[tuple] = [(asn, False)]
        visiting: Set[ASN] = set()
        while stack:
            node, processed = stack.pop()
            if processed:
                visiting.discard(node)
                bits = 1 << self._index[node] if node in self._index else 0
                for customer in self.relationships.customers_of(node):
                    if customer in self._cones:
                        bits |= self._cones[customer]
                self._cones[node] = bits
                continue
            if node in self._cones:
                continue
            visiting.add(node)
            stack.append((node, True))
            for customer in self.relationships.customers_of(node):
                if customer not in self._cones and customer not in visiting:
                    stack.append((customer, False))
        return self._cones[asn]

    # -- public API ----------------------------------------------------------------
    def cone(self, asn: ASN) -> Set[ASN]:
        """The customer cone of *asn* as a set of ASNs (includes *asn*)."""
        bits = self._cone_bits(asn)
        members: Set[ASN] = set()
        index = 0
        while bits:
            if bits & 1:
                members.add(self._ases[index])
            bits >>= 1
            index += 1
        return members

    def cone_size(self, asn: ASN) -> int:
        """The number of ASes in the customer cone of *asn* (leafs -> 1)."""
        return self._cone_bits(asn).bit_count()

    def cone_sizes(self, asns: Optional[Iterable[ASN]] = None) -> Dict[ASN, int]:
        """Cone sizes for every AS in *asns* (default: the whole graph)."""
        targets = list(asns) if asns is not None else self._ases
        return {asn: self.cone_size(asn) for asn in targets}

    def in_cone(self, provider: ASN, candidate: ASN) -> bool:
        """``True`` if *candidate* is inside the cone of *provider*."""
        if candidate not in self._index:
            return False
        return bool(self._cone_bits(provider) >> self._index[candidate] & 1)

    def largest(self, count: int = 10) -> List[ASN]:
        """The *count* ASes with the largest customer cones."""
        sizes = self.cone_sizes()
        return sorted(sizes, key=lambda a: (-sizes[a], a))[:count]
