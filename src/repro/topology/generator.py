"""Internet-like AS topology generation.

Builds a hierarchical AS-level graph that mimics the structural properties
the paper's datasets exhibit (Table 1): a small clique of tier-1 providers, a
few thousand transit networks, a large majority (~83%) of stub/leaf ASes, a
substantial share of 32-bit ASNs, and collector peers that are mostly larger
networks.  The generator also hands out prefixes and populates the ASN and
prefix allocation registries used by the sanitation step.

The default sizes are scaled down from the Internet's ~73k ASes so the full
pipeline runs comfortably in CI; every size is configurable through
:class:`TopologyConfig` and the benchmark harness exercises larger instances.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.bgp.asn import ASN, ASNRegistry, MAX_ASN_16BIT
from repro.bgp.prefix import Prefix, PrefixAllocation, PrefixGenerator
from repro.topology.relationships import ASRelationships


class ASTier(enum.Enum):
    """Coarse AS size classes used by the generator."""

    TIER1 = "tier1"
    LARGE_TRANSIT = "large_transit"
    MID_TRANSIT = "mid_transit"
    SMALL_TRANSIT = "small_transit"
    STUB = "stub"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Ordering of tiers from the core outwards (used when picking providers).
_TIER_ORDER: Tuple[ASTier, ...] = (
    ASTier.TIER1,
    ASTier.LARGE_TRANSIT,
    ASTier.MID_TRANSIT,
    ASTier.SMALL_TRANSIT,
    ASTier.STUB,
)


@dataclass(frozen=True)
class ASInfo:
    """Static information about one generated AS."""

    asn: ASN
    tier: ASTier
    prefixes: Tuple[Prefix, ...] = ()

    @property
    def is_stub(self) -> bool:
        """``True`` for stub (leaf candidate) ASes."""
        return self.tier == ASTier.STUB

    @property
    def is_32bit(self) -> bool:
        """``True`` if the ASN does not fit in 16 bits."""
        return self.asn > MAX_ASN_16BIT


@dataclass
class TopologyConfig:
    """Sizing and randomness knobs for the topology generator.

    The defaults produce roughly 2,000 ASes with an Internet-like tier mix
    (~83% stubs) in well under a second; `scaled` builds proportionally
    larger instances.
    """

    seed: int = 1
    n_tier1: int = 12
    n_large_transit: int = 40
    n_mid_transit: int = 120
    n_small_transit: int = 180
    n_stub: int = 1650
    #: Probability that two large-transit ASes peer with each other.
    p_large_peering: float = 0.25
    #: Probability that two mid-transit ASes peer with each other.
    p_mid_peering: float = 0.02
    #: Probability that a small-transit AS peers with another small/mid AS.
    p_small_peering: float = 0.01
    #: Share of ASes that receive a 32-bit ASN (biased towards stubs).
    share_32bit: float = 0.43
    #: Stub multihoming: probability of having a second (third) provider.
    p_stub_second_provider: float = 0.35
    p_stub_third_provider: float = 0.08
    #: Prefixes originated per AS by tier.
    prefixes_per_stub: Tuple[int, int] = (1, 3)
    prefixes_per_transit: Tuple[int, int] = (2, 6)
    #: First ASN handed out (purely cosmetic).
    first_asn: int = 3000

    @classmethod
    def scaled(cls, factor: float, *, seed: int = 1) -> "TopologyConfig":
        """A configuration scaled by *factor* relative to the defaults."""
        base = cls(seed=seed)
        return cls(
            seed=seed,
            n_tier1=max(4, int(base.n_tier1 * min(factor, 2.0))),
            n_large_transit=max(6, int(base.n_large_transit * factor)),
            n_mid_transit=max(10, int(base.n_mid_transit * factor)),
            n_small_transit=max(10, int(base.n_small_transit * factor)),
            n_stub=max(50, int(base.n_stub * factor)),
        )

    @property
    def total_ases(self) -> int:
        """Total number of ASes the configuration will generate."""
        return (
            self.n_tier1
            + self.n_large_transit
            + self.n_mid_transit
            + self.n_small_transit
            + self.n_stub
        )


@dataclass
class Topology:
    """A generated AS-level topology plus its registries."""

    ases: Dict[ASN, ASInfo]
    relationships: ASRelationships
    asn_registry: ASNRegistry
    prefix_allocation: PrefixAllocation
    config: TopologyConfig

    # -- convenience accessors -------------------------------------------------
    def __len__(self) -> int:
        return len(self.ases)

    def __contains__(self, asn: object) -> bool:
        return asn in self.ases

    def asns(self) -> List[ASN]:
        """All ASNs, sorted for determinism."""
        return sorted(self.ases)

    def by_tier(self, tier: ASTier) -> List[ASN]:
        """All ASNs of the given *tier*, sorted."""
        return sorted(asn for asn, info in self.ases.items() if info.tier == tier)

    def transit_asns(self) -> List[ASN]:
        """ASes that have at least one customer."""
        return sorted(asn for asn in self.ases if self.relationships.customers_of(asn))

    def leaf_asns(self) -> List[ASN]:
        """ASes without customers (the AS-level periphery)."""
        return sorted(asn for asn in self.ases if not self.relationships.customers_of(asn))

    def prefixes_of(self, asn: ASN) -> Tuple[Prefix, ...]:
        """The prefixes originated by *asn*."""
        return self.ases[asn].prefixes

    def count_32bit(self) -> int:
        """Number of ASes with 32-bit-only ASNs (Table 1 row)."""
        return sum(1 for info in self.ases.values() if info.is_32bit)

    def select_collector_peers(
        self, count: int, *, seed: int = 7, leaf_share: float = 0.08
    ) -> List[ASN]:
        """Choose *count* ASes to act as collector peers.

        Collector peers in the wild are predominantly transit networks and
        IXP-connected providers; a small share are stubs.  Selection is
        deterministic for a given seed.
        """
        rng = random.Random(seed)
        transit = self.transit_asns()
        leaves = self.leaf_asns()
        n_leaf = min(len(leaves), int(count * leaf_share))
        n_transit = min(len(transit), count - n_leaf)
        # Weight transit choice towards the core: tier-1 and large transit first.
        weighted: List[ASN] = []
        for asn in transit:
            tier = self.ases[asn].tier
            weight = {
                ASTier.TIER1: 12,
                ASTier.LARGE_TRANSIT: 8,
                ASTier.MID_TRANSIT: 4,
                ASTier.SMALL_TRANSIT: 2,
                ASTier.STUB: 1,
            }[tier]
            weighted.extend([asn] * weight)
        peers: Set[ASN] = set()
        while len(peers) < n_transit and weighted:
            peers.add(rng.choice(weighted))
        peers.update(rng.sample(leaves, n_leaf) if leaves else [])
        return sorted(peers)

    def grow(self, n_new_stubs: int, *, seed: int = 99) -> "Topology":
        """Return a copy of the topology with *n_new_stubs* additional stubs.

        Used by the longitudinal experiment (Figure 4) to model gradual
        Internet growth between snapshots while keeping the existing ASes and
        their behaviour untouched.
        """
        generator = InternetTopologyGenerator(self.config)
        return generator.grow(self, n_new_stubs, seed=seed)


class InternetTopologyGenerator:
    """Generates :class:`Topology` instances from a :class:`TopologyConfig`."""

    def __init__(self, config: Optional[TopologyConfig] = None) -> None:
        self.config = config or TopologyConfig()

    # -- public API --------------------------------------------------------------
    def generate(self) -> Topology:
        """Generate a fresh topology."""
        config = self.config
        rng = random.Random(config.seed)
        prefix_generator = PrefixGenerator()

        asns_by_tier = self._assign_asns(rng)
        relationships = ASRelationships()
        ases: Dict[ASN, ASInfo] = {}

        tier1 = asns_by_tier[ASTier.TIER1]
        large = asns_by_tier[ASTier.LARGE_TRANSIT]
        mid = asns_by_tier[ASTier.MID_TRANSIT]
        small = asns_by_tier[ASTier.SMALL_TRANSIT]
        stubs = asns_by_tier[ASTier.STUB]

        # Tier-1 clique: full mesh of peer links.
        for i, a in enumerate(tier1):
            for b in tier1[i + 1 :]:
                relationships.add_p2p(a, b)

        # Large transit: 2-3 tier-1 providers, dense peering among themselves.
        for asn in large:
            for provider in rng.sample(tier1, k=min(len(tier1), rng.randint(2, 3))):
                relationships.add_p2c(provider, asn)
        for i, a in enumerate(large):
            for b in large[i + 1 :]:
                if rng.random() < config.p_large_peering:
                    relationships.add_p2p(a, b)

        # Mid transit: providers from large transit (sometimes tier-1), sparse peering.
        for asn in mid:
            provider_pool = large if rng.random() < 0.85 else tier1
            for provider in rng.sample(provider_pool, k=min(len(provider_pool), rng.randint(1, 3))):
                relationships.add_p2c(provider, asn)
        for i, a in enumerate(mid):
            for b in mid[i + 1 :]:
                if rng.random() < config.p_mid_peering:
                    relationships.add_p2p(a, b)

        # Small transit: providers from mid or large transit, occasional peering.
        for asn in small:
            provider_pool = mid if rng.random() < 0.6 else large
            for provider in rng.sample(provider_pool, k=min(len(provider_pool), rng.randint(1, 2))):
                relationships.add_p2c(provider, asn)
            if rng.random() < config.p_small_peering and len(small) > 1:
                peer = rng.choice(small)
                if peer != asn:
                    relationships.add_p2p(asn, peer)

        # Stubs: providers drawn from every transit tier.  Weighting the pool
        # towards mid and large transit keeps the AS-level graph flat (real
        # collector-observed paths average roughly four hops), while still
        # leaving room for deeper small-transit chains.
        stub_provider_pool = small + mid * 2 + large * 2
        for asn in stubs:
            providers = {rng.choice(stub_provider_pool)}
            if rng.random() < config.p_stub_second_provider:
                providers.add(rng.choice(stub_provider_pool))
            if rng.random() < config.p_stub_third_provider:
                providers.add(rng.choice(large if large else stub_provider_pool))
            for provider in providers:
                if provider != asn:
                    relationships.add_p2c(provider, asn)

        # Prefixes and AS info.
        for tier, tier_asns in asns_by_tier.items():
            for asn in tier_asns:
                lo, hi = (
                    self.config.prefixes_per_stub
                    if tier == ASTier.STUB
                    else self.config.prefixes_per_transit
                )
                prefixes = tuple(prefix_generator.take(rng.randint(lo, hi)))
                ases[asn] = ASInfo(asn=asn, tier=tier, prefixes=prefixes)

        asn_registry = ASNRegistry.from_asns(ases)
        prefix_allocation = PrefixAllocation.default_internet()
        return Topology(
            ases=ases,
            relationships=relationships,
            asn_registry=asn_registry,
            prefix_allocation=prefix_allocation,
            config=config,
        )

    def grow(self, topology: Topology, n_new_stubs: int, *, seed: int = 99) -> Topology:
        """Add *n_new_stubs* new stub ASes to an existing topology."""
        rng = random.Random(seed)
        prefix_generator = PrefixGenerator(next_index=sum(len(i.prefixes) for i in topology.ases.values()))
        max_asn = max(topology.ases)
        provider_pool = [
            asn
            for asn in topology.asns()
            if topology.ases[asn].tier in (ASTier.SMALL_TRANSIT, ASTier.MID_TRANSIT)
        ]
        new_ases = dict(topology.ases)
        relationships = topology.relationships  # shared on purpose: growth is additive
        registry = topology.asn_registry
        next_asn = max_asn + 1
        for offset in range(n_new_stubs):
            asn = next_asn + offset
            if rng.random() < self.config.share_32bit:
                asn += 4_200_000  # push into 32-bit space while staying public
            while asn in new_ases:
                asn += 1
            providers = {rng.choice(provider_pool)}
            if rng.random() < self.config.p_stub_second_provider:
                providers.add(rng.choice(provider_pool))
            for provider in providers:
                relationships.add_p2c(provider, asn)
            prefixes = tuple(prefix_generator.take(rng.randint(*self.config.prefixes_per_stub)))
            new_ases[asn] = ASInfo(asn=asn, tier=ASTier.STUB, prefixes=prefixes)
            registry.allocate(asn)
        return Topology(
            ases=new_ases,
            relationships=relationships,
            asn_registry=registry,
            prefix_allocation=topology.prefix_allocation,
            config=topology.config,
        )

    # -- internals ------------------------------------------------------------------
    def _assign_asns(self, rng: random.Random) -> Dict[ASTier, List[ASN]]:
        """Hand out ASNs per tier; a configurable share are 32-bit ASNs."""
        config = self.config
        sizes = {
            ASTier.TIER1: config.n_tier1,
            ASTier.LARGE_TRANSIT: config.n_large_transit,
            ASTier.MID_TRANSIT: config.n_mid_transit,
            ASTier.SMALL_TRANSIT: config.n_small_transit,
            ASTier.STUB: config.n_stub,
        }
        result: Dict[ASTier, List[ASN]] = {tier: [] for tier in _TIER_ORDER}
        next_16bit = config.first_asn
        next_32bit = 200_000  # comfortably beyond the 16-bit space, public
        # 32-bit ASNs are overwhelmingly held by newer, smaller networks:
        # core tiers always get 16-bit ASNs, the 32-bit share is spread over
        # small transit and stub ASes.
        eligible_32bit = sizes[ASTier.SMALL_TRANSIT] + sizes[ASTier.STUB]
        want_32bit = int(config.share_32bit * config.total_ases)
        p_32bit = min(1.0, want_32bit / eligible_32bit) if eligible_32bit else 0.0
        for tier in _TIER_ORDER:
            for _ in range(sizes[tier]):
                use_32bit = tier in (ASTier.SMALL_TRANSIT, ASTier.STUB) and rng.random() < p_32bit
                if use_32bit:
                    result[tier].append(next_32bit)
                    next_32bit += 1
                else:
                    result[tier].append(next_16bit)
                    next_16bit += 1
        return result
