"""AS business relationships.

Models the two relationship types the paper relies on (Section 3.1):
provider-customer (``p2c``) and peer-to-peer (``p2p``).  The selective
tagging scenarios (Section 6.2) need to know, for a link ``A_x -- A_{x-1}``,
whether the upstream neighbour is a provider, peer, or customer of ``A_x``;
Figure 6 needs customer cones which are derived from the same edge sets.

Serialisation follows the CAIDA AS-relationships text format
(``provider|customer|-1`` and ``peer|peer|0`` lines) so datasets can be
exported and re-imported like the real thing.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, TextIO, Tuple

from repro.bgp.asn import ASN


class Relationship(enum.Enum):
    """The relationship of a neighbour *relative to a given AS*."""

    PROVIDER = "provider"   # the neighbour provides transit to us
    CUSTOMER = "customer"   # the neighbour is our customer
    PEER = "peer"           # settlement-free peer
    NONE = "none"           # not adjacent

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ASRelationships:
    """A mutable set of p2c and p2p edges over the AS graph."""

    def __init__(self) -> None:
        self._providers: Dict[ASN, Set[ASN]] = defaultdict(set)
        self._customers: Dict[ASN, Set[ASN]] = defaultdict(set)
        self._peers: Dict[ASN, Set[ASN]] = defaultdict(set)

    # -- mutation -------------------------------------------------------------
    def add_p2c(self, provider: ASN, customer: ASN) -> None:
        """Add a provider-customer edge."""
        if provider == customer:
            raise ValueError("an AS cannot be its own provider")
        self._customers[provider].add(customer)
        self._providers[customer].add(provider)

    def add_p2p(self, a: ASN, b: ASN) -> None:
        """Add a peer-to-peer edge."""
        if a == b:
            raise ValueError("an AS cannot peer with itself")
        self._peers[a].add(b)
        self._peers[b].add(a)

    # -- queries ---------------------------------------------------------------
    def providers_of(self, asn: ASN) -> FrozenSet[ASN]:
        """The providers of *asn*."""
        return frozenset(self._providers.get(asn, ()))

    def customers_of(self, asn: ASN) -> FrozenSet[ASN]:
        """The customers of *asn*."""
        return frozenset(self._customers.get(asn, ()))

    def peers_of(self, asn: ASN) -> FrozenSet[ASN]:
        """The settlement-free peers of *asn*."""
        return frozenset(self._peers.get(asn, ()))

    def neighbors_of(self, asn: ASN) -> FrozenSet[ASN]:
        """All BGP neighbours of *asn*."""
        return self.providers_of(asn) | self.customers_of(asn) | self.peers_of(asn)

    def relationship(self, asn: ASN, neighbor: ASN) -> Relationship:
        """The relationship of *neighbor* from the perspective of *asn*."""
        if neighbor in self._providers.get(asn, ()):
            return Relationship.PROVIDER
        if neighbor in self._customers.get(asn, ()):
            return Relationship.CUSTOMER
        if neighbor in self._peers.get(asn, ()):
            return Relationship.PEER
        return Relationship.NONE

    def degree(self, asn: ASN) -> int:
        """Number of neighbours of *asn*."""
        return len(self.neighbors_of(asn))

    def ases(self) -> Set[ASN]:
        """Every AS that appears in at least one edge."""
        result: Set[ASN] = set()
        result.update(self._providers.keys())
        result.update(self._customers.keys())
        result.update(self._peers.keys())
        return result

    def is_leaf(self, asn: ASN) -> bool:
        """``True`` if *asn* has no customers (an AS-level periphery AS)."""
        return not self._customers.get(asn)

    def p2c_edges(self) -> Iterator[Tuple[ASN, ASN]]:
        """Iterate ``(provider, customer)`` edges."""
        for provider, customers in self._customers.items():
            for customer in customers:
                yield provider, customer

    def p2p_edges(self) -> Iterator[Tuple[ASN, ASN]]:
        """Iterate ``(a, b)`` peer edges exactly once (a < b)."""
        for a, peers in self._peers.items():
            for b in peers:
                if a < b:
                    yield a, b

    def edge_count(self) -> int:
        """Total number of distinct edges."""
        p2c = sum(len(v) for v in self._customers.values())
        p2p = sum(len(v) for v in self._peers.values()) // 2
        return p2c + p2p

    # -- CAIDA-format serialisation ---------------------------------------------
    def to_caida_lines(self) -> List[str]:
        """Serialise to CAIDA AS-relationships text lines."""
        lines = [f"{p}|{c}|-1" for p, c in sorted(self.p2c_edges())]
        lines += [f"{a}|{b}|0" for a, b in sorted(self.p2p_edges())]
        return lines

    def dump(self, stream: TextIO) -> None:
        """Write the CAIDA-format serialisation to *stream*."""
        for line in self.to_caida_lines():
            stream.write(line + "\n")

    @classmethod
    def from_caida_lines(cls, lines: Iterable[str]) -> "ASRelationships":
        """Parse CAIDA AS-relationships text lines (comments allowed)."""
        relationships = cls()
        for raw in lines:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("|")
            if len(parts) < 3:
                raise ValueError(f"malformed relationship line: {raw!r}")
            a, b, kind = int(parts[0]), int(parts[1]), int(parts[2])
            if kind == -1:
                relationships.add_p2c(a, b)
            elif kind == 0:
                relationships.add_p2p(a, b)
            else:
                raise ValueError(f"unknown relationship type {kind} in line {raw!r}")
        return relationships

    def validate_acyclic(self) -> bool:
        """Check the p2c hierarchy is free of provider loops.

        The topology generator guarantees this by construction; imported
        datasets may violate it, in which case customer-cone computation
        falls back to a slower cycle-tolerant mode.
        """
        state: Dict[ASN, int] = {}

        def visit(node: ASN) -> bool:
            state[node] = 1
            for customer in self._customers.get(node, ()):
                mark = state.get(customer, 0)
                if mark == 1:
                    return False
                if mark == 0 and not visit(customer):
                    return False
            state[node] = 2
            return True

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10000 + len(self.ases())))
        try:
            return all(visit(asn) for asn in self.ases() if state.get(asn, 0) == 0)
        finally:
            sys.setrecursionlimit(old_limit)
