"""Valley-free routing over the generated AS topology.

The inference algorithm needs realistic AS paths as observed at route
collectors: for each collector peer ``P`` and each origin AS ``O`` the path
``P, ..., O`` the collector records.  We compute these paths under the
standard Gao-Rexford model:

* **export policy** -- routes learned from customers are exported to
  everyone; routes learned from peers or providers are exported only to
  customers.  Consequently every AS path, read from the origin towards the
  collector peer, consists of zero or more *up* (customer->provider) hops,
  at most one peer-peer hop, and zero or more *down* (provider->customer)
  hops;
* **route preference** -- an AS prefers routes learned from customers over
  routes learned from peers over routes learned from providers, breaking
  ties on AS-path length.

The search runs from the collector peer outwards with a three-phase state
machine, which yields, for every reachable origin, the shortest valley-free
path consistent with the peer's route preference.  This is the standard
approach used by AS-topology simulators and gives exactly the path shape the
paper's datasets exhibit (mean lengths of 3-5 hops, maximum well under 19).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.bgp.asn import ASN
from repro.bgp.path import ASPath
from repro.topology.generator import Topology
from repro.topology.relationships import ASRelationships


#: Search phases: still ascending, crossed the (single) peer link, descending.
_PHASE_UP = 0
_PHASE_PEER = 1
_PHASE_DOWN = 2

#: Route preference ranks for the first hop out of the collector peer.
_RANK_CUSTOMER = 0
_RANK_PEER = 1
_RANK_PROVIDER = 2


@dataclass(frozen=True)
class ValleyFreePath:
    """A computed best path from a collector peer to an origin AS."""

    peer: ASN
    origin: ASN
    path: ASPath
    #: 0 = customer route, 1 = peer route, 2 = provider route (at the peer).
    preference_rank: int

    def __len__(self) -> int:
        return len(self.path)


class RoutingEngine:
    """Computes per-collector-peer best valley-free paths to every origin."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.relationships: ASRelationships = topology.relationships

    # -- single peer -----------------------------------------------------------
    def best_paths_from_peer(self, peer: ASN) -> Dict[ASN, ValleyFreePath]:
        """Best path from collector peer *peer* to every reachable origin.

        Returns a mapping ``origin ASN -> ValleyFreePath`` (the peer itself is
        included with a single-element path, since peers originate their own
        prefixes too).
        """
        # best[asn] = (rank, length) of the best known route; predecessor
        # reconstruction uses parent[(asn, phase)].
        best: Dict[ASN, Tuple[int, int]] = {}
        best_state: Dict[Tuple[ASN, int], Tuple[int, int]] = {}
        parent: Dict[Tuple[ASN, int], Optional[Tuple[ASN, int]]] = {}
        result: Dict[ASN, ValleyFreePath] = {}

        start_state = (peer, _PHASE_UP)
        heap: List[Tuple[int, int, ASN, int]] = [(0, 1, peer, _PHASE_UP)]
        best_state[start_state] = (0, 1)
        parent[start_state] = None

        while heap:
            rank, length, node, phase = heapq.heappop(heap)
            if best_state.get((node, phase), (99, 1 << 30)) < (rank, length):
                continue
            # Record the overall best route for this node (first settle wins).
            if node not in best:
                best[node] = (rank, length)
                result[node] = ValleyFreePath(
                    peer=peer,
                    origin=node,
                    path=self._reconstruct(parent, (node, phase)),
                    preference_rank=rank,
                )

            for neighbor, next_phase, next_rank in self._transitions(node, phase, rank, length):
                state = (neighbor, next_phase)
                candidate = (next_rank, length + 1)
                if best_state.get(state, (99, 1 << 30)) <= candidate:
                    continue
                # No need to continue exploring through a node that already
                # has a strictly better settled route of lower rank & length.
                best_state[state] = candidate
                parent[state] = (node, phase)
                heapq.heappush(heap, (next_rank, length + 1, neighbor, next_phase))
        return result

    def _transitions(
        self, node: ASN, phase: int, rank: int, length: int
    ) -> Iterable[Tuple[ASN, int, int]]:
        """Yield ``(neighbor, next_phase, next_rank)`` moves from a state.

        The rank of a path is decided by the first hop out of the collector
        peer (its local preference); subsequent hops inherit it.
        """
        relationships = self.relationships
        first_hop = length == 1
        if phase == _PHASE_UP:
            for provider in relationships.providers_of(node):
                yield provider, _PHASE_UP, _RANK_PROVIDER if first_hop else rank
            for peer in relationships.peers_of(node):
                yield peer, _PHASE_PEER, _RANK_PEER if first_hop else rank
            for customer in relationships.customers_of(node):
                yield customer, _PHASE_DOWN, _RANK_CUSTOMER if first_hop else rank
        else:
            for customer in relationships.customers_of(node):
                yield customer, _PHASE_DOWN, rank

    @staticmethod
    def _reconstruct(
        parent: Mapping[Tuple[ASN, int], Optional[Tuple[ASN, int]]], state: Tuple[ASN, int]
    ) -> ASPath:
        """Rebuild the AS path (collector peer first) for a settled state."""
        asns: List[ASN] = []
        current: Optional[Tuple[ASN, int]] = state
        while current is not None:
            asns.append(current[0])
            current = parent[current]
        asns.reverse()
        return ASPath(asns)

    # -- all peers ----------------------------------------------------------------
    def best_paths(self, peers: Sequence[ASN]) -> Dict[ASN, Dict[ASN, ValleyFreePath]]:
        """Best paths for several collector peers: ``{peer: {origin: path}}``."""
        return {peer: self.best_paths_from_peer(peer) for peer in peers}

    def paths_to_origin(
        self, peers: Sequence[ASN], origin: ASN
    ) -> List[ValleyFreePath]:
        """The best path from each peer in *peers* towards a single origin.

        Convenience used by the PEERING-style validation, where a single
        controlled origin announces a prefix and we ask how each collector
        peer reaches it.
        """
        paths: List[ValleyFreePath] = []
        for peer in peers:
            per_origin = self.best_paths_from_peer(peer)
            if origin in per_origin:
                paths.append(per_origin[origin])
        return paths
