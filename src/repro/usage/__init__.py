"""Community usage model (paper Sections 3.3 and 6).

This package implements the paper's *mental model* of per-AS community
usage:

* :mod:`repro.usage.roles` -- the tagging (tagger/silent) and forwarding
  (forward/cleaner) roles, selective-tagging policies, and role assignments,
* :mod:`repro.usage.propagation` -- the formal ``tagging()`` /
  ``forwarding()`` / ``output()`` functions that compute the community set a
  collector peer exports for a given AS path,
* :mod:`repro.usage.noise` -- the two noise sources of Section 6.1 (action
  communities named after the upstream neighbour, and originator-named
  communities),
* :mod:`repro.usage.visibility` -- ground-truth bookkeeping of which roles
  are hidden behind cleaners and which ASes are leaves,
* :mod:`repro.usage.scenarios` -- the ground-truth scenario builders
  (alltf, alltc, random, random+noise, random-p, random-pp) plus a
  "realistic" role model for the Section 7 style analysis.
"""

from repro.usage.roles import (
    ForwardingRole,
    RoleAssignment,
    SelectivePolicy,
    TaggingRole,
    UsageRole,
)
from repro.usage.propagation import CommunityPropagator, TaggerCommunityPlan
from repro.usage.noise import NoiseConfig, NoiseInjector
from repro.usage.visibility import VisibilityAnalysis
from repro.usage.scenarios import (
    GroundTruthDataset,
    ScenarioBuilder,
    ScenarioName,
    build_scenario,
)

__all__ = [
    "TaggingRole",
    "ForwardingRole",
    "SelectivePolicy",
    "UsageRole",
    "RoleAssignment",
    "CommunityPropagator",
    "TaggerCommunityPlan",
    "NoiseConfig",
    "NoiseInjector",
    "VisibilityAnalysis",
    "GroundTruthDataset",
    "ScenarioBuilder",
    "ScenarioName",
    "build_scenario",
]
