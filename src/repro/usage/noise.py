"""Noise injection (paper Section 6.1).

The ``random+noise`` scenario stresses the inference with two ambiguity
sources that occur in real data:

1. **action communities** -- an AS attaches a community whose upper field is
   the ASN of its *upstream neighbour* (e.g. a customer asking its provider
   to blackhole or prepend), so the community looks as if the neighbour had
   tagged it;
2. **originator-named communities** -- a community whose upper field is the
   ASN of the *origin* of the path appears even though the origin's own tags
   may have been cleaned, which stresses the forwarding inference.

Following the paper, roughly 50% of ASes are noise-capable and each noise
source fires with 5% probability per ``(path, comm)`` tuple, so an affected
AS exhibits inconsistent behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Set

from repro.bgp.asn import ASN
from repro.bgp.community import CommunitySet, make_community
from repro.bgp.path import ASPath


@dataclass
class NoiseConfig:
    """Parameters of the two Section 6.1 noise sources."""

    #: Share of ASes that may emit noise at all.
    share_of_ases: float = 0.5
    #: Per-tuple probability that a noise-capable AS adds an action community.
    p_action_community: float = 0.05
    #: Per-tuple probability that an originator-named community is added.
    p_origin_community: float = 0.05
    #: Lower field used for injected communities (value is irrelevant).
    lower_value: int = 666
    seed: int = 0

    @property
    def enabled(self) -> bool:
        """``True`` when any noise can be generated at all."""
        return self.share_of_ases > 0 and (
            self.p_action_community > 0 or self.p_origin_community > 0
        )


class NoiseInjector:
    """Draws the per-path noise additions for a ground-truth scenario."""

    def __init__(self, config: NoiseConfig, asns: Iterable[ASN]) -> None:
        self.config = config
        rng = random.Random(config.seed)
        ordered = sorted(asns)
        n_noisy = int(len(ordered) * config.share_of_ases)
        self.noisy_ases: Set[ASN] = set(rng.sample(ordered, n_noisy)) if n_noisy else set()
        self._rng = random.Random(config.seed + 1)

    def is_noisy(self, asn: ASN) -> bool:
        """``True`` if *asn* belongs to the noise-capable half of the ASes."""
        return asn in self.noisy_ases

    def extra_for_path(self, path: ASPath) -> Dict[int, CommunitySet]:
        """Noise communities to inject, keyed by 1-based path index.

        The returned mapping feeds
        :meth:`repro.usage.propagation.CommunityPropagator.output_with_extra`.
        """
        if not self.config.enabled:
            return {}
        extra: Dict[int, CommunitySet] = {}
        asns = path.asns
        origin = path.origin
        for index in range(2, len(asns) + 1):  # A_2 .. A_n have an upstream neighbour
            asn = asns[index - 1]
            if asn not in self.noisy_ases:
                continue
            additions = []
            if self._rng.random() < self.config.p_action_community:
                upstream = asns[index - 2]
                additions.append(make_community(upstream, self.config.lower_value))
            if self._rng.random() < self.config.p_origin_community and asn != origin:
                additions.append(make_community(origin, self.config.lower_value))
            if additions:
                extra[index] = CommunitySet(additions)
        return extra
