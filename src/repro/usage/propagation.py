"""The formal community propagation model (paper Section 3.3.2).

For an AS ``A`` on a path the community set it exports is::

    output(A) = tagging(A)  ∪  forwarding(A, input(A))
    input(A_x) = output(A_{x+1})        (the origin A_n has empty input)

* ``tagging(A)`` returns a set of communities ``A:*`` when ``A`` is a tagger
  (subject to its selective policy and the neighbour the route is exported
  to), and the empty set when it is silent.
* ``forwarding(A, input)`` returns ``input`` unchanged when ``A`` is a
  forward AS and the empty set when it is a cleaner.

:class:`CommunityPropagator` evaluates this recursion along an AS path and
returns ``output(A_1)`` -- the community set a route collector records for
that path.  This is how the ground-truth scenario datasets of Section 6 are
generated on top of real (here: generated) AS paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.bgp.asn import ASN
from repro.bgp.community import AnyCommunity, CommunitySet, make_community
from repro.bgp.path import ASPath
from repro.topology.relationships import ASRelationships, Relationship
from repro.usage.roles import RoleAssignment, UsageRole


@dataclass
class TaggerCommunityPlan:
    """Which concrete community values each tagger attaches.

    Real taggers use a handful of informational values (ingress location,
    route type, ...).  The plan deterministically derives 1..``max_values``
    lower-field values per tagger so Figure 5 style analyses see realistic
    value diversity while the upper field always names the tagger, which is
    the paper's core assumption.
    """

    max_values: int = 3
    seed: int = 0
    _cache: Dict[ASN, Tuple[AnyCommunity, ...]] = field(default_factory=dict, repr=False)

    def communities_for(self, asn: ASN) -> Tuple[AnyCommunity, ...]:
        """The informational communities AS *asn* attaches when tagging."""
        cached = self._cache.get(asn)
        if cached is not None:
            return cached
        rng = random.Random(f"{asn}:{self.seed}")
        count = rng.randint(1, max(1, self.max_values))
        values = tuple(
            make_community(asn, lower=rng.randint(1, 999)) for _ in range(count)
        )
        # Deduplicate while preserving determinism (same lower value may repeat).
        unique = tuple(dict.fromkeys(values))
        self._cache[asn] = unique
        return unique


class CommunityPropagator:
    """Evaluates ``output(A_1)`` for AS paths under a role assignment."""

    def __init__(
        self,
        roles: RoleAssignment,
        *,
        relationships: Optional[ASRelationships] = None,
        plan: Optional[TaggerCommunityPlan] = None,
        default_role: Optional[UsageRole] = None,
    ) -> None:
        self.roles = roles
        self.relationships = relationships
        self.plan = plan or TaggerCommunityPlan()
        self.default_role = default_role

    # -- the formal model ------------------------------------------------------------
    def _role_of(self, asn: ASN) -> UsageRole:
        role = self.roles.get(asn, self.default_role)
        if role is None:
            raise KeyError(f"no usage role assigned to AS {asn}")
        return role

    def _upstream_relationship(
        self, asn: ASN, upstream: Optional[ASN]
    ) -> Optional[Relationship]:
        """The relationship of the next-hop receiver, from *asn*'s view.

        ``None`` when the receiver is the route collector itself (i.e. *asn*
        is the collector peer), or when no relationship data is available, in
        which case selective policies degrade gracefully to tagging.
        """
        if upstream is None or self.relationships is None:
            return None
        return self.relationships.relationship(asn, upstream)

    def tagging(self, asn: ASN, upstream: Optional[ASN]) -> CommunitySet:
        """``tagging(A)``: the communities *asn* adds towards *upstream*."""
        role = self._role_of(asn)
        if not role.is_tagger:
            return CommunitySet.empty()
        relationship = self._upstream_relationship(asn, upstream)
        if not role.selective.allows(relationship):
            return CommunitySet.empty()
        return CommunitySet(self.plan.communities_for(asn))

    def forwarding(self, asn: ASN, input_set: CommunitySet) -> CommunitySet:
        """``forwarding(A, input)``: *input* for forward ASes, else empty."""
        role = self._role_of(asn)
        return input_set if role.is_forward else CommunitySet.empty()

    def output(self, path: ASPath) -> CommunitySet:
        """``output(A_1)`` for the whole path (collector peer first).

        Walks the path from the origin ``A_n`` towards the collector peer
        ``A_1``; each hop combines its own tagging with the forwarded input,
        exactly as the recursive definition prescribes.
        """
        current = CommunitySet.empty()
        asns = path.asns
        for index in range(len(asns) - 1, -1, -1):
            asn = asns[index]
            upstream = asns[index - 1] if index > 0 else None
            current = self.tagging(asn, upstream) | self.forwarding(asn, current)
        return current

    def output_with_extra(self, path: ASPath, extra: Dict[int, CommunitySet]) -> CommunitySet:
        """``output(A_1)`` with extra communities injected at given hops.

        *extra* maps a 1-based path index to communities added by that AS in
        addition to its normal tagging — the mechanism the noise injector
        (Section 6.1) uses for action-style communities.  Injected
        communities are subject to the forwarding behaviour of all upstream
        ASes like any other community.
        """
        current = CommunitySet.empty()
        asns = path.asns
        for index in range(len(asns) - 1, -1, -1):
            asn = asns[index]
            upstream = asns[index - 1] if index > 0 else None
            current = self.tagging(asn, upstream) | self.forwarding(asn, current)
            injected = extra.get(index + 1)
            if injected:
                current = current | injected
        return current
