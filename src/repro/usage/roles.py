"""Community usage roles and role assignments.

The paper's mental model (Section 3.3) gives every AS two independent
properties:

* **tagging behaviour** -- ``tagger`` (adds its own informational communities
  on external sessions) or ``silent`` (does not),
* **forwarding behaviour** -- ``forward`` (propagates communities set by
  other taggers) or ``cleaner`` (strips them).

Selective behaviour (Section 3.3.3 / 6.2) restricts *where* a tagger adds its
communities: ``random-p`` taggers skip provider links, ``random-pp`` taggers
tag only towards customers and collectors.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.bgp.asn import ASN
from repro.topology.relationships import Relationship


class TaggingRole(enum.Enum):
    """Ground-truth tagging behaviour."""

    TAGGER = "tagger"
    SILENT = "silent"

    @property
    def code(self) -> str:
        """Single-character code used in the paper's tables (``t`` / ``s``)."""
        return "t" if self is TaggingRole.TAGGER else "s"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ForwardingRole(enum.Enum):
    """Ground-truth forwarding behaviour."""

    FORWARD = "forward"
    CLEANER = "cleaner"

    @property
    def code(self) -> str:
        """Single-character code used in the paper's tables (``f`` / ``c``)."""
        return "f" if self is ForwardingRole.FORWARD else "c"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class SelectivePolicy(enum.Enum):
    """Where a selective tagger adds its communities.

    ``EVERYWHERE`` is consistent behaviour.  ``NOT_TO_PROVIDERS`` is the
    random-p scenario (tag towards peers, customers, and collectors), and
    ``ONLY_TO_CUSTOMERS`` the random-pp scenario (tag towards customers and
    collectors only).  ``ONLY_TO_COLLECTORS`` models the worst case discussed
    in Section 5.4 where an AS tags exclusively towards route collectors.
    """

    EVERYWHERE = "everywhere"
    NOT_TO_PROVIDERS = "not_to_providers"
    ONLY_TO_CUSTOMERS = "only_to_customers"
    ONLY_TO_COLLECTORS = "only_to_collectors"

    def allows(self, upstream_relationship: Optional[Relationship]) -> bool:
        """Does the policy tag a route exported to this kind of neighbour?

        *upstream_relationship* is the relationship of the AS that receives
        the announcement, from the tagger's perspective; ``None`` means the
        receiver is a route collector.
        """
        if upstream_relationship is None:
            return True  # every policy tags towards collectors
        if self is SelectivePolicy.EVERYWHERE:
            return True
        if self is SelectivePolicy.NOT_TO_PROVIDERS:
            return upstream_relationship is not Relationship.PROVIDER
        if self is SelectivePolicy.ONLY_TO_CUSTOMERS:
            return upstream_relationship is Relationship.CUSTOMER
        return False  # ONLY_TO_COLLECTORS

    @property
    def is_selective(self) -> bool:
        """``True`` for any policy other than consistent tagging."""
        return self is not SelectivePolicy.EVERYWHERE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class UsageRole:
    """The complete ground-truth community usage behaviour of one AS."""

    tagging: TaggingRole
    forwarding: ForwardingRole
    selective: SelectivePolicy = SelectivePolicy.EVERYWHERE

    @property
    def code(self) -> str:
        """Two-character code, e.g. ``tf`` (tagger-forward)."""
        return self.tagging.code + self.forwarding.code

    @property
    def is_tagger(self) -> bool:
        return self.tagging is TaggingRole.TAGGER

    @property
    def is_silent(self) -> bool:
        return self.tagging is TaggingRole.SILENT

    @property
    def is_forward(self) -> bool:
        return self.forwarding is ForwardingRole.FORWARD

    @property
    def is_cleaner(self) -> bool:
        return self.forwarding is ForwardingRole.CLEANER

    @property
    def is_selective_tagger(self) -> bool:
        """``True`` if the AS tags, but not on every external session."""
        return self.is_tagger and self.selective.is_selective

    @classmethod
    def from_code(cls, code: str, selective: SelectivePolicy = SelectivePolicy.EVERYWHERE) -> "UsageRole":
        """Build a role from a two-character code such as ``"tf"``."""
        if len(code) != 2 or code[0] not in "ts" or code[1] not in "fc":
            raise ValueError(f"invalid role code {code!r}")
        tagging = TaggingRole.TAGGER if code[0] == "t" else TaggingRole.SILENT
        forwarding = ForwardingRole.FORWARD if code[1] == "f" else ForwardingRole.CLEANER
        return cls(tagging, forwarding, selective)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f" ({self.selective})" if self.selective.is_selective else ""
        return self.code + suffix


#: The four consistent role codes used throughout the paper.
ROLE_CODES: Tuple[str, ...] = ("tf", "tc", "sf", "sc")


class RoleAssignment:
    """A mapping of ASN to ground-truth :class:`UsageRole`."""

    def __init__(self, roles: Optional[Mapping[ASN, UsageRole]] = None) -> None:
        self._roles: Dict[ASN, UsageRole] = dict(roles or {})

    # -- mapping protocol ---------------------------------------------------------
    def __getitem__(self, asn: ASN) -> UsageRole:
        return self._roles[asn]

    def __setitem__(self, asn: ASN, role: UsageRole) -> None:
        self._roles[asn] = role

    def __contains__(self, asn: object) -> bool:
        return asn in self._roles

    def __len__(self) -> int:
        return len(self._roles)

    def __iter__(self) -> Iterator[ASN]:
        return iter(self._roles)

    def get(self, asn: ASN, default: Optional[UsageRole] = None) -> Optional[UsageRole]:
        return self._roles.get(asn, default)

    def items(self) -> Iterable[Tuple[ASN, UsageRole]]:
        return self._roles.items()

    # -- construction helpers --------------------------------------------------------
    @classmethod
    def uniform(cls, asns: Iterable[ASN], role: UsageRole) -> "RoleAssignment":
        """Assign the same role to every AS (alltf / alltc scenarios)."""
        return cls({asn: role for asn in asns})

    @classmethod
    def random_uniform(
        cls,
        asns: Sequence[ASN],
        *,
        seed: int = 0,
        codes: Sequence[str] = ROLE_CODES,
    ) -> "RoleAssignment":
        """Assign one of *codes* uniformly at random to every AS."""
        rng = random.Random(seed)
        return cls({asn: UsageRole.from_code(rng.choice(list(codes))) for asn in asns})

    def with_selective_taggers(
        self,
        policy: SelectivePolicy,
        share: float = 0.5,
        *,
        seed: int = 0,
    ) -> "RoleAssignment":
        """Return a copy where *share* of the taggers tag selectively.

        Mirrors Section 6.2: "modify around 50% of the assigned tagger ASes
        to selectively tag routes based on the business relationship".
        """
        rng = random.Random(seed)
        taggers = sorted(asn for asn, role in self._roles.items() if role.is_tagger)
        n_selective = int(len(taggers) * share)
        chosen = set(rng.sample(taggers, n_selective)) if n_selective else set()
        updated = dict(self._roles)
        for asn in chosen:
            role = updated[asn]
            updated[asn] = UsageRole(role.tagging, role.forwarding, policy)
        return RoleAssignment(updated)

    # -- queries ------------------------------------------------------------------------
    def taggers(self) -> List[ASN]:
        """All ASes whose ground-truth tagging role is tagger."""
        return sorted(asn for asn, role in self._roles.items() if role.is_tagger)

    def silent(self) -> List[ASN]:
        """All ASes whose ground-truth tagging role is silent."""
        return sorted(asn for asn, role in self._roles.items() if role.is_silent)

    def forwarders(self) -> List[ASN]:
        """All ASes whose ground-truth forwarding role is forward."""
        return sorted(asn for asn, role in self._roles.items() if role.is_forward)

    def cleaners(self) -> List[ASN]:
        """All ASes whose ground-truth forwarding role is cleaner."""
        return sorted(asn for asn, role in self._roles.items() if role.is_cleaner)

    def selective_taggers(self) -> List[ASN]:
        """All ASes that tag selectively."""
        return sorted(asn for asn, role in self._roles.items() if role.is_selective_tagger)

    def count_by_code(self) -> Dict[str, int]:
        """Number of ASes per two-character role code."""
        counts: Dict[str, int] = {code: 0 for code in ROLE_CODES}
        for role in self._roles.values():
            counts[role.code] = counts.get(role.code, 0) + 1
        return counts
