"""Ground-truth scenario construction (paper Sections 6.1 and 6.2).

A scenario is built from three ingredients:

1. an **AS-path substrate** (the paper uses all paths from the aggregated
   May 2021 dataset; we use paths from the generated topology and routing
   engine, or any caller-supplied path list),
2. a **role assignment** describing the ground-truth community usage of every
   AS, and
3. optionally **noise** and **selective tagging** modifiers.

The builder computes ``output(A_1)`` for every path under the assignment and
returns a :class:`GroundTruthDataset` bundling the resulting ``(path, comm)``
tuples, the assignment itself, and the visibility analysis needed to score
inference results (Tables 2, 5, 6; Figure 2).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.bgp.announcement import PathCommTuple
from repro.bgp.asn import ASN
from repro.bgp.path import ASPath
from repro.topology.generator import ASTier, Topology
from repro.topology.relationships import ASRelationships
from repro.usage.noise import NoiseConfig, NoiseInjector
from repro.usage.propagation import CommunityPropagator, TaggerCommunityPlan
from repro.usage.roles import (
    ForwardingRole,
    RoleAssignment,
    SelectivePolicy,
    TaggingRole,
    UsageRole,
)
from repro.usage.visibility import VisibilityAnalysis


class ScenarioName(enum.Enum):
    """The ground-truth scenarios evaluated in the paper."""

    ALLTF = "alltf"
    ALLTC = "alltc"
    RANDOM = "random"
    RANDOM_NOISE = "random+noise"
    RANDOM_P = "random-p"
    RANDOM_PP = "random-pp"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class GroundTruthDataset:
    """A scenario dataset: paths with known community usage behaviour."""

    name: str
    tuples: List[PathCommTuple]
    roles: RoleAssignment
    visibility: VisibilityAnalysis
    noise: Optional[NoiseConfig] = None
    seed: int = 0

    @property
    def all_ases(self) -> Set[ASN]:
        """Every AS appearing on at least one path."""
        return self.visibility.all_ases

    @property
    def collector_peers(self) -> Set[ASN]:
        """Every AS that appears as ``A_1`` on at least one path."""
        return self.visibility.collector_peers

    @property
    def leaf_ases(self) -> Set[ASN]:
        """ASes without downstream neighbours in the substrate."""
        return self.visibility.leaf_ases

    def paths(self) -> List[ASPath]:
        """The AS paths of the dataset."""
        return [t.path for t in self.tuples]

    def role_counts(self) -> Dict[str, int]:
        """Number of ASes per ground-truth role code (restricted to the substrate)."""
        counts: Dict[str, int] = {}
        for asn in self.all_ases:
            role = self.roles.get(asn)
            if role is None:
                continue
            counts[role.code] = counts.get(role.code, 0) + 1
        return counts


class ScenarioBuilder:
    """Builds :class:`GroundTruthDataset` instances over a path substrate."""

    def __init__(
        self,
        paths: Sequence[ASPath],
        *,
        relationships: Optional[ASRelationships] = None,
        seed: int = 0,
        tagger_plan: Optional[TaggerCommunityPlan] = None,
    ) -> None:
        if not paths:
            raise ValueError("a scenario needs at least one AS path")
        self.paths = list(paths)
        self.relationships = relationships
        self.seed = seed
        self.tagger_plan = tagger_plan or TaggerCommunityPlan(seed=seed)
        self._ases: List[ASN] = sorted({asn for path in self.paths for asn in path})

    # -- role assignments -------------------------------------------------------------
    def uniform_roles(self, code: str) -> RoleAssignment:
        """Every AS gets the same role (``alltf`` / ``alltc``)."""
        return RoleAssignment.uniform(self._ases, UsageRole.from_code(code))

    def random_roles(self, *, seed: Optional[int] = None) -> RoleAssignment:
        """Roles drawn uniformly at random from tf/tc/sf/sc."""
        return RoleAssignment.random_uniform(self._ases, seed=self.seed if seed is None else seed)

    # -- dataset construction -----------------------------------------------------------
    def build_from_roles(
        self,
        name: str,
        roles: RoleAssignment,
        *,
        noise: Optional[NoiseConfig] = None,
        seed: Optional[int] = None,
    ) -> GroundTruthDataset:
        """Compute ``output(A_1)`` for every path under *roles*."""
        effective_seed = self.seed if seed is None else seed
        propagator = CommunityPropagator(
            roles, relationships=self.relationships, plan=self.tagger_plan
        )
        injector = (
            NoiseInjector(noise, self._ases) if noise is not None and noise.enabled else None
        )
        tuples: List[PathCommTuple] = []
        for path in self.paths:
            if injector is None:
                communities = propagator.output(path)
            else:
                communities = propagator.output_with_extra(path, injector.extra_for_path(path))
            tuples.append(PathCommTuple(path, communities))
        visibility = VisibilityAnalysis.from_paths(self.paths, roles)
        return GroundTruthDataset(
            name=name,
            tuples=tuples,
            roles=roles,
            visibility=visibility,
            noise=noise,
            seed=effective_seed,
        )

    def build(self, scenario: ScenarioName, *, seed: Optional[int] = None) -> GroundTruthDataset:
        """Build one of the named paper scenarios."""
        effective_seed = self.seed if seed is None else seed
        if scenario is ScenarioName.ALLTF:
            return self.build_from_roles("alltf", self.uniform_roles("tf"), seed=effective_seed)
        if scenario is ScenarioName.ALLTC:
            return self.build_from_roles("alltc", self.uniform_roles("tc"), seed=effective_seed)
        if scenario is ScenarioName.RANDOM:
            return self.build_from_roles(
                "random", self.random_roles(seed=effective_seed), seed=effective_seed
            )
        if scenario is ScenarioName.RANDOM_NOISE:
            noise = NoiseConfig(seed=effective_seed)
            return self.build_from_roles(
                "random+noise",
                self.random_roles(seed=effective_seed),
                noise=noise,
                seed=effective_seed,
            )
        if scenario is ScenarioName.RANDOM_P:
            roles = self.random_roles(seed=effective_seed).with_selective_taggers(
                SelectivePolicy.NOT_TO_PROVIDERS, share=0.5, seed=effective_seed
            )
            return self.build_from_roles("random-p", roles, seed=effective_seed)
        if scenario is ScenarioName.RANDOM_PP:
            roles = self.random_roles(seed=effective_seed).with_selective_taggers(
                SelectivePolicy.ONLY_TO_CUSTOMERS, share=0.5, seed=effective_seed
            )
            return self.build_from_roles("random-pp", roles, seed=effective_seed)
        raise ValueError(f"unknown scenario {scenario!r}")


def build_scenario(
    paths: Sequence[ASPath],
    scenario: ScenarioName,
    *,
    relationships: Optional[ASRelationships] = None,
    seed: int = 0,
) -> GroundTruthDataset:
    """Convenience wrapper: build one named scenario in a single call."""
    builder = ScenarioBuilder(paths, relationships=relationships, seed=seed)
    return builder.build(scenario, seed=seed)


#: Per-tier probability of being a tagger / cleaner in the realistic model.
_REALISTIC_TAGGER_P: Dict[ASTier, float] = {
    ASTier.TIER1: 0.75,
    ASTier.LARGE_TRANSIT: 0.60,
    ASTier.MID_TRANSIT: 0.35,
    ASTier.SMALL_TRANSIT: 0.15,
    ASTier.STUB: 0.03,
}
_REALISTIC_CLEANER_P: Dict[ASTier, float] = {
    ASTier.TIER1: 0.35,
    ASTier.LARGE_TRANSIT: 0.30,
    ASTier.MID_TRANSIT: 0.25,
    ASTier.SMALL_TRANSIT: 0.20,
    ASTier.STUB: 0.15,
}
_REALISTIC_SELECTIVE_P = 0.25


def assign_realistic_roles(topology: Topology, *, seed: int = 0) -> RoleAssignment:
    """A plausible real-world role model for the Section 7 style analysis.

    There is no public ground truth for real community usage (that gap is the
    paper's motivation), so the unmodified-data experiments (Table 3,
    Figures 3-6) run on a role model that reproduces the paper's qualitative
    findings: taggers and cleaners are predominantly larger transit networks,
    stub ASes are overwhelmingly silent, and a noticeable minority of taggers
    behave selectively.
    """
    rng = random.Random(seed)
    roles: Dict[ASN, UsageRole] = {}
    for asn, info in topology.ases.items():
        is_tagger = rng.random() < _REALISTIC_TAGGER_P[info.tier]
        is_cleaner = rng.random() < _REALISTIC_CLEANER_P[info.tier]
        selective = SelectivePolicy.EVERYWHERE
        if is_tagger and rng.random() < _REALISTIC_SELECTIVE_P:
            selective = rng.choice(
                [SelectivePolicy.NOT_TO_PROVIDERS, SelectivePolicy.ONLY_TO_CUSTOMERS]
            )
        roles[asn] = UsageRole(
            TaggingRole.TAGGER if is_tagger else TaggingRole.SILENT,
            ForwardingRole.CLEANER if is_cleaner else ForwardingRole.FORWARD,
            selective,
        )
    return RoleAssignment(roles)
