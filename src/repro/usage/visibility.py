"""Ground-truth visibility analysis (paper Sections 5.1.2, 5.1.3, 6.4).

When generating ground-truth scenarios we know not only each AS's role but
also whether that role can possibly be observed at the collectors:

* an AS's behaviour is **hidden** when, on every path it appears in, some AS
  between it and the collector is a cleaner (its ``output`` never reaches a
  collector unmodified);
* the forwarding behaviour of an AS is additionally unobservable when no
  path offers a *downstream tagger* reachable through forward ASes;
* **leaf** ASes never forward other ASes' announcements, so they have no
  forwarding behaviour at all.

The confusion matrices of Tables 5 and 6 report hidden and leaf rows
separately; :class:`VisibilityAnalysis` computes exactly those sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Set

from repro.bgp.asn import ASN
from repro.bgp.path import ASPath
from repro.usage.roles import RoleAssignment


@dataclass
class VisibilityAnalysis:
    """Which ASes' ground-truth behaviour is observable at the collectors."""

    #: Every AS that occurs on at least one path.
    all_ases: Set[ASN] = field(default_factory=set)
    #: ASes that never appear at a non-origin position (no downstream ASes).
    leaf_ases: Set[ASN] = field(default_factory=set)
    #: ASes whose tagging behaviour is observable on at least one path.
    tagging_visible: Set[ASN] = field(default_factory=set)
    #: ASes whose forwarding behaviour is observable on at least one path.
    forwarding_visible: Set[ASN] = field(default_factory=set)
    #: ASes that appear as collector peers (``A_1``) on at least one path.
    collector_peers: Set[ASN] = field(default_factory=set)

    @property
    def tagging_hidden(self) -> Set[ASN]:
        """ASes whose tagging behaviour can never be observed."""
        return self.all_ases - self.tagging_visible

    @property
    def forwarding_hidden(self) -> Set[ASN]:
        """Non-leaf ASes whose forwarding behaviour can never be observed."""
        return self.all_ases - self.forwarding_visible - self.leaf_ases

    @classmethod
    def from_paths(cls, paths: Iterable[ASPath], roles: RoleAssignment) -> "VisibilityAnalysis":
        """Analyse visibility of ground-truth roles over a path substrate.

        Visibility follows the same logic the inference conditions encode,
        but evaluated against the *true* roles: the tagging behaviour of
        ``A_x`` is visible when every upstream AS is a forward AS; its
        forwarding behaviour additionally needs a downstream tagger reachable
        through forward ASes.
        """
        analysis = cls()
        transit: Set[ASN] = set()

        for path in paths:
            asns = path.asns
            n = len(asns)
            analysis.all_ases.update(asns)
            analysis.collector_peers.add(asns[0])
            if n >= 2:
                transit.update(asns[:-1])

            # g[i] (1-based): a tagger exists at some t >= i reachable from i
            # through forward ASes only (paper Cond2 evaluated on true roles).
            reach_tagger = [False] * (n + 2)
            for i in range(n, 0, -1):
                role = roles.get(asns[i - 1])
                if role is None:
                    continue
                reach_tagger[i] = role.is_tagger or (role.is_forward and reach_tagger[i + 1])

            upstream_all_forward = True
            for x in range(1, n + 1):
                asn = asns[x - 1]
                if upstream_all_forward:
                    analysis.tagging_visible.add(asn)
                    if x < n and reach_tagger[x + 1]:
                        analysis.forwarding_visible.add(asn)
                role = roles.get(asn)
                if role is None or not role.is_forward:
                    upstream_all_forward = False
                    # ASes further down the path are hidden on this path.
                    if not upstream_all_forward and x < n:
                        # No need to keep scanning for visibility, but we still
                        # account the remaining ASes as present on the path.
                        analysis.all_ases.update(asns[x:])
                        break

        analysis.leaf_ases = analysis.all_ases - transit
        # Leaf ASes cannot have observable forwarding behaviour.
        analysis.forwarding_visible -= analysis.leaf_ases
        return analysis
