"""Shared fixtures.

Expensive substrates (topology, routing, scenario datasets, the tiny
synthetic Internet) are built once per session and shared across test
modules; tests must treat them as read-only.
"""

from __future__ import annotations

import pytest

from repro.core.column import ColumnInference
from repro.datasets.synthetic import SyntheticConfig, SyntheticInternet
from repro.topology.generator import InternetTopologyGenerator, TopologyConfig
from repro.topology.routing import RoutingEngine
from repro.usage.scenarios import ScenarioBuilder, ScenarioName


@pytest.fixture(scope="session")
def small_topology_config() -> TopologyConfig:
    """A ~500-AS topology configuration used throughout the unit tests."""
    return TopologyConfig(
        seed=42,
        n_tier1=6,
        n_large_transit=15,
        n_mid_transit=40,
        n_small_transit=50,
        n_stub=400,
    )


@pytest.fixture(scope="session")
def topology(small_topology_config):
    """A small generated topology (read-only)."""
    return InternetTopologyGenerator(small_topology_config).generate()


@pytest.fixture(scope="session")
def collector_peers(topology):
    """Collector peers selected from the small topology."""
    return topology.select_collector_peers(60, seed=5)


@pytest.fixture(scope="session")
def paths_by_peer(topology, collector_peers):
    """Best valley-free paths from every collector peer (read-only)."""
    return RoutingEngine(topology).best_paths(collector_peers)


@pytest.fixture(scope="session")
def path_substrate(paths_by_peer):
    """The flat list of AS paths used as scenario substrate."""
    return [route.path for per_origin in paths_by_peer.values() for route in per_origin.values()]


@pytest.fixture(scope="session")
def scenario_builder(path_substrate, topology):
    """A scenario builder over the shared path substrate."""
    return ScenarioBuilder(path_substrate, relationships=topology.relationships, seed=7)


@pytest.fixture(scope="session")
def random_dataset(scenario_builder):
    """The random scenario dataset (consistent roles, uniform mix)."""
    return scenario_builder.build(ScenarioName.RANDOM, seed=7)


@pytest.fixture(scope="session")
def random_classification(random_dataset):
    """Column-based classification of the random scenario."""
    return ColumnInference().run(random_dataset.tuples)


@pytest.fixture(scope="session")
def alltf_dataset(scenario_builder):
    """The alltf scenario dataset (every AS tagger-forward)."""
    return scenario_builder.build(ScenarioName.ALLTF, seed=7)


@pytest.fixture(scope="session")
def tiny_internet():
    """A tiny synthetic Internet for collector / dataset / experiment tests."""
    config = SyntheticConfig.small(seed=3)
    config.peer_fraction = 0.10
    return SyntheticInternet.build(config)
